//! Steady-state allocation gate: after warmup, a routed publication must
//! be processed without a single heap allocation — the slab pool recycles
//! envelope and timer slots, inline range sets keep m-cast splits on the
//! stack, notifications travel as inline singletons sharing one
//! `Arc<Event>`, and the warm hooks pre-fault every bounded scratch
//! buffer. This test is the in-tree twin of `probe alloc` (which audits
//! the full figures workload in release mode from `ci.sh`); it runs the
//! same warmup/measure protocol at a smaller scale.
//!
//! The counting `#[global_allocator]` is process-wide, which is exactly
//! why this file holds a single test in its own integration-test binary:
//! no other test's allocations can leak into the measured window.
//!
//! Ignored in debug builds: the audit asserts an exact zero, and the
//! un-optimized standard library is not a build configuration the
//! zero-allocation claim covers (release `ci.sh` enforces it end to end).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cbps_bench::runner::{self, paper_workload, run_trace, workload_gen, Deployment};
use cbps_sim::{PoolMode, SimDuration};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
#[cfg_attr(debug_assertions, ignore = "zero-alloc gate holds for release builds")]
fn steady_state_routed_events_do_not_allocate() {
    let nodes = 80;
    let seed = 11;
    runner::set_pool(PoolMode::Reuse);
    let deployment = Deployment::new(nodes, seed);
    let cfg = paper_workload(nodes, 0)
        .with_counts(nodes * 2, nodes * 4)
        .with_matching_probability(0.5);
    let mut gen = workload_gen(cfg, seed);
    let trace = gen.gen_trace();
    let mut net = deployment.build_on::<cbps::ChordBackend>();
    run_trace(&mut net, &trace, 300);

    // Warmup: twice the measured batch, one publication per two simulated
    // seconds, so every recycled capacity — pool slab, wheel slots across
    // a full coarse-ring revolution, delivery logs, metric tables — hits
    // its high-water mark before counting starts.
    const BATCH: usize = 160;
    let events: Vec<cbps::Event> = (0..3 * BATCH).map(|_| gen.gen_random_event()).collect();
    for (i, ev) in events[..2 * BATCH].iter().enumerate() {
        net.publish(i % nodes, ev.clone()).expect("warmup publish");
        let until = net.now() + SimDuration::from_secs(2);
        net.run_until(until);
    }
    for idx in 0..nodes {
        net.clear_delivered(idx);
        net.warm_node(idx);
    }

    // Measured: injection happens outside the counted region; only the
    // bounded drain of each publication is audited.
    let (mut allocs, mut processed) = (0u64, 0u64);
    for (i, ev) in events[2 * BATCH..].iter().enumerate() {
        net.publish((2 * BATCH + i) % nodes, ev.clone())
            .expect("steady publish");
        let until = net.now() + SimDuration::from_secs(2);
        let ev0 = net.sim_mut().events_processed();
        let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
        net.run_until(until);
        let a1 = ALLOC_CALLS.load(Ordering::Relaxed);
        processed += net.sim_mut().events_processed() - ev0;
        allocs += a1 - a0;
    }
    assert!(processed > 0, "steady-state window processed no events");
    assert_eq!(
        allocs, 0,
        "steady-state window performed {allocs} heap allocations over {processed} events"
    );
}

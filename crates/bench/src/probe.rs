//! A minimal overlay application used by the overlay-level experiments
//! (routing calibration and the multicast ablation).

use cbps_overlay::{Delivery, OverlayApp, OverlayServices, Peer};

/// Records deliveries of unit payloads: count and worst dilation.
#[derive(Debug, Default)]
pub struct ProbeApp {
    /// Payload deliveries observed.
    pub deliveries: u64,
    /// Maximal delivery dilation (hops) observed.
    pub max_hops: u32,
}

impl OverlayApp for ProbeApp {
    type Payload = u64;
    type Timer = ();

    fn on_deliver(&mut self, _payload: u64, d: Delivery, _svc: &mut dyn OverlayServices<u64, ()>) {
        self.deliveries += 1;
        self.max_hops = self.max_hops.max(d.hops);
    }

    fn on_direct(&mut self, _from: Peer, _payload: u64, _svc: &mut dyn OverlayServices<u64, ()>) {}
}

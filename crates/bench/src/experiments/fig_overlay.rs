//! **Extension — overlay portability (§3.1 footnote 1).**
//!
//! The same pub/sub configuration and workload over the Chord substrate
//! and over the Pastry substrate: logical deliveries must be identical;
//! message counts differ only by the overlays' routing structure. Both
//! runs go through the one generic [`PubSubNetwork`]; the substrate is
//! just a type parameter.
//!
//! [`PubSubNetwork`]: cbps::PubSubNetwork

use cbps::{
    ChordBackend, MappingKind, OverlayBackend, Primitive, PubSubConfig, PubSubNetworkBuilder,
};
use cbps_pastry::PastryBackend;
use cbps_sim::{SimDuration, TrafficClass};
use cbps_workload::{OpKind, WorkloadConfig, WorkloadGen};

use crate::runner::Scale;
use crate::table::{fmt_f, Table};

struct Outcome {
    hops_per_sub: f64,
    hops_per_pub: f64,
    hops_per_notify: f64,
    delivered: u64,
}

fn run_on<B: OverlayBackend>(kind: MappingKind, scale: Scale, seed: u64) -> Outcome {
    let nodes = match scale {
        Scale::Quick => 100,
        Scale::Paper | Scale::Large => 500,
    };
    let subs = scale.ops(400);
    let pubs = scale.ops(800);
    let pubsub = PubSubConfig::paper_default()
        .with_mapping(kind)
        .with_primitive(Primitive::MCast);
    let wl = WorkloadConfig::paper_default(nodes, 4)
        .with_counts(subs, pubs)
        .with_matching_probability(0.7);

    let mut net = PubSubNetworkBuilder::<B>::new()
        .nodes(nodes)
        .net_config(crate::runner::net_config(seed))
        .pubsub(pubsub)
        .observability(crate::runner::observability())
        .build()
        .expect("overlay comparison config is valid");
    let space = cbps::EventSpace::paper_default();
    let mut gen = WorkloadGen::new(space, wl, seed);
    let trace = gen.gen_trace();
    for op in trace.ops() {
        net.run_until(op.at);
        match &op.kind {
            OpKind::Subscribe { sub, ttl } => {
                net.subscribe(op.node, sub.clone(), *ttl)
                    .expect("experiment nodes and payloads are valid");
            }
            OpKind::Publish { event } => {
                net.publish(op.node, event.clone())
                    .expect("experiment nodes and payloads are valid");
            }
        }
    }
    net.run_until(trace.end_time() + SimDuration::from_secs(300));
    crate::runner::record_obs(&mut net);
    let metrics = net.metrics();
    Outcome {
        hops_per_sub: metrics.messages(TrafficClass::SUBSCRIPTION) as f64 / subs as f64,
        hops_per_pub: metrics.messages(TrafficClass::PUBLICATION) as f64 / pubs as f64,
        hops_per_notify: metrics.messages(TrafficClass::NOTIFICATION) as f64
            / metrics.counter("matches").max(1) as f64,
        delivered: metrics.counter("notifications.delivered"),
    }
}

/// Runs the comparison and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: the same pub/sub layer over Chord vs Pastry (m-cast)",
        &[
            "mapping",
            "overlay",
            "hops/sub",
            "hops/pub",
            "hops/notify",
            "delivered",
        ],
    );
    for kind in [MappingKind::KeySpaceSplit, MappingKind::SelectiveAttribute] {
        let mut delivered = Vec::new();
        for (overlay, outcome) in [
            (ChordBackend::NAME, run_on::<ChordBackend>(kind, scale, 991)),
            (
                PastryBackend::NAME,
                run_on::<PastryBackend>(kind, scale, 991),
            ),
        ] {
            delivered.push(outcome.delivered);
            table.push_row(vec![
                crate::experiments::fig5::short_name(kind).to_owned(),
                overlay.to_owned(),
                fmt_f(outcome.hops_per_sub),
                fmt_f(outcome.hops_per_pub),
                fmt_f(outcome.hops_per_notify),
                outcome.delivered.to_string(),
            ]);
        }
        assert_eq!(
            delivered[0], delivered[1],
            "overlays delivered different notification counts for {kind}"
        );
    }
    table
}

//! **Extension — overlay portability (§3.1 footnote 1).**
//!
//! The same pub/sub configuration and workload over the Chord substrate
//! and over the Pastry substrate: logical deliveries must be identical;
//! message counts differ only by the overlays' routing structure.

use cbps::{MappingKind, Primitive, PubSubConfig, PubSubNetwork};
use cbps_pastry::PastryPubSubNetwork;
use cbps_sim::{SimDuration, TrafficClass};
use cbps_workload::{OpKind, WorkloadConfig, WorkloadGen};

use crate::runner::Scale;
use crate::table::{fmt_f, Table};

struct Outcome {
    hops_per_sub: f64,
    hops_per_pub: f64,
    hops_per_notify: f64,
    delivered: u64,
}

fn run_on(overlay: &str, kind: MappingKind, scale: Scale, seed: u64) -> Outcome {
    let nodes = match scale {
        Scale::Quick => 100,
        Scale::Paper => 500,
    };
    let subs = scale.ops(400);
    let pubs = scale.ops(800);
    let pubsub = PubSubConfig::paper_default()
        .with_mapping(kind)
        .with_primitive(Primitive::MCast);
    let wl = WorkloadConfig::paper_default(nodes, 4)
        .with_counts(subs, pubs)
        .with_matching_probability(0.7);

    enum Net {
        Chord(PubSubNetwork),
        Pastry(PastryPubSubNetwork),
    }
    let mut net = match overlay {
        "chord" => Net::Chord(
            PubSubNetwork::builder()
                .nodes(nodes)
                .net_config(crate::runner::net_config(seed))
                .pubsub(pubsub)
                .observability(crate::runner::observability())
                .build()
                .expect("overlay comparison config is valid"),
        ),
        _ => Net::Pastry(
            PastryPubSubNetwork::builder()
                .nodes(nodes)
                .seed(seed)
                .pubsub(pubsub)
                .build()
                .expect("overlay comparison config is valid"),
        ),
    };
    let space = cbps::EventSpace::paper_default();
    let mut gen = WorkloadGen::new(space, wl, seed);
    let trace = gen.gen_trace();
    for op in trace.ops() {
        match (&mut net, &op.kind) {
            (Net::Chord(n), OpKind::Subscribe { sub, ttl }) => {
                n.run_until(op.at);
                n.subscribe(op.node, sub.clone(), *ttl)
                    .expect("experiment nodes and payloads are valid");
            }
            (Net::Chord(n), OpKind::Publish { event }) => {
                n.run_until(op.at);
                n.publish(op.node, event.clone())
                    .expect("experiment nodes and payloads are valid");
            }
            (Net::Pastry(n), OpKind::Subscribe { sub, ttl }) => {
                n.run_until(op.at);
                n.subscribe(op.node, sub.clone(), *ttl)
                    .expect("experiment nodes and payloads are valid");
            }
            (Net::Pastry(n), OpKind::Publish { event }) => {
                n.run_until(op.at);
                n.publish(op.node, event.clone())
                    .expect("experiment nodes and payloads are valid");
            }
        }
    }
    let end = trace.end_time() + SimDuration::from_secs(300);
    let metrics = match &mut net {
        Net::Chord(n) => {
            n.run_until(end);
            // Observability rides the Chord substrate only: `record_obs`
            // folds `PubSubNetwork` state and the Pastry twin has its own
            // node-peak shape. The comparison itself is obs-agnostic.
            crate::runner::record_obs(n);
            n.metrics().clone()
        }
        Net::Pastry(n) => {
            n.run_until(end);
            n.metrics().clone()
        }
    };
    Outcome {
        hops_per_sub: metrics.messages(TrafficClass::SUBSCRIPTION) as f64 / subs as f64,
        hops_per_pub: metrics.messages(TrafficClass::PUBLICATION) as f64 / pubs as f64,
        hops_per_notify: metrics.messages(TrafficClass::NOTIFICATION) as f64
            / metrics.counter("matches").max(1) as f64,
        delivered: metrics.counter("notifications.delivered"),
    }
}

/// Runs the comparison and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: the same pub/sub layer over Chord vs Pastry (m-cast)",
        &[
            "mapping",
            "overlay",
            "hops/sub",
            "hops/pub",
            "hops/notify",
            "delivered",
        ],
    );
    for kind in [MappingKind::KeySpaceSplit, MappingKind::SelectiveAttribute] {
        let mut delivered = Vec::new();
        for overlay in ["chord", "pastry"] {
            let o = run_on(overlay, kind, scale, 991);
            delivered.push(o.delivered);
            table.push_row(vec![
                crate::experiments::fig5::short_name(kind).to_owned(),
                overlay.to_owned(),
                fmt_f(o.hops_per_sub),
                fmt_f(o.hops_per_pub),
                fmt_f(o.hops_per_notify),
                o.delivered.to_string(),
            ]);
        }
        assert_eq!(
            delivered[0], delivered[1],
            "overlays delivered different notification counts for {kind}"
        );
    }
    table
}

//! **Figure 9(b) — Discretization of mappings.**
//!
//! Subscription one-hop messages under discretization intervals of size 1
//! (none), 10% and 20% of the average constraint range. Mapping 3 with
//! unicast, as in the paper.
//!
//! Paper shape: coarser discretization maps wide ranges to fewer
//! rendezvous keys, cutting subscription propagation hops further.

use cbps::{MappingKind, Primitive};

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

/// Runs the experiment and returns its table. The paper adds that "the
/// same results apply to other mappings with multicast" — the extra rows
/// verify that claim (mapping 1 under m-cast).
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 9(b): subscription hops vs discretization interval",
        &[
            "config",
            "interval",
            "hops/sub",
            "keys/sub",
            "max stored/node",
        ],
    );
    let nodes = scale.nodes();
    let subs = scale.ops(1000);
    let configs = [
        (
            "M3 unicast",
            MappingKind::SelectiveAttribute,
            Primitive::Unicast,
        ),
        ("M1 m-cast", MappingKind::AttributeSplit, Primitive::MCast),
    ];
    // Average non-selective range = E[U(1, 30000)] ≈ 15000 values.
    let mut points = Vec::new();
    for (config, mapping, primitive) in configs {
        for (label, width) in [
            ("1 (none)", 1u64),
            ("10% avg range", 1_500),
            ("20% avg range", 3_000),
        ] {
            points.push((config, mapping, primitive, label, width));
        }
    }
    let rows = parallel_map(points, |(config, mapping, primitive, label, width)| {
        let mut deployment = Deployment::new(nodes, 911);
        deployment.mapping = mapping;
        deployment.primitive = primitive;
        deployment.discretization = width;
        let cfg = paper_workload(nodes, 0).with_counts(subs, 0);
        let mut gen = workload_gen(cfg, 911);
        let trace = gen.gen_trace();
        let stats = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            run_trace(&mut net, &trace, 60)
        });
        vec![
            config.to_owned(),
            label.to_owned(),
            fmt_f(stats.hops_per_sub),
            fmt_f(stats.keys_per_sub),
            stats.max_stored.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

//! **Extension — fault tolerance under churn (§4.1 discussion).**
//!
//! The paper argues the architecture is "highly resilient to failures
//! because very little information is lost in the case of a node crash,
//! and this information can be easily replicated on a small number of
//! other nodes". This experiment quantifies that: subscriptions are
//! stored, a fraction of the nodes crash simultaneously, and after
//! stabilization events are published. We report the fraction of
//! ground-truth notifications still delivered with replication factors
//! 0, 1 and 2, plus the state-transfer cost.
//!
//! Requires dynamic membership, which only the Chord substrate supports
//! (`OverlayBackend::SUPPORTS_CHURN`); the experiment pins Chord
//! regardless of `--overlay`.

use cbps::{MappingKind, PubSubConfig, PubSubNetwork};
use cbps_overlay::OverlayConfig;
use cbps_sim::{SimDuration, TrafficClass};
use cbps_workload::{OpKind, Trace, WorkloadConfig, WorkloadGen};

use crate::runner::Scale;
use crate::table::{fmt_f, Table};

fn run_one(replication: usize, crashes: usize, scale: Scale, seed: u64) -> (f64, u64, u64) {
    let n = match scale {
        Scale::Quick => 80,
        Scale::Paper | Scale::Large => 200,
    };
    let subs = match scale {
        Scale::Quick => 150,
        Scale::Paper | Scale::Large => 500,
    };
    let pubs = subs;
    let mut net = PubSubNetwork::builder()
        .nodes(n)
        .net_config(crate::runner::net_config(seed))
        .overlay(OverlayConfig::paper_default().with_maintenance(true))
        .pubsub(
            PubSubConfig::paper_default()
                .with_mapping(MappingKind::SelectiveAttribute)
                .with_replication(replication),
        )
        .observability(crate::runner::observability())
        .build()
        .expect("churn deployment config is valid");

    // Only the first half of the nodes subscribe/publish; crashes hit the
    // second half, so subscribers and publishers stay alive.
    let active = n / 2;
    let space = net.config().space.clone();
    let wl = WorkloadConfig::paper_default(active, 4)
        .with_counts(subs, pubs)
        .with_matching_probability(1.0);
    let mut gen = WorkloadGen::new(space, wl, seed);
    let trace = gen.gen_trace();

    // Phase 1: subscriptions only.
    let sub_ops: Vec<_> = trace
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Subscribe { .. }))
        .cloned()
        .collect();
    let pub_ops: Vec<_> = trace
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::Publish { .. }))
        .cloned()
        .collect();
    let sub_trace = Trace::new(sub_ops);
    let outcome_subs = sub_trace.replay(&mut net);
    net.run_until(sub_trace.end_time() + SimDuration::from_secs(120));

    // Phase 2: crash nodes from the passive half.
    for i in 0..crashes {
        net.crash(n - 1 - i);
    }
    // Let stabilization and replica promotion settle.
    net.run_for_secs(120);

    // Phase 3: publications (retimed after the crash).
    let mut oracle = outcome_subs.oracle.clone();
    let base = net.now();
    for (k, op) in pub_ops.iter().enumerate() {
        net.run_until(base + SimDuration::from_secs(5 * k as u64));
        if let OpKind::Publish { event } = &op.kind {
            let id = net
                .publish(op.node, event.clone())
                .expect("experiment nodes and payloads are valid");
            oracle.add_pub(id, event.clone(), net.now());
        }
    }
    net.run_for_secs(300);

    let expected = oracle.expected();
    let mut got = 0u64;
    for idx in 0..active {
        for note in net.delivered(idx) {
            if expected.contains(&(note.sub_id, note.event_id)) {
                got += 1;
            }
        }
    }
    let rate = if expected.is_empty() {
        1.0
    } else {
        got as f64 / expected.len() as f64
    };
    let transfer_msgs = net.metrics().messages(TrafficClass::STATE_TRANSFER);
    let promoted = net.metrics().counter("replicas.promoted");
    let sim = net.sim_mut();
    crate::runner::record_perf(sim.events_processed(), sim.queue_peak());
    crate::runner::record_obs(&mut net);
    (rate, transfer_msgs, promoted)
}

/// Runs the churn experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: delivery after simultaneous crashes (mapping 3, maintenance on)",
        &[
            "replication",
            "crashed nodes",
            "delivery rate",
            "state-transfer msgs",
            "replicas promoted",
        ],
    );
    let crashes = match scale {
        Scale::Quick => 8,
        Scale::Paper | Scale::Large => 20,
    };
    for replication in [0usize, 1, 2] {
        let (rate, transfer, promoted) = run_one(replication, crashes, scale, 951);
        table.push_row(vec![
            replication.to_string(),
            crashes.to_string(),
            fmt_f(rate),
            transfer.to_string(),
            promoted.to_string(),
        ]);
    }
    table
}

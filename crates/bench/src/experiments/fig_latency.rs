//! **Extension — the latency cost of buffering and collecting.**
//!
//! §4.3.2 notes that the optimizations reduce traffic while "introducing
//! only a delay in the notification itself", without quantifying the
//! delay. This experiment measures it: mean and p95 publish-to-delivery
//! latency per notification mode, alongside the message savings — the full
//! traffic/latency trade-off behind Figure 9(a).

use std::collections::HashMap;

use cbps::{EventId, MappingKind, NotifyMode, Primitive};
use cbps_sim::{SimDuration, SimTime, TrafficClass};
use cbps_workload::OpKind;

use crate::runner::{paper_workload, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

fn modes() -> Vec<(&'static str, NotifyMode)> {
    let p = SimDuration::from_secs(5);
    vec![
        ("immediate", NotifyMode::Immediate),
        ("buffer-only 1x", NotifyMode::Buffered { period: p }),
        ("buf+collect 1x", NotifyMode::Collecting { period: p }),
        ("buf+collect 5x", NotifyMode::Collecting { period: p * 5 }),
    ]
}

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: notification latency vs traffic per dispatch mode (mapping 3, unicast)",
        &[
            "mode",
            "mean latency [s]",
            "p95 latency [s]",
            "notify msgs/pub",
            "delivered",
        ],
    );
    let nodes = scale.nodes();
    let subs = scale.ops(300);
    let pubs = scale.ops(1000);
    for (label, mode) in modes() {
        let mut deployment = Deployment::new(nodes, 941);
        deployment.mapping = MappingKind::SelectiveAttribute;
        deployment.primitive = Primitive::Unicast;
        deployment.notify = mode;
        let cfg = paper_workload(nodes, 0)
            .with_counts(subs, pubs)
            .with_matching_probability(0.8)
            .with_seed_streak(8);
        let mut gen = workload_gen(cfg, 941);
        let trace = gen.gen_trace();

        let (mut latencies, msgs) = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            // Replay manually so publish times are captured per event id.
            let mut publish_time: HashMap<EventId, SimTime> = HashMap::new();
            for op in trace.ops() {
                net.run_until(op.at);
                match &op.kind {
                    OpKind::Subscribe { sub, ttl } => {
                        net.subscribe(op.node, sub.clone(), *ttl)
                            .expect("experiment nodes and payloads are valid");
                    }
                    OpKind::Publish { event } => {
                        let id = net
                            .publish(op.node, event.clone())
                            .expect("experiment nodes and payloads are valid");
                        publish_time.insert(id, op.at);
                    }
                }
            }
            net.run_until(trace.end_time() + SimDuration::from_secs(2_000));

            let mut latencies: Vec<f64> = Vec::new();
            for i in 0..net.len() {
                for note in net.delivered(i) {
                    let published = publish_time[&note.event_id];
                    latencies.push(note.at.saturating_since(published).as_secs_f64());
                }
            }
            crate::runner::record_obs(&mut net);
            let m = net.metrics();
            let msgs = (m.messages(TrafficClass::NOTIFICATION)
                + m.messages(TrafficClass::COLLECT)) as f64
                / pubs as f64;
            (latencies, msgs)
        });
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let p95 = latencies
            .get((latencies.len() * 95 / 100).min(latencies.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0);
        table.push_row(vec![
            label.to_owned(),
            fmt_f(mean),
            fmt_f(p95),
            fmt_f(msgs),
            latencies.len().to_string(),
        ]);
    }
    table
}

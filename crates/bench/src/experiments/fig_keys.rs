//! **In-text §5.2 — keys per subscription / publication.**
//!
//! The paper reports: publications map to one key under mappings 1 and 2
//! and four keys under mapping 3; subscriptions map to slightly over one
//! key under mapping 2; mapping 1 maps subscriptions to ≈ 10× more keys
//! than mapping 3.
//!
//! Pure mapping computation — no simulation needed.

use cbps::{AkMapping, EventSpace, MappingKind};
use cbps_overlay::KeySpace;

use crate::experiments::fig5::short_name;
use crate::runner::{paper_workload, workload_gen, Scale};
use crate::table::{fmt_f, Table};

/// Runs the computation: one table per selective-attribute count.
pub fn run(scale: Scale) -> Vec<Table> {
    let samples = match scale {
        Scale::Quick => 500,
        Scale::Paper | Scale::Large => 5_000,
    };
    [0usize, 1]
        .into_iter()
        .map(|selective| {
            let mut table = Table::new(
                format!(
                    "§5.2 in-text: mean mapped keys per request, {selective} selective attr(s)"
                ),
                &["mapping", "keys/sub", "keys/pub"],
            );
            let space = EventSpace::paper_default();
            let keys = KeySpace::new(13);
            let cfg = paper_workload(1, selective).with_counts(samples, samples);
            let mut gen = workload_gen(cfg, 921);
            let subs: Vec<_> = (0..samples).map(|_| gen.gen_subscription()).collect();
            let events: Vec<_> = subs.iter().map(|s| gen.gen_matching_event(s)).collect();
            for kind in [
                MappingKind::AttributeSplit,
                MappingKind::KeySpaceSplit,
                MappingKind::SelectiveAttribute,
            ] {
                let mapping = AkMapping::new(kind, &space, keys);
                let sk_mean =
                    subs.iter().map(|s| mapping.sk(s).count()).sum::<u64>() as f64 / samples as f64;
                let ek_mean = events.iter().map(|e| mapping.ek(e).count()).sum::<u64>() as f64
                    / samples as f64;
                table.push_row(vec![
                    short_name(kind).to_owned(),
                    fmt_f(sk_mean),
                    fmt_f(ek_mean),
                ]);
            }
            table
        })
        .collect()
}

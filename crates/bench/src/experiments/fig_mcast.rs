//! **Ablation (§4.3.1 analysis) — range propagation protocols.**
//!
//! One-hop message counts and delivery dilation when sending one message
//! to a contiguous key range, comparing:
//!
//! * `m-cast` (Figure 4): `O(log n + N)` messages, `O(log n)` dilation;
//! * aggressive per-key unicast: `Ω(hops × keys)` messages, `O(log n)`
//!   dilation;
//! * conservative successor walk: `O(log n + N)` messages, `O(log n + N)`
//!   dilation.
//!
//! This regenerates the complexity table of §4.3.1 empirically.
//!
//! The protocols are overlay-generic (they run through the shared routed
//! handlers), so the ablation honors `--overlay`: the same range sends
//! measured over the Chord substrate or the Pastry substrate.

use cbps_overlay::{build_stable, KeyRange, KeyRangeSet, OverlayConfig, OverlayServices};
use cbps_pastry::{build_pastry_stable, PastryConfig};
use cbps_sim::{TraceId, TrafficClass};

use crate::probe::ProbeApp;
use crate::runner::{BackendKind, Scale};
use crate::table::Table;

fn fire(svc: &mut dyn OverlayServices<u64, ()>, how: &str, targets: &KeyRangeSet, range: KeyRange) {
    match how {
        "m-cast" => svc.mcast(targets, TrafficClass::OTHER, 1, TraceId::NONE),
        "per-key unicast" => svc.ucast_keys(targets, TrafficClass::OTHER, 1, TraceId::NONE),
        "successor walk" => svc.walk(range, TrafficClass::OTHER, 1, TraceId::NONE),
        other => unreachable!("unknown protocol {other}"),
    }
}

fn send(
    n: usize,
    width: u64,
    seed: u64,
    how: &str,
) -> (
    u64, /* msgs */
    u32, /* max dilation */
    u64, /* deliveries */
) {
    let apps: Vec<ProbeApp> = (0..n).map(|_| ProbeApp::default()).collect();
    match crate::runner::backend() {
        BackendKind::Chord => {
            // Cache disabled: the table measures the raw protocols.
            let cfg = OverlayConfig::paper_default().with_cache_capacity(0);
            let (mut sim, _ring) = build_stable(crate::runner::net_config(seed), cfg, apps);
            let space = cfg.space;
            let range = KeyRange::new(space.key(1000), space.key(1000 + width - 1));
            let targets = KeyRangeSet::of_range(space, range);
            sim.with_node(0, |node, ctx| {
                node.app_call(ctx, |_, svc| fire(svc, how, &targets, range))
            });
            sim.run();
            let msgs = sim.metrics().messages(TrafficClass::OTHER);
            let mut max_hops = 0;
            let mut deliveries = 0;
            for (_, node) in sim.nodes() {
                max_hops = max_hops.max(node.app().max_hops);
                deliveries += node.app().deliveries;
            }
            (msgs, max_hops, deliveries)
        }
        BackendKind::Pastry => {
            let cfg = PastryConfig::paper_default();
            let (mut sim, _ring) = build_pastry_stable(crate::runner::net_config(seed), cfg, apps);
            let space = cfg.space;
            let range = KeyRange::new(space.key(1000), space.key(1000 + width - 1));
            let targets = KeyRangeSet::of_range(space, range);
            sim.with_node(0, |node, ctx| {
                node.app_call(ctx, |_, svc| fire(svc, how, &targets, range))
            });
            sim.run();
            let msgs = sim.metrics().messages(TrafficClass::OTHER);
            let mut max_hops = 0;
            let mut deliveries = 0;
            for (_, node) in sim.nodes() {
                max_hops = max_hops.max(node.app().max_hops);
                deliveries += node.app().deliveries;
            }
            (msgs, max_hops, deliveries)
        }
    }
}

/// Runs the ablation and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation §4.3.1: one-to-many range send — messages / dilation / covering nodes",
        &[
            "range keys",
            "protocol",
            "messages",
            "max dilation",
            "nodes reached",
        ],
    );
    let n = match scale {
        Scale::Quick => 150,
        Scale::Paper | Scale::Large => 500,
    };
    for width in [64u64, 256, 1024, 4096] {
        for how in ["m-cast", "per-key unicast", "successor walk"] {
            let (msgs, dilation, deliveries) = send(n, width, 941, how);
            table.push_row(vec![
                width.to_string(),
                how.to_owned(),
                msgs.to_string(),
                dilation.to_string(),
                deliveries.to_string(),
            ]);
        }
    }
    table
}

//! **Figure 6 — Memory consumption vs expiration time.**
//!
//! 25 000 subscriptions (no publications) injected at the 5 s cadence with
//! a per-subscription expiration time; the metric is the maximum (and
//! average) number of simultaneously stored subscriptions per node, for the
//! three mappings with zero and one selective attributes.
//!
//! Paper shape: storage grows with the expiration time; mapping 2 stores
//! the least without selective attributes; mapping 3 benefits sharply from
//! one selective attribute.
//!
//! Propagation uses `m-cast` — the stored state is identical under any
//! primitive, and `m-cast` keeps the run fast.

use cbps::MappingKind;
use cbps_sim::SimDuration;

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

/// TTL sweep (seconds); `None` = never expires.
fn ttls(scale: Scale) -> Vec<Option<u64>> {
    match scale {
        Scale::Quick => vec![Some(500), Some(2_500), Some(10_000), None],
        Scale::Paper | Scale::Large => {
            vec![Some(2_500), Some(10_000), Some(25_000), Some(62_500), None]
        }
    }
}

/// Runs the experiment: one table per selective-attribute count.
pub fn run(scale: Scale) -> Vec<Table> {
    [0usize, 1]
        .into_iter()
        .map(|selective| {
            let mut table = Table::new(
                format!(
                    "Figure 6: max (avg) stored subscriptions per node vs expiration time, {selective} selective attr(s)"
                ),
                &["expiry [s]", "M1 attr-split", "M2 keyspace-split", "M3 selective"],
            );
            let nodes = scale.nodes();
            let subs = match scale {
                Scale::Quick => 4_000,
                Scale::Paper | Scale::Large => 25_000,
            };
            let mut points = Vec::new();
            for ttl in ttls(scale) {
                for mapping in [
                    MappingKind::AttributeSplit,
                    MappingKind::KeySpaceSplit,
                    MappingKind::SelectiveAttribute,
                ] {
                    points.push((ttl, mapping));
                }
            }
            let cells = parallel_map(points, |(ttl, mapping)| {
                let mut deployment = Deployment::new(nodes, 601);
                deployment.mapping = mapping;
                let cfg = paper_workload(nodes, selective)
                    .with_counts(subs, 0)
                    .with_sub_ttl(ttl.map(SimDuration::from_secs));
                let mut gen = workload_gen(cfg, 601);
                let trace = gen.gen_trace();
                let stats = crate::with_backend!(B => {
                    let mut net = deployment.build_on::<B>();
                    run_trace(&mut net, &trace, 60)
                });
                format!("{} ({})", stats.max_stored, fmt_f(stats.avg_stored))
            });
            for (i, ttl) in ttls(scale).into_iter().enumerate() {
                let mut row = vec![match ttl {
                    Some(t) => t.to_string(),
                    None => "never".to_owned(),
                }];
                row.extend(cells[i * 3..i * 3 + 3].iter().cloned());
                table.push_row(row);
            }
            table
        })
        .collect()
}

//! **Figure 7 — Scalability of bandwidth consumption.**
//!
//! Hops per publication as a function of the network size `n`, for
//! mapping 3 (Selective-Attribute) with unicast.
//!
//! Paper shape: logarithmic growth in `n` — the overlay's basic
//! scalability property. Publications map to 4 keys under mapping 3, so
//! hops/publication ≈ 4 × (average route length).

use cbps::{MappingKind, Primitive};

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

fn node_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![50, 100, 200, 400],
        Scale::Paper => vec![100, 250, 500, 1000, 2500],
        // Three decades: the paper's trend extended to the large-deployment
        // regime (the last point crosses into a widened key space).
        Scale::Large => vec![1000, 10_000, 100_000],
    }
}

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 7: hops per publication vs n (mapping 3, unicast)",
        &["n", "hops/pub", "hops/pub/key", "log2(n)"],
    );
    let pubs = scale.ops(1000);
    let rows = parallel_map(node_counts(scale), |n| {
        let mut deployment = Deployment::new(n, 701);
        deployment.mapping = MappingKind::SelectiveAttribute;
        deployment.primitive = Primitive::Unicast;
        let cfg = paper_workload(n, 0)
            .with_counts(0, pubs)
            .with_matching_probability(0.0);
        let mut gen = workload_gen(cfg, 701);
        let trace = gen.gen_trace();
        let stats = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            run_trace(&mut net, &trace, 60)
        });
        vec![
            n.to_string(),
            fmt_f(stats.hops_per_pub),
            fmt_f(stats.hops_per_pub / stats.keys_per_pub.max(1.0)),
            fmt_f((n as f64).log2()),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

//! **Figure 9(a) — Buffering and collecting notifications.**
//!
//! Notification one-hop messages per publication under different matching
//! probabilities, comparing: no optimization, buffering + collecting with
//! periods of 1×/2×/5× the mean publication period, and buffering alone.
//! Mapping 3 with unicast, as in the paper.
//!
//! Paper shape: both optimizations cut notification traffic substantially;
//! most of the benefit appears already at small buffering periods; savings
//! grow with the matching probability (more notifications to merge).
//!
//! The workload uses matching-event streaks (temporal locality, the
//! explicit premise of §4.3.2: "consecutive events exhibit temporal
//! locality") so consecutive matches hit the same subscriptions.

use cbps::{MappingKind, NotifyMode, Primitive};
use cbps_sim::SimDuration;

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

/// The notification configurations compared (label, mode).
fn modes() -> Vec<(&'static str, NotifyMode)> {
    let p = SimDuration::from_secs(5); // = mean publication period
    vec![
        ("immediate", NotifyMode::Immediate),
        ("buf+collect 1x", NotifyMode::Collecting { period: p }),
        ("buf+collect 2x", NotifyMode::Collecting { period: p * 2 }),
        ("buf+collect 5x", NotifyMode::Collecting { period: p * 5 }),
        ("buffer-only 1x", NotifyMode::Buffered { period: p }),
    ]
}

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 9(a): notification hops per publication vs matching probability (mapping 3, unicast)",
        &["matching p", "immediate", "buf+collect 1x", "buf+collect 2x", "buf+collect 5x", "buffer-only 1x"],
    );
    let nodes = scale.nodes();
    let subs = scale.ops(500);
    let pubs = scale.ops(2000);
    let probabilities = [0.1f64, 0.5, 0.9];
    let mut points = Vec::new();
    for p in probabilities {
        for (_, mode) in modes() {
            points.push((p, mode));
        }
    }
    let results = parallel_map(points, |(p, mode)| {
        let mut deployment = Deployment::new(nodes, 901);
        deployment.mapping = MappingKind::SelectiveAttribute;
        deployment.primitive = Primitive::Unicast;
        deployment.notify = mode;
        let cfg = paper_workload(nodes, 0)
            .with_counts(subs, pubs)
            .with_matching_probability(p)
            .with_seed_streak(8);
        let mut gen = workload_gen(cfg, 901);
        let trace = gen.gen_trace();
        // Long drain: collect chains take several flush periods.
        let stats = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            run_trace(&mut net, &trace, 2_000)
        });
        (stats.delivered, stats.notify_hops_per_pub)
    });
    let mode_count = modes().len();
    for (i, p) in probabilities.into_iter().enumerate() {
        let group = &results[i * mode_count..(i + 1) * mode_count];
        // Sanity: the optimizations must not lose notifications.
        let reference = group[0].0;
        for &(delivered, _) in group {
            assert_eq!(
                delivered, reference,
                "optimization changed delivered notifications at p={p}"
            );
        }
        let mut cells = vec![format!("{p:.1}")];
        cells.extend(group.iter().map(|&(_, hops)| fmt_f(hops)));
        table.push_row(cells);
    }
    table
}

//! **Extension — partially defined subscriptions (§4.2 claim).**
//!
//! "Selective-Attribute is the least sensitive to partially defined
//! subscriptions, i.e., subscriptions that specify constraints on only
//! some of the attributes." We quantify it: mean mapped keys per
//! subscription as the wildcard probability rises, for all three mappings.
//!
//! Expected shape: Attribute-Split must pin unconstrained `EK` dimensions
//! with full-ring images and Key Space-Split products blow up with each
//! full-range slot, while Selective-Attribute keeps following its most
//! selective *present* constraint.

use cbps::{AkMapping, EventSpace, MappingKind};
use cbps_overlay::KeySpace;

use crate::experiments::fig5::short_name;
use crate::runner::{paper_workload, workload_gen, Scale};
use crate::table::{fmt_f, Table};

/// Runs the computation and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: mean mapped keys per subscription vs wildcard probability (§4.2)",
        &[
            "wildcard p",
            "M1 attr-split",
            "M2 keyspace-split",
            "M3 selective",
        ],
    );
    let samples = match scale {
        Scale::Quick => 400,
        Scale::Paper | Scale::Large => 3_000,
    };
    let space = EventSpace::paper_default();
    let keys = KeySpace::new(13);
    let mappings: Vec<(MappingKind, AkMapping)> = [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ]
    .into_iter()
    .map(|k| (k, AkMapping::new(k, &space, keys)))
    .collect();
    let _ = short_name(MappingKind::AttributeSplit);

    for wildcard_p in [0.0f64, 0.25, 0.5, 0.75] {
        let mut cfg = paper_workload(1, 0).with_counts(samples, 0);
        cfg.wildcard_probability = wildcard_p;
        let mut gen = workload_gen(cfg, 971);
        let subs: Vec<_> = (0..samples).map(|_| gen.gen_subscription()).collect();
        let mut cells = vec![format!("{wildcard_p:.2}")];
        for (_, mapping) in &mappings {
            let mean =
                subs.iter().map(|s| mapping.sk(s).count()).sum::<u64>() as f64 / samples as f64;
            cells.push(fmt_f(mean));
        }
        table.push_row(cells);
    }
    table
}

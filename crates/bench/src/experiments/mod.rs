//! One module per reproduced table/figure; see DESIGN.md §5 for the index.

pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9a;
pub mod fig9b;
pub mod fig_churn;
pub mod fig_hotspot;
pub mod fig_keys;
pub mod fig_latency;
pub mod fig_mcast;
pub mod fig_overlay;
pub mod fig_partial;
pub mod fig_route;
pub mod fig_vnodes;

use crate::runner::Scale;
use crate::table::Table;

/// Runs every experiment at the given scale, returning all tables in
/// figure order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.push(fig_route::run(scale));
    tables.extend(fig_keys::run(scale));
    tables.push(fig5::run(scale));
    tables.extend(fig6::run(scale));
    tables.push(fig7::run(scale));
    tables.extend(fig8::run(scale));
    tables.push(fig9a::run(scale));
    tables.push(fig_latency::run(scale));
    tables.push(fig9b::run(scale));
    tables.push(fig_mcast::run(scale));
    tables.push(fig_partial::run(scale));
    tables.extend(fig_hotspot::run(scale));
    tables.push(fig_vnodes::run(scale));
    tables.push(fig_overlay::run(scale));
    tables.push(fig_churn::run(scale));
    tables
}

/// Runs one experiment by name (`fig5`, `fig6`, … `all`).
pub fn run_named(name: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match name {
        "fig5" => vec![fig5::run(scale)],
        "fig6" => fig6::run(scale),
        "fig7" => vec![fig7::run(scale)],
        "fig8" => fig8::run(scale),
        "fig9a" => vec![fig9a::run(scale)],
        "latency" | "fig_latency" => vec![fig_latency::run(scale)],
        "fig9b" => vec![fig9b::run(scale)],
        "keys" | "fig_keys" => fig_keys::run(scale),
        "route" | "fig_route" => vec![fig_route::run(scale)],
        "mcast" | "fig_mcast" => vec![fig_mcast::run(scale)],
        "churn" | "fig_churn" => vec![fig_churn::run(scale)],
        "hotspot" | "fig_hotspot" => fig_hotspot::run(scale),
        "overlay" | "fig_overlay" => vec![fig_overlay::run(scale)],
        "partial" | "fig_partial" => vec![fig_partial::run(scale)],
        "vnodes" | "fig_vnodes" => vec![fig_vnodes::run(scale)],
        "all" => run_all(scale),
        _ => return None,
    })
}

/// Names accepted by [`run_named`].
pub const EXPERIMENT_NAMES: &[&str] = &[
    "route", "keys", "fig5", "fig6", "fig7", "fig8", "fig9a", "latency", "fig9b", "mcast",
    "partial", "hotspot", "vnodes", "overlay", "churn",
];

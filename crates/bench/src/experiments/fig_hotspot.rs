//! **Extension — hotspot accommodation via nearly-static mappings.**
//!
//! §4.2 proposes fighting mapping-level hotspots "by providing nearly
//! static EK- and SK-mappings in which infrequent changes may slightly
//! alter the initially defined functions". We implement that as
//! per-dimension circular key rotations and measure their effect: under a
//! Zipf-skewed selective workload (mapping 3), the hottest node's load
//! and its position for several rotation epochs.
//!
//! Expected shape: each epoch relocates the hotspot to a different node
//! (spreading wear across epochs) while the load *distribution* — and
//! delivery semantics — stay intact.

use cbps::{MappingKind, OverlayBackend};

use crate::runner::{paper_workload, run_trace, workload_gen, Scale};
use crate::table::{fmt_f, Table};

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: hotspot relocation by nearly-static mapping rotation (mapping 3, 1 selective attr)",
        &["rotation epoch", "hottest node", "max stored", "avg stored", "p99-ish skew (max/avg)"],
    );
    let nodes = scale.nodes();
    let subs = match scale {
        Scale::Quick => 3_000,
        Scale::Paper | Scale::Large => 10_000,
    };
    let keys = cbps::deployment_key_space(nodes);
    // The selective attribute is dimension 0; rotate its keys a quarter
    // ring further each epoch (2048 keys on the paper's 2^13 ring).
    for epoch in 0u64..4 {
        let rotation = epoch * (keys.size() / 4);
        let pubsub = cbps::PubSubConfig::paper_default()
            .with_mapping(MappingKind::SelectiveAttribute)
            .with_key_space(keys)
            .with_rotations(vec![rotation, 0, 0, 0]);
        let cfg = paper_workload(nodes, 1).with_counts(subs, 0);
        let mut gen = workload_gen(cfg, 961);
        let trace = gen.gen_trace();
        let (stats, hottest) = crate::with_backend!(B => {
            let mut net = cbps::PubSubNetworkBuilder::<B>::new()
                .nodes(nodes)
                .net_config(crate::runner::net_config(961))
                .overlay(B::with_key_space(B::paper_default(), keys))
                .pubsub(pubsub)
                .observability(crate::runner::observability())
                .build()
                .expect("hotspot deployment config is valid");
            let stats = run_trace(&mut net, &trace, 60);
            let peaks = net.peak_stored_counts();
            let hottest = peaks
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            (stats, hottest)
        });
        table.push_row(vec![
            format!("{epoch} (+{rotation} keys)"),
            hottest.to_string(),
            stats.max_stored.to_string(),
            fmt_f(stats.avg_stored),
            fmt_f(stats.max_stored as f64 / stats.avg_stored.max(1e-9)),
        ]);
    }
    table
}

//! **Extension — hotspot accommodation via nearly-static mappings.**
//!
//! §4.2 proposes fighting mapping-level hotspots "by providing nearly
//! static EK- and SK-mappings in which infrequent changes may slightly
//! alter the initially defined functions". We implement that as
//! per-dimension circular key rotations and measure their effect: under a
//! Zipf-skewed selective workload (mapping 3), the hottest node's load
//! and its position for several rotation epochs.
//!
//! Expected shape: each epoch relocates the hotspot to a different node
//! (spreading wear across epochs) while the load *distribution* — and
//! delivery semantics — stay intact.
//!
//! The second table measures the *dynamic* alternative: the adaptive
//! rendezvous policy (`--rendezvous adaptive`) under a Zipf flash crowd.
//! Both policies replay the identical trace; the table reports each
//! policy's node-load imbalance (max/mean and p99/mean of per-node
//! rendezvous work), its split/merge control activity, and the
//! delivered-set fingerprint — which must be identical, since splitting
//! relocates stored subscriptions without changing delivery semantics.

use cbps::{MappingKind, OverlayBackend, RendezvousMode};

use crate::report::LoadReport;
use crate::runner::{delivered_fingerprint, paper_workload, run_trace, workload_gen, Scale};
use crate::table::{fmt_f, Table};

/// Runs the experiment and returns its tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![rotation_table(scale), flash_crowd_table(scale)]
}

/// Epoch-rotation table (the nearly-static mapping extension).
fn rotation_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: hotspot relocation by nearly-static mapping rotation (mapping 3, 1 selective attr)",
        &["rotation epoch", "hottest node", "max stored", "avg stored", "p99-ish skew (max/avg)"],
    );
    let nodes = scale.nodes();
    let subs = match scale {
        Scale::Quick => 3_000,
        Scale::Paper | Scale::Large => 10_000,
    };
    let keys = cbps::deployment_key_space(nodes);
    // The selective attribute is dimension 0; rotate its keys a quarter
    // ring further each epoch (2048 keys on the paper's 2^13 ring).
    for epoch in 0u64..4 {
        let rotation = epoch * (keys.size() / 4);
        let pubsub = cbps::PubSubConfig::paper_default()
            .with_mapping(MappingKind::SelectiveAttribute)
            .with_key_space(keys)
            .with_rendezvous(crate::runner::rendezvous())
            .with_rotations(vec![rotation, 0, 0, 0]);
        let cfg = paper_workload(nodes, 1).with_counts(subs, 0);
        let mut gen = workload_gen(cfg, 961);
        let trace = gen.gen_trace();
        let (stats, hottest) = crate::with_backend!(B => {
            let mut net = cbps::PubSubNetworkBuilder::<B>::new()
                .nodes(nodes)
                .net_config(crate::runner::net_config(961))
                .overlay(B::with_key_space(B::paper_default(), keys))
                .pubsub(pubsub)
                .observability(crate::runner::observability())
                .build()
                .expect("hotspot deployment config is valid");
            let stats = run_trace(&mut net, &trace, 60);
            let peaks = net.peak_stored_counts();
            let hottest = peaks
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            (stats, hottest)
        });
        table.push_row(vec![
            format!("{epoch} (+{rotation} keys)"),
            hottest.to_string(),
            stats.max_stored.to_string(),
            fmt_f(stats.avg_stored),
            fmt_f(stats.max_stored as f64 / stats.avg_stored.max(1e-9)),
        ]);
    }
    table
}

/// Static-vs-adaptive rendezvous under a Zipf flash crowd.
fn flash_crowd_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: adaptive rendezvous under a Zipf flash crowd (mapping 3, 1 selective attr)",
        &[
            "rendezvous",
            "max/mean load",
            "p99/mean load",
            "splits",
            "merges",
            "delivered",
            "fingerprint",
        ],
    );
    let nodes = scale.nodes();
    let (subs, pubs, burst) = match scale {
        Scale::Quick => (300, 600, 600),
        Scale::Paper | Scale::Large => (1_000, 2_000, 2_000),
    };
    let keys = cbps::deployment_key_space(nodes);
    let cfg = paper_workload(nodes, 1)
        .with_counts(subs, pubs)
        .with_flash_crowd(burst, 1.1);
    // Both rows replay the identical trace: the generator is rebuilt from
    // the same seed, so only the rendezvous policy differs.
    for mode in [RendezvousMode::Static, RendezvousMode::Adaptive] {
        let mut gen = workload_gen(cfg.clone(), 961);
        let trace = gen.gen_trace();
        let pubsub = cbps::PubSubConfig::paper_default()
            .with_mapping(MappingKind::SelectiveAttribute)
            .with_key_space(keys)
            .with_rendezvous(mode);
        let row = crate::with_backend!(B => {
            let mut net = cbps::PubSubNetworkBuilder::<B>::new()
                .nodes(nodes)
                .net_config(crate::runner::net_config(961))
                .overlay(B::with_key_space(B::paper_default(), keys))
                .pubsub(pubsub)
                .observability(crate::runner::observability())
                .build()
                .expect("flash-crowd deployment config is valid");
            let stats = run_trace(&mut net, &trace, 300);
            let (splits, merges) = net.rendezvous_counters();
            let load = LoadReport::from_work(&net.rendezvous_work_counts(), splits, merges);
            let (fp, _) = delivered_fingerprint(&net);
            vec![
                mode.name().to_owned(),
                fmt_f(load.map(|l| l.max_mean).unwrap_or(0.0)),
                fmt_f(load.map(|l| l.p99_mean).unwrap_or(0.0)),
                splits.to_string(),
                merges.to_string(),
                stats.delivered.to_string(),
                format!("{fp:#018x}"),
            ]
        });
        table.push_row(row);
    }
    table
}

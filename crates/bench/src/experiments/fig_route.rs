//! **In-text §5.1 — routing calibration.**
//!
//! "Upon n = 500, the average number of hops it took the Chord simulator
//! to deliver a single message between a pair of random nodes was about
//! 2.5. This is better than log n due to the finger caching mechanism."
//!
//! This experiment measures mean lookup hops vs `n`, with the location
//! cache disabled and enabled, and doubles as the calibration record for
//! the cache capacity (96 entries by default).
//!
//! Calibrates Chord's finger/cache machinery specifically, so it pins the
//! Chord substrate regardless of `--overlay` (the Pastry routing profile
//! is covered by its own portability tests).

use cbps_overlay::{build_stable, OverlayConfig};

use crate::probe::ProbeApp;
use crate::runner::{parallel_map, record_perf, Scale};
use crate::table::{fmt_f, Table};

fn node_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![50, 100, 200],
        Scale::Paper => vec![100, 250, 500, 1000],
        // The calibration trend carried into the deployment regime; the
        // last point needs (and gets) a widened key space.
        Scale::Large => vec![1000, 10_000, 100_000],
    }
}

fn mean_hops(n: usize, cache: usize, lookups_per_node: usize, seed: u64) -> f64 {
    let cfg = OverlayConfig::paper_default()
        .with_space(cbps::deployment_key_space(n))
        .with_cache_capacity(cache);
    let apps: Vec<ProbeApp> = (0..n).map(|_| ProbeApp::default()).collect();
    let (mut sim, _ring) = build_stable(crate::runner::net_config(seed), cfg, apps);
    let space = cfg.space;
    let issue = |sim: &mut cbps_sim::Simulator<_>, i: usize| {
        let src = i % n;
        let v = sim.rng_mut().gen_range(0..space.size());
        let target = space.key(v);
        sim.with_node(src, |node: &mut cbps_overlay::ChordNode<ProbeApp>, ctx| {
            node.start_lookup(target, ctx)
        });
        // Interleave execution so caches warm as traffic flows.
        if i % 64 == 63 {
            sim.run();
        }
    };
    // Warm-up phase: the paper measures a long-running system, so caches
    // are warm ("this number showed little variation throughout the
    // experiments").
    for i in 0..n * lookups_per_node {
        issue(&mut sim, i);
    }
    sim.run();
    sim.metrics_mut().clear();
    // Measurement phase.
    for i in 0..n * lookups_per_node {
        issue(&mut sim, i);
    }
    sim.run();
    record_perf(sim.events_processed(), sim.queue_peak());
    sim.metrics()
        .histogram("lookup.hops")
        .map(|h| h.mean())
        .unwrap_or(0.0)
}

/// Runs the calibration and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "§5.1 in-text: mean lookup hops vs n (finger caching calibration)",
        &[
            "n",
            "no cache",
            "cache 32",
            "cache 96",
            "cache 256",
            "0.5*log2(n)",
        ],
    );
    let lookups = match scale {
        Scale::Quick => 30,
        Scale::Paper | Scale::Large => 60,
    };
    const CACHES: [usize; 4] = [0, 32, 96, 256];
    let mut points = Vec::new();
    for n in node_counts(scale) {
        for cache in CACHES {
            points.push((n, cache));
        }
    }
    let means = parallel_map(points, |(n, cache)| mean_hops(n, cache, lookups, 931));
    for (i, n) in node_counts(scale).into_iter().enumerate() {
        let group = &means[i * CACHES.len()..(i + 1) * CACHES.len()];
        let mut row = vec![n.to_string()];
        row.extend(group.iter().map(|&m| fmt_f(m)));
        row.push(fmt_f(0.5 * (n as f64).log2()));
        table.push_row(row);
    }
    table
}

//! **Figure 5 — Total number of hops.**
//!
//! Hops per request (subscription, publication, notification) under the
//! three mappings with unicast and with `m-cast`. All attributes
//! non-selective, subscriptions never expire.
//!
//! Paper shape: publications map to 1 key under mappings 1–2 and 4 keys
//! under mapping 3; subscription hops track the number of mapped keys
//! (mapping 1 ≈ 10× mapping 3 ≈ 100× mapping 2 under unicast); `m-cast`
//! cuts subscription hops by > 90% for mappings 1 and 3.

use cbps::{MappingKind, Primitive};

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 5: hops per request (0 selective attrs, no expiry)",
        &[
            "mapping",
            "primitive",
            "hops/sub",
            "hops/pub",
            "hops/notify",
            "keys/sub",
            "keys/pub",
        ],
    );
    let nodes = scale.nodes();
    let subs = scale.ops(1000);
    let pubs = scale.ops(1000);
    let mut points = Vec::new();
    for mapping in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        for primitive in [Primitive::Unicast, Primitive::MCast] {
            points.push((mapping, primitive));
        }
    }
    let rows = parallel_map(points, |(mapping, primitive)| {
        let mut deployment = Deployment::new(nodes, 501);
        deployment.mapping = mapping;
        deployment.primitive = primitive;
        let cfg = paper_workload(nodes, 0).with_counts(subs, pubs);
        let mut gen = workload_gen(cfg, 501);
        let trace = gen.gen_trace();
        let stats = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            run_trace(&mut net, &trace, 120)
        });
        vec![
            short_name(mapping).to_owned(),
            format!("{primitive:?}").to_lowercase(),
            fmt_f(stats.hops_per_sub),
            fmt_f(stats.hops_per_pub),
            fmt_f(stats.hops_per_notification),
            fmt_f(stats.keys_per_sub),
            fmt_f(stats.keys_per_pub),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Short mapping labels used across all figure tables.
pub fn short_name(kind: MappingKind) -> &'static str {
    match kind {
        MappingKind::AttributeSplit => "M1 attr-split",
        MappingKind::KeySpaceSplit => "M2 keyspace-split",
        MappingKind::SelectiveAttribute => "M3 selective",
    }
}

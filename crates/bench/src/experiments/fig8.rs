//! **Figure 8 — Scalability of memory consumption.**
//!
//! Max stored subscriptions per node when 25 000 never-expiring
//! subscriptions are injected, as a function of the network size `n`, for
//! the three mappings with zero and one selective attributes.
//!
//! Paper shape: total stored state grows with `n` because a rendezvous
//! range is split across more nodes, so each subscription is copied more
//! often. Mappings 1 and 3 are sensitive to this; mapping 2's average
//! stays nearly constant. With one selective attribute mapping 3
//! duplicates rarely and beats mapping 2 below n ≈ 2500.

use cbps::MappingKind;

use crate::runner::{paper_workload, parallel_map, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

fn node_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![100, 300, 800],
        Scale::Paper => vec![250, 500, 1000, 2500, 5000],
        // The paper's memory trend at deployment scale.
        Scale::Large => vec![1000, 10_000, 100_000],
    }
}

/// Runs the experiment: one table per selective-attribute count.
pub fn run(scale: Scale) -> Vec<Table> {
    [0usize, 1]
        .into_iter()
        .map(|selective| {
            let mut table = Table::new(
                format!(
                    "Figure 8: max (avg) stored subscriptions per node vs n, {selective} selective attr(s)"
                ),
                &["n", "M1 attr-split", "M2 keyspace-split", "M3 selective"],
            );
            let subs = match scale {
                Scale::Quick => 4_000,
                Scale::Paper | Scale::Large => 25_000,
            };
            let mut points = Vec::new();
            for n in node_counts(scale) {
                for mapping in [
                    MappingKind::AttributeSplit,
                    MappingKind::KeySpaceSplit,
                    MappingKind::SelectiveAttribute,
                ] {
                    points.push((n, mapping));
                }
            }
            let cells = parallel_map(points, |(n, mapping)| {
                let mut deployment = Deployment::new(n, 801);
                deployment.mapping = mapping;
                let cfg = paper_workload(n, selective).with_counts(subs, 0);
                let mut gen = workload_gen(cfg, 801);
                let trace = gen.gen_trace();
                let stats = crate::with_backend!(B => {
                    let mut net = deployment.build_on::<B>();
                    run_trace(&mut net, &trace, 60)
                });
                format!("{} ({})", stats.max_stored, fmt_f(stats.avg_stored))
            });
            for (i, n) in node_counts(scale).into_iter().enumerate() {
                let mut row = vec![n.to_string()];
                row.extend(cells[i * 3..i * 3 + 3].iter().cloned());
                table.push_row(row);
            }
            table
        })
        .collect()
}

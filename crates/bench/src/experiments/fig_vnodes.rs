//! **Extension — KN-level load balancing with virtual nodes.**
//!
//! §4.2 suggests fighting hotspots "(a) by corresponding techniques at the
//! level of KN-mapping; in particular, most overlay networks provide such
//! mechanisms". Chord's classic mechanism is *virtual nodes*: each
//! physical machine hosts `v` ring identities, subdividing hot arcs.
//!
//! We model a machine as `v` simulator nodes and aggregate its virtual
//! peaks; the skew (hottest machine / average machine) should fall as `v`
//! grows, under the Zipf-selective workload that produces the Figure 6/8
//! hotspot.

use cbps::MappingKind;

use crate::runner::{paper_workload, run_trace, workload_gen, Deployment, Scale};
use crate::table::{fmt_f, Table};

/// Runs the experiment and returns its table.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "Extension: virtual nodes vs storage skew (mapping 3, 1 selective attr)",
        &[
            "virtual ids/machine",
            "machines",
            "max stored/machine",
            "avg stored/machine",
            "skew (max/avg)",
        ],
    );
    let machines = match scale {
        Scale::Quick => 100,
        Scale::Paper | Scale::Large => 250,
    };
    let subs = match scale {
        Scale::Quick => 3_000,
        Scale::Paper | Scale::Large => 10_000,
    };
    for v in [1usize, 2, 4, 8] {
        let sim_nodes = machines * v;
        let mut deployment = Deployment::new(sim_nodes, 981);
        deployment.mapping = MappingKind::SelectiveAttribute;
        let cfg = paper_workload(sim_nodes, 1).with_counts(subs, 0);
        let mut gen = workload_gen(cfg, 981);
        let trace = gen.gen_trace();
        let peaks = crate::with_backend!(B => {
            let mut net = deployment.build_on::<B>();
            let _ = run_trace(&mut net, &trace, 60);
            net.peak_stored_counts()
        });
        // Aggregate virtual identities onto machines: virtual id `i`
        // belongs to machine `i % machines`.
        let mut per_machine = vec![0usize; machines];
        for (i, p) in peaks.iter().enumerate() {
            per_machine[i % machines] += p;
        }
        let max = *per_machine.iter().max().unwrap_or(&0);
        let avg = per_machine.iter().sum::<usize>() as f64 / machines as f64;
        table.push_row(vec![
            v.to_string(),
            machines.to_string(),
            max.to_string(),
            fmt_f(avg),
            fmt_f(max as f64 / avg.max(1e-9)),
        ]);
    }
    table
}

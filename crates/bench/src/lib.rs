//! # cbps-bench — the experiment harness
//!
//! Regenerates every table and figure of the ICDCS 2005 evaluation (§5)
//! plus the in-text measurements and two extensions. Run via:
//!
//! * `cargo bench -p cbps-bench --bench figures` — all figures at quick
//!   scale;
//! * `cargo run -p cbps-bench --release --bin figures -- --scale paper` —
//!   full paper-scale runs (see `--help`; `--jobs N` fans independent
//!   sweep points out to a worker pool, `--json FILE` writes a perf
//!   report);
//! * `cargo bench -p cbps-bench --bench micro` — dependency-free
//!   wall-clock component benchmarks (mappings, matching, m-cast
//!   splitting, SHA-1).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiments;
pub mod probe;
pub mod report;
pub mod runner;
pub mod table;

pub use report::{ExperimentReport, ObsReport, RunReport};
pub use runner::{Deployment, RunStats, Scale};
pub use table::Table;

//! Shared experiment plumbing: scales, network construction, trace replay,
//! metric extraction, and the multi-core sweep runner.
//!
//! Each simulation is single-threaded and deterministic; independent
//! (seed, sweep-point) runs are farmed out to a scoped worker pool sized
//! by [`set_jobs`]. Results come back in input order, so a sweep produces
//! byte-identical tables at any job count.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use cbps::{
    ChordBackend, MappingKind, NotifyMode, OverlayBackend, Primitive, PubSubConfig, PubSubNetwork,
    PubSubNetworkBuilder, RendezvousMode,
};
use cbps_sim::{
    MatchEngineKind, NetConfig, ObsMode, Observability, PoolMode, SchedulerKind, SimDuration,
    TrafficClass,
};
use cbps_workload::{Trace, WorkloadConfig, WorkloadGen};

/// Worker count for [`parallel_map`]; 1 = fully serial.
static JOBS: AtomicUsize = AtomicUsize::new(1);
/// Simulator events processed across all runs since the last reset.
static EVENTS_TOTAL: AtomicU64 = AtomicU64::new(0);
/// Maximum event-queue depth seen by any run since the last reset.
static QUEUE_PEAK_MAX: AtomicU64 = AtomicU64::new(0);
/// Observability mode applied to every [`Deployment::build`] network
/// (discriminant of [`ObsMode`]; 0 = off).
static OBS_MODE: AtomicU8 = AtomicU8::new(0);
/// Event-queue implementation applied to every built network
/// (0 = timing wheel, 1 = binary heap).
static SCHEDULER: AtomicU8 = AtomicU8::new(0);
/// Event-loop shard count applied to every built network (1 = the classic
/// single-threaded engine).
static SHARDS: AtomicUsize = AtomicUsize::new(1);
/// Matching engine every rendezvous node of a built network runs
/// (0 = counting index, 1 = sorted index).
static MATCH_ENGINE: AtomicU8 = AtomicU8::new(0);
/// Event-pool recycling policy applied to every built network
/// (0 = reuse, 1 = fresh).
static POOL: AtomicU8 = AtomicU8::new(0);
/// Merged observability registries of every run since the last reset.
/// Worker threads fold their run's registry in under this lock; the merge
/// is commutative, so the result is job-count independent.
static OBS_TOTAL: Mutex<Option<Observability>> = Mutex::new(None);
/// Per-node peak stored-subscription counts, folded element-wise-max over
/// every observed run since the last reset (max is commutative, so the
/// result is job-count independent).
static HOT_NODES: Mutex<Vec<u64>> = Mutex::new(Vec::new());
/// Overlay substrate every deployment-style experiment runs on
/// (0 = Chord, 1 = Pastry).
static BACKEND: AtomicU8 = AtomicU8::new(0);
/// Rendezvous policy every built network runs (0 = static ak-mapping,
/// 1 = adaptive hot-key splitting).
static RENDEZVOUS: AtomicU8 = AtomicU8::new(0);
/// Per-node cumulative rendezvous work (publications processed + matches
/// produced), folded element-wise-max over every observed run since the
/// last reset.
static NODE_WORK: Mutex<Vec<u64>> = Mutex::new(Vec::new());
/// Rendezvous split/merge control decisions across observed runs.
static RDV_SPLITS: AtomicU64 = AtomicU64::new(0);
static RDV_MERGES: AtomicU64 = AtomicU64::new(0);

/// The overlay substrates the experiment harness can deploy on.
///
/// Experiments are written once against the generic
/// [`PubSubNetwork<B>`] façade; this runtime tag (set from
/// `--overlay`) picks which monomorphization a run uses — see
/// [`crate::with_backend!`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Chord finger-table routing (the paper's substrate; supports churn).
    Chord,
    /// Pastry prefix routing (static converged membership).
    Pastry,
}

impl BackendKind {
    /// The backend's name as used on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Chord => ChordBackend::NAME,
            BackendKind::Pastry => cbps_pastry::PastryBackend::NAME,
        }
    }

    /// Parses a CLI backend name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "chord" => Some(BackendKind::Chord),
            "pastry" => Some(BackendKind::Pastry),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sets the overlay substrate every subsequent experiment deploys on.
pub fn set_backend(kind: BackendKind) {
    BACKEND.store(
        match kind {
            BackendKind::Chord => 0,
            BackendKind::Pastry => 1,
        },
        Ordering::Relaxed,
    );
}

/// The overlay substrate experiments deploy on.
pub fn backend() -> BackendKind {
    match BACKEND.load(Ordering::Relaxed) {
        0 => BackendKind::Chord,
        _ => BackendKind::Pastry,
    }
}

/// Sets the rendezvous policy every subsequently built network uses (see
/// `figures --rendezvous`; `static` is the paper's stateless ak-mapping
/// and leaves every recorded baseline byte-identical).
pub fn set_rendezvous(mode: RendezvousMode) {
    RENDEZVOUS.store(
        match mode {
            RendezvousMode::Static => 0,
            RendezvousMode::Adaptive => 1,
        },
        Ordering::Relaxed,
    );
}

/// The rendezvous policy applied to built networks.
pub fn rendezvous() -> RendezvousMode {
    match RENDEZVOUS.load(Ordering::Relaxed) {
        0 => RendezvousMode::Static,
        _ => RendezvousMode::Adaptive,
    }
}

/// Dispatches a generic experiment body over the globally selected
/// overlay backend: `with_backend!(B => run_on::<B>(scale))` expands to a
/// match on [`runner::backend`](backend) binding the type alias `B` to
/// [`cbps::ChordBackend`] or [`cbps_pastry::PastryBackend`].
#[macro_export]
macro_rules! with_backend {
    ($B:ident => $body:expr) => {
        match $crate::runner::backend() {
            $crate::runner::BackendKind::Chord => {
                type $B = ::cbps::ChordBackend;
                $body
            }
            $crate::runner::BackendKind::Pastry => {
                type $B = ::cbps_pastry::PastryBackend;
                $body
            }
        }
    };
}

/// Sets the worker-pool size used by [`parallel_map`] (clamped to >= 1).
/// The same count drives the overlay builders' construction workers, so
/// `--jobs N` parallelizes both sweep points and network build.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
    cbps_overlay::set_build_jobs(n.max(1));
}

/// The current worker-pool size.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// Sets the observability mode every subsequently built deployment runs
/// under (and every [`run_trace`] accumulates from).
pub fn set_observability(mode: ObsMode) {
    OBS_MODE.store(
        match mode {
            ObsMode::Off => 0,
            ObsMode::Stages => 1,
            _ => 2,
        },
        Ordering::Relaxed,
    );
}

/// The observability mode applied to built deployments.
pub fn observability() -> ObsMode {
    match OBS_MODE.load(Ordering::Relaxed) {
        0 => ObsMode::Off,
        1 => ObsMode::Stages,
        _ => ObsMode::Full,
    }
}

/// Sets the event-queue implementation every subsequently built network
/// uses (see `figures --scheduler`; tables are identical either way).
pub fn set_scheduler(kind: SchedulerKind) {
    SCHEDULER.store(
        match kind {
            SchedulerKind::Wheel => 0,
            SchedulerKind::Heap => 1,
        },
        Ordering::Relaxed,
    );
}

/// The event-queue implementation applied to built networks.
pub fn scheduler() -> SchedulerKind {
    match SCHEDULER.load(Ordering::Relaxed) {
        0 => SchedulerKind::Wheel,
        _ => SchedulerKind::Heap,
    }
}

/// Sets the event-loop shard count every subsequently built network uses
/// (see `figures --shards`; `0` is coerced to 1). Tables and delivered
/// sets are identical at any shard count under the paper's fixed-delay
/// model.
pub fn set_shards(n: usize) {
    SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The event-loop shard count applied to built networks.
pub fn shards() -> usize {
    SHARDS.load(Ordering::Relaxed)
}

/// Sets the matching engine every subsequently built network's rendezvous
/// nodes use (see `figures --match-engine`; tables are identical either
/// way — only matching cost and memory layout change).
pub fn set_match_engine(kind: MatchEngineKind) {
    MATCH_ENGINE.store(
        match kind {
            MatchEngineKind::Sorted => 1,
            _ => 0,
        },
        Ordering::Relaxed,
    );
}

/// The matching engine applied to built networks.
pub fn match_engine() -> MatchEngineKind {
    match MATCH_ENGINE.load(Ordering::Relaxed) {
        1 => MatchEngineKind::Sorted,
        _ => MatchEngineKind::Counting,
    }
}

/// Sets the event-pool recycling policy every subsequently built network
/// uses (see `figures --pool`; tables and delivered sets are identical
/// either way — `fresh` only exists as the always-allocate control for
/// the allocation audit).
pub fn set_pool(mode: PoolMode) {
    POOL.store(
        match mode {
            PoolMode::Reuse => 0,
            PoolMode::Fresh => 1,
        },
        Ordering::Relaxed,
    );
}

/// The event-pool recycling policy applied to built networks.
pub fn pool() -> PoolMode {
    match POOL.load(Ordering::Relaxed) {
        1 => PoolMode::Fresh,
        _ => PoolMode::Reuse,
    }
}

/// A [`NetConfig`] with the given seed and the globally selected
/// scheduler, shard count, matching engine, and pool policy. Experiments
/// must build networks through this so the `--scheduler`, `--shards`,
/// `--match-engine`, and `--pool` knobs reach every run.
pub fn net_config(seed: u64) -> NetConfig {
    NetConfig::new(seed)
        .with_scheduler(scheduler())
        .with_shards(shards())
        .with_match_engine(match_engine())
        .with_pool(pool())
}

/// Folds one finished run into the global perf accumulators.
pub fn record_perf(events: u64, queue_peak: usize) {
    EVENTS_TOTAL.fetch_add(events, Ordering::Relaxed);
    QUEUE_PEAK_MAX.fetch_max(queue_peak as u64, Ordering::Relaxed);
}

/// Folds one finished run's observability registry into the global
/// accumulator (a no-op when the run recorded nothing).
pub fn record_obs<B: OverlayBackend>(net: &mut PubSubNetwork<B>) {
    if !net.observability().enabled() {
        return;
    }
    let peaks = net.peak_stored_counts();
    {
        let mut hot = HOT_NODES.lock().expect("hot-node accumulator poisoned");
        if hot.len() < peaks.len() {
            hot.resize(peaks.len(), 0);
        }
        for (slot, &peak) in hot.iter_mut().zip(&peaks) {
            *slot = (*slot).max(peak as u64);
        }
    }
    let works = net.rendezvous_work_counts();
    {
        let mut acc = NODE_WORK.lock().expect("node-work accumulator poisoned");
        if acc.len() < works.len() {
            acc.resize(works.len(), 0);
        }
        for (slot, &w) in acc.iter_mut().zip(&works) {
            *slot = (*slot).max(w);
        }
    }
    let (splits, merges) = net.rendezvous_counters();
    RDV_SPLITS.fetch_add(splits, Ordering::Relaxed);
    RDV_MERGES.fetch_add(merges, Ordering::Relaxed);
    let run_obs = std::mem::take(net.metrics_mut().obs_mut());
    let mut total = OBS_TOTAL.lock().expect("obs accumulator poisoned");
    match total.as_mut() {
        Some(acc) => acc.merge(&run_obs),
        None => *total = Some(run_obs),
    }
}

/// Clears the perf accumulators (call before a measured batch).
pub fn reset_perf() {
    EVENTS_TOTAL.store(0, Ordering::Relaxed);
    QUEUE_PEAK_MAX.store(0, Ordering::Relaxed);
    *OBS_TOTAL.lock().expect("obs accumulator poisoned") = None;
    HOT_NODES
        .lock()
        .expect("hot-node accumulator poisoned")
        .clear();
    NODE_WORK
        .lock()
        .expect("node-work accumulator poisoned")
        .clear();
    RDV_SPLITS.store(0, Ordering::Relaxed);
    RDV_MERGES.store(0, Ordering::Relaxed);
}

/// Takes the merged observability registry accumulated since the last
/// [`reset_perf`] (leaving it empty).
pub fn take_obs() -> Option<Observability> {
    OBS_TOTAL.lock().expect("obs accumulator poisoned").take()
}

/// Takes the per-node peak stored-subscription counts accumulated by
/// [`record_obs`] since the last [`reset_perf`] (leaving them empty).
pub fn take_hot_nodes() -> Vec<u64> {
    std::mem::take(&mut *HOT_NODES.lock().expect("hot-node accumulator poisoned"))
}

/// Takes the per-node rendezvous-work counts accumulated by [`record_obs`]
/// since the last [`reset_perf`] (leaving them empty).
pub fn take_node_work() -> Vec<u64> {
    std::mem::take(&mut *NODE_WORK.lock().expect("node-work accumulator poisoned"))
}

/// `(splits, merges)` control decisions accumulated by [`record_obs`]
/// since the last [`reset_perf`]. Always `(0, 0)` under the static policy.
pub fn rendezvous_totals() -> (u64, u64) {
    (
        RDV_SPLITS.load(Ordering::Relaxed),
        RDV_MERGES.load(Ordering::Relaxed),
    )
}

/// `(events processed, max queue depth)` accumulated since the last
/// [`reset_perf`].
pub fn perf_totals() -> (u64, u64) {
    (
        EVENTS_TOTAL.load(Ordering::Relaxed),
        QUEUE_PEAK_MAX.load(Ordering::Relaxed),
    )
}

/// Maps `f` over `items` on the worker pool, preserving input order.
///
/// With `jobs() == 1` (the default) this is a plain serial map — no
/// threads are spawned and no ordering question arises. With more
/// workers, items are pulled from a shared queue, so long and short
/// sweep points load-balance; the result vector is still indexed by the
/// input position. `f` must not depend on cross-item state.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let work = Mutex::new(items.into_iter().enumerate());
    let results: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = work.lock().expect("work queue poisoned").next();
                let Some((i, item)) = next else { break };
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Node-count override applied on top of the scale default (0 = none).
/// Set from `--nodes N`; capped at 10^6.
static NODES_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The hard ceiling for `--nodes` (the ROADMAP's million-node target).
pub const MAX_NODES: usize = 1_000_000;

/// Overrides the node count every scale resolves to (0 clears the
/// override; values are capped at [`MAX_NODES`]).
pub fn set_nodes_override(n: usize) {
    NODES_OVERRIDE.store(n.min(MAX_NODES), Ordering::Relaxed);
}

/// The current node-count override (0 = none).
pub fn nodes_override() -> usize {
    NODES_OVERRIDE.load(Ordering::Relaxed)
}

/// Experiment scale: full paper parameters, a fast CI-friendly shrink, or
/// the large-deployment stress setting.
///
/// Quick scale preserves every *shape* (who wins, crossovers) while keeping
/// the whole figure suite in the minutes range. Large scale keeps the
/// paper's per-node workload intensity but deploys 10^5 nodes (override
/// with `--nodes` up to 10^6) on a ring widened by
/// [`cbps::deployment_key_space`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk node counts and operation counts.
    Quick,
    /// The paper's §5.1 parameters.
    Paper,
    /// 10^5 nodes (plus `--nodes` override), paper operation counts.
    Large,
}

impl Scale {
    /// Default node count (paper: 500), after the `--nodes` override.
    pub fn nodes(self) -> usize {
        let n = nodes_override();
        if n > 0 {
            return n;
        }
        match self {
            Scale::Quick => 150,
            Scale::Paper => 500,
            Scale::Large => 100_000,
        }
    }

    /// Scales an operation count.
    pub fn ops(self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 5).max(50),
            Scale::Paper | Scale::Large => paper,
        }
    }

    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The scale's name as used on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Large => "large",
        }
    }
}

/// One experiment deployment descriptor.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Node count.
    pub nodes: usize,
    /// RNG seed (network + workload derive from it).
    pub seed: u64,
    /// Mapping under test.
    pub mapping: MappingKind,
    /// Propagation primitive under test.
    pub primitive: Primitive,
    /// Notification mode under test.
    pub notify: NotifyMode,
    /// Discretization interval width (1 = off).
    pub discretization: u64,
}

impl Deployment {
    /// A deployment with the paper's defaults.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Deployment {
            nodes,
            seed,
            mapping: MappingKind::KeySpaceSplit,
            primitive: Primitive::MCast,
            notify: NotifyMode::Immediate,
            discretization: 1,
        }
    }

    /// Builds the network on the Chord substrate (under the sweep-wide
    /// observability mode, see [`set_observability`]).
    pub fn build(&self) -> PubSubNetwork {
        self.build_on::<ChordBackend>()
    }

    /// Builds the network on substrate `B` with its paper-default overlay
    /// parameters. Workload, seeds and pub/sub configuration are
    /// substrate-independent, so the same deployment descriptor drives
    /// every backend. Node counts beyond the paper's 2^13 ring get a wider
    /// key space via [`cbps::deployment_key_space`] (a no-op for every
    /// paper/quick deployment, so recorded baselines are unchanged).
    pub fn build_on<B: OverlayBackend>(&self) -> PubSubNetwork<B> {
        let keys = cbps::deployment_key_space(self.nodes);
        let pubsub = PubSubConfig::paper_default()
            .with_mapping(self.mapping)
            .with_primitive(self.primitive)
            .with_notify_mode(self.notify)
            .with_discretization(self.discretization)
            .with_rendezvous(rendezvous())
            .with_key_space(keys);
        PubSubNetworkBuilder::<B>::new()
            .nodes(self.nodes)
            .net_config(net_config(self.seed))
            .overlay(B::with_key_space(B::paper_default(), keys))
            .pubsub(pubsub)
            .observability(observability())
            .build()
            .expect("experiment deployments use validated paper parameters")
    }
}

/// Metrics distilled from one run, normalized per request.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// One-hop messages per subscription request.
    pub hops_per_sub: f64,
    /// One-hop messages per publication request.
    pub hops_per_pub: f64,
    /// Notification + collect one-hop messages per generated match.
    pub hops_per_notification: f64,
    /// Notification + collect one-hop messages per publication request.
    pub notify_hops_per_pub: f64,
    /// Mean rendezvous keys per subscription.
    pub keys_per_sub: f64,
    /// Mean rendezvous keys per publication.
    pub keys_per_pub: f64,
    /// Max over nodes of the peak stored-subscription count.
    pub max_stored: u64,
    /// Mean over nodes of the peak stored-subscription count.
    pub avg_stored: f64,
    /// Matches generated at rendezvous nodes.
    pub matches: u64,
    /// Logically delivered notifications.
    pub delivered: u64,
}

/// Replays a trace and distills the run's statistics. The network runs
/// `drain_secs` past the last operation so in-flight messages and buffers
/// settle.
pub fn run_trace<B: OverlayBackend>(
    net: &mut PubSubNetwork<B>,
    trace: &Trace,
    drain_secs: u64,
) -> RunStats {
    net.reserve_workload(trace.sub_count());
    let outcome = trace.replay(net);
    let _ = outcome;
    net.run_until(trace.end_time() + SimDuration::from_secs(drain_secs));
    let sim = net.sim_mut();
    record_perf(sim.events_processed(), sim.queue_peak());
    record_obs(net);
    distill(net, trace.sub_count() as u64, trace.pub_count() as u64)
}

/// Extracts normalized statistics from a finished network.
pub fn distill<B: OverlayBackend>(net: &PubSubNetwork<B>, subs: u64, pubs: u64) -> RunStats {
    let m = net.metrics();
    let matches = m.counter("matches");
    let notify_msgs = m.messages(TrafficClass::NOTIFICATION) + m.messages(TrafficClass::COLLECT);
    let peaks = net.peak_stored_counts();
    let max_stored = peaks.iter().copied().max().unwrap_or(0) as u64;
    let avg_stored = if peaks.is_empty() {
        0.0
    } else {
        peaks.iter().sum::<usize>() as f64 / peaks.len() as f64
    };
    RunStats {
        hops_per_sub: ratio(m.messages(TrafficClass::SUBSCRIPTION), subs),
        hops_per_pub: ratio(m.messages(TrafficClass::PUBLICATION), pubs),
        hops_per_notification: ratio(notify_msgs, matches),
        notify_hops_per_pub: ratio(notify_msgs, pubs),
        keys_per_sub: m
            .histogram("keys.per-subscription")
            .map(|h| h.mean())
            .unwrap_or(0.0),
        keys_per_pub: m
            .histogram("keys.per-publication")
            .map(|h| h.mean())
            .unwrap_or(0.0),
        max_stored,
        avg_stored,
        matches,
        delivered: m.counter("notifications.delivered"),
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An order- and overlay-independent fingerprint of the logically
/// delivered set: FNV-1a over the sorted `(node, sub, event)` triples,
/// plus the triple count. Two runs deliver the same notifications iff the
/// fingerprints match, so configurations that must not change delivery
/// semantics — shard counts, schedulers, overlays, rendezvous policies —
/// can be diffed on this one value.
pub fn delivered_fingerprint<B: OverlayBackend>(net: &PubSubNetwork<B>) -> (u64, usize) {
    let mut triples: Vec<(usize, u64, u64)> = Vec::new();
    for node in 0..net.len() {
        for n in net.delivered(node) {
            triples.push((node, n.sub_id.0, n.event_id.0));
        }
    }
    triples.sort_unstable();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    let count = triples.len();
    for (node, sub, event) in triples {
        mix(node as u64);
        mix(sub);
        mix(event);
    }
    (hash, count)
}

/// The paper's workload for `nodes` with `selective` selective attributes.
pub fn paper_workload(nodes: usize, selective: usize) -> WorkloadConfig {
    WorkloadConfig::paper_default(nodes, 4).with_selective_attrs(selective)
}

/// Builds a generator with a seed derived from the deployment seed.
pub fn workload_gen(cfg: WorkloadConfig, seed: u64) -> WorkloadGen {
    WorkloadGen::new(
        cbps::EventSpace::paper_default(),
        cfg,
        seed.wrapping_mul(0x9E37_79B9).wrapping_add(17),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        // One test body: `--nodes` is process-global state, so the
        // override assertions must not run concurrently with the
        // default-value assertions.
        assert_eq!(Scale::Paper.nodes(), 500);
        assert_eq!(Scale::Quick.ops(1000), 200);
        assert_eq!(Scale::Quick.ops(100), 50);
        assert_eq!(Scale::Large.nodes(), 100_000);
        assert_eq!(Scale::Large.ops(1000), 1000);
        for scale in [Scale::Quick, Scale::Paper, Scale::Large] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
        assert_eq!(Scale::parse("huge"), None);
        set_nodes_override(1234);
        assert_eq!(Scale::Quick.nodes(), 1234);
        assert_eq!(Scale::Large.nodes(), 1234);
        set_nodes_override(10 * MAX_NODES);
        assert_eq!(nodes_override(), MAX_NODES);
        set_nodes_override(0);
        assert_eq!(Scale::Paper.nodes(), 500);
    }

    #[test]
    fn parallel_map_preserves_order_at_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        set_jobs(4);
        let parallel = parallel_map(items.clone(), |x| x * x + 1);
        set_jobs(1);
        let serial = parallel_map(items, |x| x * x + 1);
        assert_eq!(parallel, serial);
        assert_eq!(serial[99], 99 * 99 + 1);
    }

    #[test]
    fn backend_kind_round_trips() {
        for kind in [BackendKind::Chord, BackendKind::Pastry] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("bamboo"), None);
    }

    #[test]
    fn quick_run_produces_sane_stats() {
        let mut net = Deployment::new(40, 1).build();
        let cfg = paper_workload(40, 0).with_counts(30, 30);
        let mut gen = workload_gen(cfg, 1);
        let trace = gen.gen_trace();
        let stats = run_trace(&mut net, &trace, 60);
        assert!(stats.hops_per_sub > 0.0);
        assert!(stats.hops_per_pub > 0.0);
        assert!(stats.keys_per_pub >= 1.0);
        assert!(stats.max_stored >= 1);
    }
}

//! Plain-text result tables (and CSV export) for the experiment harness.

use std::fmt::Write as _;

/// A titled table of result rows.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Cell accessor (row, column) for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "2.50".into()]);
        t.push_row(vec!["10".into(), "3.75".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("x   value"));
        let csv = t.to_csv();
        assert!(csv.starts_with("x,value\n"));
        assert_eq!(t.cell(1, 1), "3.75");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y\"z".into()]);
        assert!(t.to_csv().contains("\"x,y\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("q", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(12.34), "12.3");
        assert_eq!(fmt_f(2.456), "2.46");
    }
}

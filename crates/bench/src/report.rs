//! Structured JSON run reports (`cbps-report/v2`).
//!
//! Supersedes the flat perf records of `BENCH_baseline.json` (implicitly
//! `cbps-report/v1`): the v1 per-experiment fields (`wall_secs`, `events`,
//! `events_per_sec`, `peak_queue_depth`) keep their names and meaning, so
//! old baselines stay comparable, and each experiment additionally carries
//! the observability distillate of the run — per-stage latency
//! percentiles, named histograms, and the hottest rendezvous nodes.
//!
//! JSON is rendered by hand (the workspace is dependency-free); values are
//! limited to numbers and the fixed stage/class vocabulary, so escaping
//! reduces to the string-literal basics.

use cbps_sim::{ObsSummary, Observability, Stage};

/// Summary of one `(traffic class, stage)` latency histogram. Latencies
/// are microseconds of simulated time since the operation's origin stage.
#[derive(Clone, Debug)]
pub struct StageSummary {
    /// Traffic-class name (`subscription`, `publication`, ...).
    pub class: String,
    /// Stage name (`publish`, `route-hop`, `deliver`, ...).
    pub stage: String,
    /// Count/mean/percentiles of the since-origin latency in µs.
    pub summary: ObsSummary,
}

/// Summary of one named histogram (`store.size`, `rendezvous.fanout`,
/// `queue.depth`, ...). Units are those of the recorded samples.
#[derive(Clone, Debug)]
pub struct NamedSummary {
    /// Histogram name.
    pub name: String,
    /// Count/mean/percentiles of the samples.
    pub summary: ObsSummary,
}

/// One of the most-loaded rendezvous nodes of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotNode {
    /// Node index.
    pub node: usize,
    /// Peak stored-subscription count at that node (max over runs).
    pub peak_stored: u64,
}

/// Node-load balance of one experiment: how far the hottest rendezvous
/// nodes sit above the mean, plus the adaptive policy's control activity.
/// Load is the per-node cumulative rendezvous work (publications processed
/// + matches produced); ratios close to 1 mean a balanced ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadReport {
    /// Max node load over mean node load.
    pub max_mean: f64,
    /// 99th-percentile node load over mean node load.
    pub p99_mean: f64,
    /// Rendezvous split decisions taken (0 under the static policy).
    pub splits: u64,
    /// Rendezvous merge decisions taken (0 under the static policy).
    pub merges: u64,
}

impl LoadReport {
    /// Distills per-node work counts and control counters into ratio form.
    /// Returns `None` when no node recorded any work (ratios undefined).
    pub fn from_work(work: &[u64], splits: u64, merges: u64) -> Option<LoadReport> {
        let total: u64 = work.iter().sum();
        if work.is_empty() || total == 0 {
            return None;
        }
        let mean = total as f64 / work.len() as f64;
        let max = *work.iter().max().expect("non-empty") as f64;
        let mut sorted: Vec<u64> = work.to_vec();
        sorted.sort_unstable();
        // Nearest-rank p99: 1-based rank ceil(0.99 * n).
        let rank = (sorted.len() * 99).div_ceil(100).max(1);
        let p99 = sorted[rank - 1] as f64;
        Some(LoadReport {
            max_mean: max / mean,
            p99_mean: p99 / mean,
            splits,
            merges,
        })
    }
}

/// The observability distillate of one experiment.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Per-(class, stage) latency summaries, in pipeline order.
    pub stages: Vec<StageSummary>,
    /// Named-histogram summaries, sorted by name.
    pub named: Vec<NamedSummary>,
    /// Top-k most-loaded rendezvous nodes, heaviest first.
    pub hot_nodes: Vec<HotNode>,
    /// Node-load balance; `None` when no work counts were recorded.
    pub load: Option<LoadReport>,
    /// Stage records retained in the trace log.
    pub trace_records: usize,
    /// Stage records dropped once the log filled.
    pub trace_dropped: u64,
}

/// How many hot nodes a report keeps.
pub const HOT_NODE_TOP_K: usize = 5;

impl ObsReport {
    /// Distills a merged observability registry (plus the per-node peak
    /// store sizes accumulated alongside it) into report form.
    pub fn distill(obs: &Observability, node_peaks: &[u64]) -> ObsReport {
        let stage_index = |s: Stage| {
            Stage::ALL
                .iter()
                .position(|&x| x == s)
                .unwrap_or(usize::MAX)
        };
        let mut stages: Vec<(u8, usize, StageSummary)> = obs
            .stage_histograms()
            .filter_map(|(class, stage, h)| {
                ObsSummary::of(h).map(|summary| {
                    (
                        class.0,
                        stage_index(stage),
                        StageSummary {
                            class: class.name().to_owned(),
                            stage: stage.name().to_owned(),
                            summary,
                        },
                    )
                })
            })
            .collect();
        stages.sort_by_key(|(c, s, _)| (*c, *s));

        let mut named: Vec<NamedSummary> = obs
            .named_histograms()
            .filter_map(|(name, h)| {
                ObsSummary::of(h).map(|summary| NamedSummary {
                    name: name.to_owned(),
                    summary,
                })
            })
            .collect();
        named.sort_by(|a, b| a.name.cmp(&b.name));

        let mut hot: Vec<HotNode> = node_peaks
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0)
            .map(|(node, &peak_stored)| HotNode { node, peak_stored })
            .collect();
        // Heaviest first; ties broken by node index so output is stable.
        hot.sort_by_key(|h| (std::cmp::Reverse(h.peak_stored), h.node));
        hot.truncate(HOT_NODE_TOP_K);

        ObsReport {
            stages: stages.into_iter().map(|(_, _, s)| s).collect(),
            named,
            hot_nodes: hot,
            load: None,
            trace_records: obs.log().len(),
            trace_dropped: obs.log().dropped(),
        }
    }

    /// Attaches the node-load balance distilled from per-node work counts
    /// and the rendezvous control counters.
    pub fn with_load(mut self, work: &[u64], splits: u64, merges: u64) -> ObsReport {
        self.load = LoadReport::from_work(work, splits, merges);
        self
    }
}

/// The allocation audit of one run (`probe alloc`): counting-allocator
/// totals for the whole figures-workload replay and for a steady-state
/// window injected after the replay drained. Counts are exact allocator
/// calls (alloc + alloc_zeroed + realloc), not sampled.
#[derive(Clone, Debug)]
pub struct AllocReport {
    /// Event-pool recycling policy the run used (`reuse` or `fresh`).
    pub pool: String,
    /// Heap allocations during the whole trace replay (buildup included).
    pub replay_allocs: u64,
    /// Bytes requested by those allocations.
    pub replay_bytes: u64,
    /// Simulated events processed during the replay.
    pub replay_events: u64,
    /// Heap allocations while draining the steady-state window.
    pub steady_allocs: u64,
    /// Bytes requested during the steady-state window.
    pub steady_bytes: u64,
    /// Simulated events processed in the steady-state window.
    pub steady_events: u64,
}

impl AllocReport {
    /// Allocations per simulated event over the whole replay.
    pub fn replay_allocs_per_event(&self) -> f64 {
        self.replay_allocs as f64 / self.replay_events.max(1) as f64
    }

    /// Allocations per simulated event in the steady-state window.
    pub fn steady_allocs_per_event(&self) -> f64 {
        self.steady_allocs as f64 / self.steady_events.max(1) as f64
    }
}

/// One experiment's record in the report: the v1 perf fields plus the
/// optional observability distillate.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment name as passed to `run_named`.
    pub name: String,
    /// Wall-clock seconds for the whole experiment.
    pub wall_secs: f64,
    /// Simulator events processed across the experiment's runs.
    pub events: u64,
    /// Maximum event-queue depth seen by any run.
    pub peak_queue_depth: u64,
    /// Observability distillate; `None` when the run had tracing off.
    pub obs: Option<ObsReport>,
    /// Allocation audit; `None` outside `probe alloc` runs.
    pub alloc: Option<AllocReport>,
}

/// A whole `figures` invocation's report.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// `quick` or `paper`.
    pub scale: String,
    /// Worker-pool size the sweep ran with.
    pub jobs: usize,
    /// Observability mode name the sweep ran under (`off`, `stages`, `full`).
    pub observability: String,
    /// Event-queue implementation name (`wheel` or `heap`).
    pub scheduler: String,
    /// Event-loop shard count the networks ran with (1 = single-threaded).
    pub shards: usize,
    /// Matching engine rendezvous nodes ran (`counting` or `sorted`).
    pub match_engine: String,
    /// Rendezvous policy the networks ran (`static` or `adaptive`).
    pub rendezvous: String,
    /// Overlay substrate the sweep deployed on (`chord` or `pastry`).
    pub overlay: String,
    /// Per-experiment records, in run order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"cbps-report/v2\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", escape(&self.scale)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"observability\": \"{}\",\n",
            escape(&self.observability)
        ));
        out.push_str(&format!(
            "  \"scheduler\": \"{}\",\n",
            escape(&self.scheduler)
        ));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!(
            "  \"match_engine\": \"{}\",\n",
            escape(&self.match_engine)
        ));
        out.push_str(&format!(
            "  \"rendezvous\": \"{}\",\n",
            escape(&self.rendezvous)
        ));
        out.push_str(&format!("  \"overlay\": \"{}\",\n", escape(&self.overlay)));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(&experiment_json(e, "    "));
            out.push_str(if i + 1 < self.experiments.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let total_secs: f64 = self.experiments.iter().map(|e| e.wall_secs).sum();
        let total_events: u64 = self.experiments.iter().map(|e| e.events).sum();
        out.push_str(&format!("  \"total_wall_secs\": {total_secs:.3},\n"));
        out.push_str(&format!("  \"total_events\": {total_events}\n"));
        out.push_str("}\n");
        out
    }
}

fn experiment_json(e: &ExperimentReport, indent: &str) -> String {
    let events_per_sec = if e.wall_secs > 0.0 {
        e.events as f64 / e.wall_secs
    } else {
        0.0
    };
    let mut out = format!(
        "{indent}{{\"name\": \"{}\", \"wall_secs\": {:.3}, \"events\": {}, \
         \"events_per_sec\": {:.0}, \"peak_queue_depth\": {}",
        escape(&e.name),
        e.wall_secs,
        e.events,
        events_per_sec,
        e.peak_queue_depth,
    );
    if let Some(a) = &e.alloc {
        out.push_str(&format!(
            ",\n{indent}  \"alloc\": {{\"pool\": \"{}\", \
             \"replay_allocs\": {}, \"replay_bytes\": {}, \"replay_events\": {}, \
             \"replay_allocs_per_event\": {:.3}, \
             \"steady_allocs\": {}, \"steady_bytes\": {}, \"steady_events\": {}, \
             \"steady_allocs_per_event\": {:.3}}}",
            escape(&a.pool),
            a.replay_allocs,
            a.replay_bytes,
            a.replay_events,
            a.replay_allocs_per_event(),
            a.steady_allocs,
            a.steady_bytes,
            a.steady_events,
            a.steady_allocs_per_event(),
        ));
    }
    if let Some(obs) = &e.obs {
        let inner = format!("{indent}  ");
        out.push_str(",\n");
        out.push_str(&format!("{inner}\"stages\": [\n"));
        for (i, s) in obs.stages.iter().enumerate() {
            out.push_str(&format!(
                "{inner}  {{\"class\": \"{}\", \"stage\": \"{}\", \"unit\": \"us\", {}}}{}\n",
                escape(&s.class),
                escape(&s.stage),
                summary_fields(&s.summary),
                if i + 1 < obs.stages.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("{inner}],\n"));
        out.push_str(&format!("{inner}\"histograms\": [\n"));
        for (i, n) in obs.named.iter().enumerate() {
            out.push_str(&format!(
                "{inner}  {{\"name\": \"{}\", {}}}{}\n",
                escape(&n.name),
                summary_fields(&n.summary),
                if i + 1 < obs.named.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!("{inner}],\n"));
        out.push_str(&format!("{inner}\"hot_nodes\": ["));
        for (i, h) in obs.hot_nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"node\": {}, \"peak_stored\": {}}}",
                h.node, h.peak_stored
            ));
        }
        out.push_str("],\n");
        if let Some(load) = &obs.load {
            out.push_str(&format!(
                "{inner}\"load\": {{\"max_mean\": {:.3}, \"p99_mean\": {:.3}, \
                 \"splits\": {}, \"merges\": {}}},\n",
                load.max_mean, load.p99_mean, load.splits, load.merges
            ));
        }
        out.push_str(&format!(
            "{inner}\"trace\": {{\"records\": {}, \"dropped\": {}}}\n",
            obs.trace_records, obs.trace_dropped
        ));
        out.push_str(&format!("{indent}}}"));
    } else {
        out.push('}');
    }
    out
}

fn summary_fields(s: &ObsSummary) -> String {
    format!(
        "\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}",
        s.count, s.mean, s.p50, s.p90, s.p99, s.max
    )
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbps_sim::{ObsMode, SimTime, TraceId, TrafficClass};

    fn sample_obs() -> Observability {
        let mut obs = Observability::new();
        obs.set_mode(ObsMode::Full);
        let t = TraceId::for_publication(3, 1);
        obs.stage(
            t,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            3,
            SimTime::ZERO,
        );
        obs.stage(
            t,
            Stage::Deliver,
            TrafficClass::NOTIFICATION,
            9,
            SimTime::from_millis(40),
        );
        obs.sample("store.size", 7);
        obs.sample("store.size", 9);
        obs
    }

    #[test]
    fn distill_orders_and_summarizes() {
        let obs = sample_obs();
        let report = ObsReport::distill(&obs, &[0, 5, 0, 12, 3]);
        // Publish has zero latency (it *is* the origin); deliver is 40ms.
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].class, "publication");
        assert_eq!(report.stages[0].stage, "publish");
        assert_eq!(report.stages[1].stage, "deliver");
        assert_eq!(report.stages[1].summary.max, 40_000);
        assert_eq!(report.named.len(), 1);
        assert_eq!(report.named[0].name, "store.size");
        assert_eq!(report.named[0].summary.count, 2);
        assert_eq!(
            report.hot_nodes,
            vec![
                HotNode {
                    node: 3,
                    peak_stored: 12
                },
                HotNode {
                    node: 1,
                    peak_stored: 5
                },
                HotNode {
                    node: 4,
                    peak_stored: 3
                },
            ]
        );
        assert_eq!(report.trace_records, 2);
        assert_eq!(report.trace_dropped, 0);
    }

    #[test]
    fn json_is_self_describing_and_backward_compatible() {
        let obs = sample_obs();
        let report = RunReport {
            scale: "quick".into(),
            jobs: 2,
            observability: "full".into(),
            scheduler: "wheel".into(),
            shards: 1,
            match_engine: "counting".into(),
            rendezvous: "adaptive".into(),
            overlay: "chord".into(),
            experiments: vec![
                ExperimentReport {
                    name: "fig5".into(),
                    wall_secs: 1.5,
                    events: 3000,
                    peak_queue_depth: 17,
                    obs: Some(ObsReport::distill(&obs, &[0, 4]).with_load(&[10, 30, 20], 2, 1)),
                    alloc: None,
                },
                ExperimentReport {
                    name: "keys".into(),
                    wall_secs: 0.25,
                    events: 0,
                    peak_queue_depth: 0,
                    obs: None,
                    alloc: Some(AllocReport {
                        pool: "reuse".into(),
                        replay_allocs: 120,
                        replay_bytes: 4096,
                        replay_events: 60,
                        steady_allocs: 0,
                        steady_bytes: 0,
                        steady_events: 500,
                    }),
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cbps-report/v2\""));
        assert!(json.contains("\"overlay\": \"chord\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"match_engine\": \"counting\""));
        // v1 fields keep their names so old baselines stay comparable.
        assert!(json.contains("\"wall_secs\": 1.500"));
        assert!(json.contains("\"events_per_sec\": 2000"));
        assert!(json.contains("\"peak_queue_depth\": 17"));
        assert!(json.contains("\"total_events\": 3000"));
        // v2 additions.
        assert!(json.contains("\"steady_allocs_per_event\": 0.000"));
        assert!(json.contains("\"replay_allocs_per_event\": 2.000"));
        assert!(json.contains("\"pool\": \"reuse\""));
        assert!(json.contains("\"stage\": \"deliver\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"hot_nodes\": [{\"node\": 1, \"peak_stored\": 4}]"));
        assert!(json.contains("\"rendezvous\": \"adaptive\""));
        // max/mean = 30/20 = 1.5; p99 over 3 nodes picks the max.
        assert!(json.contains(
            "\"load\": {\"max_mean\": 1.500, \"p99_mean\": 1.500, \"splits\": 2, \"merges\": 1}"
        ));
        // Balanced braces (cheap structural sanity without a JSON parser).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn load_report_ratios() {
        // Uniform load: both ratios are exactly 1.
        let r = LoadReport::from_work(&[5, 5, 5, 5], 0, 0).unwrap();
        assert_eq!(r.max_mean, 1.0);
        assert_eq!(r.p99_mean, 1.0);
        // A single hotspot dominates max/mean but with >=100 nodes the
        // p99 excludes it.
        let mut work = vec![10u64; 100];
        work[42] = 1010;
        let r = LoadReport::from_work(&work, 3, 1).unwrap();
        assert!(r.max_mean > 40.0, "max/mean {}", r.max_mean);
        assert!(r.p99_mean < 2.0, "p99/mean {}", r.p99_mean);
        assert_eq!((r.splits, r.merges), (3, 1));
        // No work at all: undefined, not NaN.
        assert_eq!(LoadReport::from_work(&[0, 0], 0, 0), None);
        assert_eq!(LoadReport::from_work(&[], 0, 0), None);
    }
}

//! Command-line experiment runner.
//!
//! ```text
//! figures [--scale quick|paper|large] [--nodes N] [--overlay chord|pastry]
//!         [--jobs N] [--scheduler wheel|heap] [--shards N]
//!         [--match-engine counting|sorted] [--csv DIR] [--json FILE]
//!         [--report FILE] [EXPERIMENT...]
//! ```
//!
//! With no experiment names, runs everything. Names: route, keys, fig5,
//! fig6, fig7, fig8, fig9a, fig9b, mcast, churn, all.
//!
//! `--scale large` runs the deployment-scale presets (10^5-node networks
//! on the node-sweep experiments, paper op counts elsewhere); `--nodes N`
//! overrides the per-experiment network size outright (up to 10^6). Both
//! widen the key space automatically via `cbps::deployment_key_space` so
//! every node still owns a distinct key.
//! `--jobs N` farms independent sweep points out to `N` worker threads;
//! each simulation stays single-threaded and deterministic, so the tables
//! are byte-identical at any job count. `--scheduler wheel|heap` selects
//! the simulator's event queue (default: wheel); the two produce
//! byte-identical tables — only the wall times differ — which ci.sh
//! verifies on every run. `--shards N` partitions every simulated network
//! into `N` event-loop shards run on worker threads with conservative
//! lookahead (default: 1, the classic single-threaded loop); delivered
//! sets and tables stay identical at any shard count, which ci.sh also
//! verifies. `--match-engine counting|sorted` selects the rendezvous
//! matching engine (default: counting); the engines return identical
//! match sets — only matching cost and memory layout change — so tables
//! are byte-identical either way, a third invariant ci.sh checks.
//! `--rendezvous static|adaptive` selects the rendezvous policy
//! (default: static, the paper's stateless ak-mapping, which leaves every
//! recorded baseline byte-identical); `adaptive` turns on online hot-key
//! splitting — delivered sets stay identical (ci.sh A/B-checks the
//! delivered-set fingerprint), but message counts and load balance
//! change, so adaptive tables are not comparable against static
//! baselines. `--overlay chord|pastry` selects the routing
//! substrate the deployment-style experiments run on (default: chord;
//! `route` and `churn` calibrate Chord-specific machinery and always run
//! on Chord, and the `overlay` comparison always runs both). `--json FILE` and `--report FILE`
//! both write the self-describing `cbps-report/v2` document (wall time,
//! events/sec, peak queue depth per experiment — the v1 baseline fields —
//! plus, when observability is on, per-stage latency percentiles, named
//! histograms, and the hottest rendezvous nodes). `--report` additionally
//! switches observability on (`stages` mode) for every run; `--json`
//! leaves it off, matching the old flag's zero-overhead behavior.

use std::io::Write as _;
use std::time::Instant;

use cbps::RendezvousMode;
use cbps_bench::experiments::{run_named, EXPERIMENT_NAMES};
use cbps_bench::report::{ExperimentReport, ObsReport, RunReport};
use cbps_bench::runner;
use cbps_bench::Scale;
use cbps_sim::{MatchEngineKind, ObsMode, SchedulerKind};

fn main() {
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    // Fail on unwritable output paths before running anything: a
    // paper-scale sweep can take hours, and losing the report at the end
    // wastes all of it.
    let probe_writable = |path: &str| {
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        }
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref().and_then(Scale::parse) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale expects quick|paper|large");
                    std::process::exit(2);
                }
            },
            "--nodes" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if (1..=runner::MAX_NODES).contains(&n) => runner::set_nodes_override(n),
                _ => {
                    eprintln!("--nodes expects an integer in 1..={}", runner::MAX_NODES);
                    std::process::exit(2);
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => runner::set_jobs(n),
                _ => {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--scheduler" => match args.next().as_deref().and_then(SchedulerKind::parse) {
                Some(kind) => runner::set_scheduler(kind),
                None => {
                    eprintln!("--scheduler expects wheel|heap");
                    std::process::exit(2);
                }
            },
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => runner::set_shards(n),
                _ => {
                    eprintln!("--shards expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--match-engine" => match args.next().as_deref().and_then(MatchEngineKind::parse) {
                Some(kind) => runner::set_match_engine(kind),
                None => {
                    eprintln!("--match-engine expects counting|sorted");
                    std::process::exit(2);
                }
            },
            "--rendezvous" => match args.next().as_deref().and_then(RendezvousMode::parse) {
                Some(mode) => runner::set_rendezvous(mode),
                None => {
                    eprintln!("--rendezvous expects static|adaptive");
                    std::process::exit(2);
                }
            },
            "--pool" => match args.next().as_deref().and_then(cbps_sim::PoolMode::parse) {
                Some(mode) => runner::set_pool(mode),
                None => {
                    eprintln!("--pool expects reuse|fresh");
                    std::process::exit(2);
                }
            },
            "--overlay" => match args.next().as_deref().and_then(runner::BackendKind::parse) {
                Some(kind) => runner::set_backend(kind),
                None => {
                    eprintln!("--overlay expects chord|pastry");
                    std::process::exit(2);
                }
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => {
                    eprintln!("--csv expects a directory");
                    std::process::exit(2);
                }
            },
            "--json" => match args.next() {
                Some(path) => {
                    probe_writable(&path);
                    json_path = Some(path);
                }
                None => {
                    eprintln!("--json expects a file path");
                    std::process::exit(2);
                }
            },
            "--report" => match args.next() {
                Some(path) => {
                    probe_writable(&path);
                    report_path = Some(path);
                }
                None => {
                    eprintln!("--report expects a file path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale quick|paper|large] [--nodes N] \
                     [--overlay chord|pastry] [--jobs N] [--scheduler wheel|heap] \
                     [--shards N] [--match-engine counting|sorted] [--pool reuse|fresh] \
                     [--rendezvous static|adaptive] \
                     [--csv DIR] [--json FILE] [--report FILE] [EXPERIMENT...]\n\
                     experiments: {} (default: all)",
                    EXPERIMENT_NAMES.join(", ")
                );
                return;
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("all".to_owned());
    }
    // Expand "all" so the report carries one record per experiment
    // (matching the per-name layout of BENCH_baseline.json).
    if names.iter().any(|n| n == "all") {
        names = EXPERIMENT_NAMES.iter().map(|&n| n.to_owned()).collect();
    }
    if report_path.is_some() {
        runner::set_observability(ObsMode::Stages);
    }

    let mut records: Vec<ExperimentReport> = Vec::new();
    for name in &names {
        let started = Instant::now();
        runner::reset_perf();
        let Some(tables) = run_named(name, scale) else {
            eprintln!(
                "unknown experiment {name:?}; known: {}",
                EXPERIMENT_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        let wall_secs = started.elapsed().as_secs_f64();
        let (events, peak_queue_depth) = runner::perf_totals();
        let obs = runner::take_obs().map(|obs| {
            let hot = runner::take_hot_nodes();
            let work = runner::take_node_work();
            let (splits, merges) = runner::rendezvous_totals();
            ObsReport::distill(&obs, &hot).with_load(&work, splits, merges)
        });
        records.push(ExperimentReport {
            name: name.clone(),
            wall_secs,
            events,
            peak_queue_depth,
            obs,
            alloc: None,
        });
        for table in &tables {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let slug = table
                    .title()
                    .chars()
                    .map(|c| {
                        if c.is_alphanumeric() {
                            c.to_ascii_lowercase()
                        } else {
                            '_'
                        }
                    })
                    .collect::<String>()
                    .split('_')
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
                    .join("_");
                let path = format!("{dir}/{slug}.csv");
                match std::fs::File::create(&path) {
                    Ok(mut f) => {
                        let _ = f.write_all(table.to_csv().as_bytes());
                    }
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
        eprintln!("[{name} done in {wall_secs:.1}s]\n");
    }

    let report = RunReport {
        scale: scale.name().to_owned(),
        jobs: runner::jobs(),
        observability: runner::observability().name().to_owned(),
        scheduler: runner::scheduler().name().to_owned(),
        shards: runner::shards(),
        match_engine: runner::match_engine().name().to_owned(),
        rendezvous: runner::rendezvous().name().to_owned(),
        overlay: runner::backend().name().to_owned(),
        experiments: records,
    };
    for path in json_path.iter().chain(report_path.iter()) {
        let write =
            std::fs::File::create(path).and_then(|mut f| f.write_all(report.to_json().as_bytes()));
        match write {
            Ok(()) => eprintln!("run report written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! Command-line experiment runner.
//!
//! ```text
//! figures [--scale quick|paper] [--jobs N] [--csv DIR] [--json FILE] [EXPERIMENT...]
//! ```
//!
//! With no experiment names, runs everything. Names: route, keys, fig5,
//! fig6, fig7, fig8, fig9a, fig9b, mcast, churn, all.
//!
//! `--jobs N` farms independent sweep points out to `N` worker threads;
//! each simulation stays single-threaded and deterministic, so the tables
//! are byte-identical at any job count. `--json FILE` appends a
//! machine-readable perf record per experiment (wall time, simulator
//! events processed, events/sec, peak event-queue depth).

use std::io::Write as _;
use std::time::Instant;

use cbps_bench::experiments::{run_named, EXPERIMENT_NAMES};
use cbps_bench::runner;
use cbps_bench::Scale;

/// One experiment's perf record for the `--json` report.
struct PerfRecord {
    name: String,
    wall_secs: f64,
    events: u64,
    peak_queue_depth: u64,
}

fn json_report(scale: Scale, jobs: usize, records: &[PerfRecord]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    ));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        let events_per_sec = if r.wall_secs > 0.0 {
            r.events as f64 / r.wall_secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_secs\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"peak_queue_depth\": {}}}{}\n",
            r.name,
            r.wall_secs,
            r.events,
            events_per_sec,
            r.peak_queue_depth,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let total_secs: f64 = records.iter().map(|r| r.wall_secs).sum();
    let total_events: u64 = records.iter().map(|r| r.events).sum();
    out.push_str(&format!("  \"total_wall_secs\": {total_secs:.3},\n"));
    out.push_str(&format!("  \"total_events\": {total_events}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("quick") => scale = Scale::Quick,
                Some("paper") => scale = Scale::Paper,
                other => {
                    eprintln!("--scale expects quick|paper, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => runner::set_jobs(n),
                _ => {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => {
                    eprintln!("--csv expects a directory");
                    std::process::exit(2);
                }
            },
            "--json" => match args.next() {
                Some(path) => {
                    // Fail before running anything: a paper-scale sweep can take
                    // hours, and losing the report at the end wastes all of it.
                    if let Err(e) = std::fs::File::create(&path) {
                        eprintln!("cannot create {path}: {e}");
                        std::process::exit(2);
                    }
                    json_path = Some(path);
                }
                None => {
                    eprintln!("--json expects a file path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale quick|paper] [--jobs N] [--csv DIR] [--json FILE] [EXPERIMENT...]\n\
                     experiments: {} (default: all)",
                    EXPERIMENT_NAMES.join(", ")
                );
                return;
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("all".to_owned());
    }

    let mut records: Vec<PerfRecord> = Vec::new();
    for name in &names {
        let started = Instant::now();
        runner::reset_perf();
        let Some(tables) = run_named(name, scale) else {
            eprintln!(
                "unknown experiment {name:?}; known: {}",
                EXPERIMENT_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        let wall_secs = started.elapsed().as_secs_f64();
        let (events, peak_queue_depth) = runner::perf_totals();
        records.push(PerfRecord {
            name: name.clone(),
            wall_secs,
            events,
            peak_queue_depth,
        });
        for table in &tables {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let slug = table
                    .title()
                    .chars()
                    .map(|c| {
                        if c.is_alphanumeric() {
                            c.to_ascii_lowercase()
                        } else {
                            '_'
                        }
                    })
                    .collect::<String>()
                    .split('_')
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
                    .join("_");
                let path = format!("{dir}/{slug}.csv");
                match std::fs::File::create(&path) {
                    Ok(mut f) => {
                        let _ = f.write_all(table.to_csv().as_bytes());
                    }
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
        eprintln!("[{name} done in {wall_secs:.1}s]\n");
    }

    if let Some(path) = json_path {
        let report = json_report(scale, runner::jobs(), &records);
        let write = std::fs::File::create(&path).and_then(|mut f| f.write_all(report.as_bytes()));
        match write {
            Ok(()) => eprintln!("perf report written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! Command-line experiment runner.
//!
//! ```text
//! figures [--scale quick|paper] [--csv DIR] [EXPERIMENT...]
//! ```
//!
//! With no experiment names, runs everything. Names: route, keys, fig5,
//! fig6, fig7, fig8, fig9a, fig9b, mcast, churn, all.

use std::io::Write as _;
use std::time::Instant;

use cbps_bench::experiments::{run_named, EXPERIMENT_NAMES};
use cbps_bench::Scale;

fn main() {
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<String> = None;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("quick") => scale = Scale::Quick,
                Some("paper") => scale = Scale::Paper,
                other => {
                    eprintln!("--scale expects quick|paper, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(dir),
                None => {
                    eprintln!("--csv expects a directory");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale quick|paper] [--csv DIR] [EXPERIMENT...]\n\
                     experiments: {} (default: all)",
                    EXPERIMENT_NAMES.join(", ")
                );
                return;
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("all".to_owned());
    }

    for name in &names {
        let started = Instant::now();
        let Some(tables) = run_named(name, scale) else {
            eprintln!(
                "unknown experiment {name:?}; known: {}",
                EXPERIMENT_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        for table in &tables {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let slug = table
                    .title()
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                    .collect::<String>()
                    .split('_')
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>()
                    .join("_");
                let path = format!("{dir}/{slug}.csv");
                match std::fs::File::create(&path) {
                    Ok(mut f) => {
                        let _ = f.write_all(table.to_csv().as_bytes());
                    }
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
        eprintln!("[{name} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}

//! Focused hot-path probes for the two structures this crate leans on:
//! the event scheduler and the matching index.
//!
//! ```text
//! probe sched [--ops N] [--seed S]      heap vs wheel push/pop throughput
//! probe match [--subs N] [--seed S] [--json FILE]
//!                                       counting vs sorted engine sweep
//! probe overlay [--nodes N] [--seed S]  chord vs pastry end-to-end profile
//! probe shard [--nodes N] [--seed S] [--json FILE]
//!                                       sharded-engine scaling sweep
//! probe alloc [--nodes N] [--seed S] [--pool reuse|fresh] [--json FILE]
//!                                       heap-allocation audit
//! probe scale [--max-nodes N] [--seed S] [--budget-secs T] [--json FILE]
//!                                       build-pipeline scaling sweep
//! probe rendezvous [--nodes N] [--seed S] [--json FILE]
//!                                       static vs adaptive rendezvous A/B
//! ```
//!
//! `probe sched` replays the same seeded mixed-horizon workload (zero-delay
//! local sends, 50 ms network hops, multi-second timers, rare long-horizon
//! timers that land in the coarse wheel levels) through both the
//! `BinaryHeap` and the timing-wheel scheduler, reports ops/sec for each,
//! and cross-checks a running checksum of the pop order — a mismatch means
//! the wheel broke the `(time, seq)` total order and the probe exits
//! non-zero. `probe match` sweeps stored-subscription populations up to
//! `--subs` (default 10^6) through both matching engines — the counting
//! index and the sorted index — over the Zipf-skewed paper workload,
//! reports each engine's matched events/sec and build time, and builds the
//! same population through the covering `SubscriptionStore` to report how
//! many physical entries covering leaves. Match sets are cross-checked
//! event by event between the engines (and against the covering store), so
//! a disagreement exits non-zero; with `--json FILE` the sweep is written
//! as a small JSON document. `probe overlay` runs
//! the identical pub/sub workload over the Chord and the Pastry substrate
//! through the one generic deployment façade and reports each substrate's
//! simulator throughput, one-hop message total and per-request hop costs;
//! it exits non-zero if the substrates disagree on delivered notifications.
//! `probe shard` replays one fixed Chord workload with the event loop split
//! into 1, 2, 4 and 8 conservative-lookahead shards, reports each run's
//! events/sec and its speedup over the single-shard baseline, and exits
//! non-zero if any shard count changes the delivered-set fingerprint; with
//! `--json FILE` it also writes the sweep (plus the host's core count, so
//! numbers from different machines are never compared blind) as a small
//! JSON document. `probe alloc` runs the whole binary under a counting
//! global allocator, replays the fixed chord workload, and reports heap
//! allocations per simulated event — for the full replay and for a
//! steady-state publication window injected after warmup, which must be
//! exactly zero with the default reuse pool (the probe exits non-zero
//! otherwise); `--pool fresh` is the always-allocate control and `--json
//! FILE` emits the audit as a `cbps-report/v2` document. `probe scale`
//! sweeps the deployment build pipeline across 10^3, 10^4 and 10^5 nodes
//! (capped by `--max-nodes`; raising the cap to 10^6 adds an ungated
//! stretch point), reporting build seconds and heap bytes per point and
//! per node plus a serial-vs-4-worker routing-table parity check; it
//! exits non-zero if per-node cost drifts more than 2x across the core
//! sweep, if the tables differ, or if `--budget-secs` is exceeded.
//! `probe rendezvous` replays one Zipf flash-crowd workload (mapping 3,
//! one selective attribute, a mid-run burst of skewed publications) under
//! the static and the adaptive rendezvous policy at 1 and 4 event-loop
//! shards; it exits non-zero unless the delivered-set fingerprint is
//! identical across all four runs, the adaptive policy's max/mean
//! node-load ratio is strictly below the static policy's, at least one
//! split fired, and the split/merge decisions are shard-independent;
//! `--json FILE` records the A/B sweep (this is how `BENCH_pr10.json`
//! was produced).
//!
//! Unlike `figures`, these numbers are wall-clock measurements of isolated
//! structures: use them for before/after comparisons on one machine, not as
//! simulation results.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cbps::{Event, EventSpace, MatchIndex, SubId, Subscription};
use cbps_rng::Rng;
use cbps_sim::{PoolMode, TimingWheel};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Counting wrapper around the system allocator. Every heap allocation in
/// the probe process bumps two relaxed counters that `probe alloc`
/// snapshots around its measurement windows; the cost is two relaxed
/// atomic adds per allocation, which is noise for the other probes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `(allocator calls, bytes requested)` since process start.
fn alloc_totals() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// One scheduler op: push `delay_micros` ahead of the drain time, or pop.
#[derive(Clone, Copy)]
enum Op {
    Push { delay_micros: u64 },
    Pop,
}

/// Generates a push/pop script with the mixed delay profile of a real run:
/// mostly network hops and zero-delay local sends, a tail of timers, and a
/// sliver of long-horizon timers that exercise the coarse wheel levels.
fn sched_script(ops: usize, seed: u64) -> Vec<Op> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(ops);
    let mut pending = 0usize;
    for _ in 0..ops {
        // Slight push bias keeps the queue populated, matching the
        // simulator's steady state of a few thousand in-flight events.
        let push = pending == 0 || rng.gen_range(0..100u32) < 55;
        if push {
            let delay_micros = match rng.gen_range(0..100u32) {
                0..=29 => 0,                                    // send_local
                30..=84 => 50_000,                              // network hop
                85..=98 => rng.gen_range(1..30u64) * 1_000_000, // timer
                _ => rng.gen_range(300..4_000u64) * 1_000_000,  // long timer
            };
            script.push(Op::Push { delay_micros });
            pending += 1;
        } else {
            script.push(Op::Pop);
            pending -= 1;
        }
    }
    script
}

/// Minimal scheduler facade so both queues run the identical loop.
trait Queue {
    fn push(&mut self, key: u128);
    fn pop(&mut self) -> Option<u128>;
}

impl Queue for BinaryHeap<Reverse<u128>> {
    fn push(&mut self, key: u128) {
        BinaryHeap::push(self, Reverse(key));
    }
    fn pop(&mut self) -> Option<u128> {
        BinaryHeap::pop(self).map(|Reverse(k)| k)
    }
}

impl Queue for TimingWheel<()> {
    fn push(&mut self, key: u128) {
        TimingWheel::push(self, key, ());
    }
    fn pop(&mut self) -> Option<u128> {
        TimingWheel::pop(self).map(|(k, ())| k)
    }
}

/// Runs the script and returns (elapsed seconds, pop-order checksum).
/// The checksum folds every popped key, so any ordering difference between
/// the two schedulers changes it.
fn run_script(queue: &mut dyn Queue, script: &[Op]) -> (f64, u64) {
    let mut seq = 0u64;
    let mut drain_time = 0u64;
    let mut checksum = 0u64;
    let started = Instant::now();
    for op in script {
        match *op {
            Op::Push { delay_micros } => {
                let t = drain_time + delay_micros;
                queue.push(((t as u128) << 64) | seq as u128);
                seq += 1;
            }
            Op::Pop => {
                let key = queue.pop().expect("script never pops when empty");
                drain_time = (key >> 64) as u64;
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add((key >> 64) as u64)
                    .wrapping_add(key as u64);
            }
        }
    }
    // Drain what's left so both schedulers do the same total work and the
    // checksum covers the full ordering.
    while let Some(key) = queue.pop() {
        checksum = checksum
            .rotate_left(7)
            .wrapping_add((key >> 64) as u64)
            .wrapping_add(key as u64);
    }
    (started.elapsed().as_secs_f64(), checksum)
}

fn probe_sched(ops: usize, seed: u64) -> Result<(), String> {
    let script = sched_script(ops, seed);
    println!("scheduler probe: {ops} ops, seed {seed}");

    let mut heap: BinaryHeap<Reverse<u128>> = BinaryHeap::new();
    let (heap_secs, heap_sum) = run_script(&mut heap, &script);
    let mut wheel: TimingWheel<()> = TimingWheel::new();
    let (wheel_secs, wheel_sum) = run_script(&mut wheel, &script);

    for (name, secs) in [("heap", heap_secs), ("wheel", wheel_secs)] {
        println!(
            "  {name:<6} {:>10.0} ops/sec  ({secs:.3}s)",
            ops as f64 / secs
        );
    }
    println!("  speedup: {:.2}x", heap_secs / wheel_secs);
    if heap_sum != wheel_sum {
        return Err(format!(
            "pop-order checksum mismatch: heap {heap_sum:#x} != wheel {wheel_sum:#x}"
        ));
    }
    println!("  pop-order checksum: {heap_sum:#x} (identical)");
    Ok(())
}

/// One sweep point of the match probe.
struct MatchPoint {
    subs: usize,
    counting_build_secs: f64,
    sorted_build_secs: f64,
    counting_secs: f64,
    sorted_secs: f64,
    matched: u64,
    hits: u64,
    physical: usize,
    covering_build_secs: f64,
}

/// Measures both engines (and the covering store) over `n` stored
/// subscriptions of the Zipf-skewed paper workload. Match sets are
/// cross-checked event by event before any timing, so a disagreement is a
/// hard error, never a skewed number.
fn match_point(n: usize, seed: u64) -> Result<MatchPoint, String> {
    use cbps::{MatchEngineKind, SortedIndex, StoredSub, SubscriptionStore};
    use cbps_overlay::{KeyRangeSet, KeySpace, Peer};
    use cbps_sim::{SimTime, TraceId};

    let space = EventSpace::paper_default();
    // Two Zipf-skewed selective attributes plus per-dimension wildcards:
    // the regime where covering bites (broad partially-specified
    // subscriptions subsume narrow ones clustered on the same hotspots).
    let cfg = WorkloadConfig::paper_default(100, 4)
        .with_counts(n, n)
        .with_selective_attrs(2)
        .with_wildcard_probability(0.5);
    let mut gen = WorkloadGen::new(space.clone(), cfg, seed);
    let stored: Vec<Subscription> = (0..n).map(|_| gen.gen_subscription()).collect();
    // A fixed probe set mixing hit-heavy events (targeted at a sample of
    // the stored population) with uniform misses.
    let mut events: Vec<Event> = stored
        .iter()
        .step_by((n / 128).max(1))
        .take(128)
        .map(|s| gen.gen_matching_event(s))
        .collect();
    while events.len() < 256 {
        events.push(gen.gen_random_event());
    }

    let started = Instant::now();
    let mut counting = MatchIndex::new(&space);
    for (i, sub) in stored.iter().enumerate() {
        counting.insert(SubId(i as u64), sub.clone());
    }
    let counting_build_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let mut sorted = SortedIndex::new(&space);
    for (i, sub) in stored.iter().enumerate() {
        sorted.insert(SubId(i as u64), sub.clone());
    }
    let sorted_build_secs = started.elapsed().as_secs_f64();

    // Differential pass: the two engines must agree on every probe event.
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, event) in events.iter().enumerate() {
        counting.matches_into(event, &mut a);
        sorted.matches_into(event, &mut b);
        if a != b {
            return Err(format!(
                "engines disagree at {n} subs on probe event {i}: \
                 counting {} hits != sorted {} hits",
                a.len(),
                b.len()
            ));
        }
    }

    // Timed passes, identical loops over the same events.
    let rounds = (2_000_000 / n).max(1);
    let mut out = Vec::new();
    let mut hits = 0u64;
    let started = Instant::now();
    for _ in 0..rounds {
        for event in &events {
            counting.matches_into(event, &mut out);
            hits += out.len() as u64;
        }
    }
    let counting_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    for _ in 0..rounds {
        for event in &events {
            sorted.matches_into(event, &mut out);
        }
    }
    let sorted_secs = started.elapsed().as_secs_f64();
    let matched = rounds as u64 * events.len() as u64;

    // Covering: the same population through the rendezvous store, which
    // collapses covered subscriptions onto shared physical entries.
    let keys = KeySpace::new(8);
    let subscriber = Peer {
        idx: 0,
        key: keys.key(1),
    };
    let sk = KeyRangeSet::of_key(keys, keys.key(2));
    let mut store = SubscriptionStore::with_options(&space, MatchEngineKind::Sorted, true);
    let items: Vec<(SubId, StoredSub)> = stored
        .iter()
        .enumerate()
        .map(|(i, sub)| {
            (
                SubId(i as u64),
                StoredSub {
                    sub: sub.clone(),
                    subscriber,
                    expires: SimTime::MAX,
                    sk: sk.clone(),
                    trace: TraceId::NONE,
                    subgroups: 0,
                },
            )
        })
        .collect();
    let started = Instant::now();
    store.insert_bulk(items, SimTime::ZERO);
    let covering_build_secs = started.elapsed().as_secs_f64();
    // Spot-check: the covering store must deliver the raw engine's sets.
    let mut store_out = Vec::new();
    for (i, event) in events.iter().take(8).enumerate() {
        counting.matches_into(event, &mut a);
        store.match_event_into(event, SimTime::ZERO, &mut store_out);
        let got: Vec<SubId> = store_out.iter().map(|(id, _)| *id).collect();
        if got != a {
            return Err(format!(
                "covering store disagrees with raw engine at {n} subs on probe event {i}: \
                 {} hits != {} hits",
                got.len(),
                a.len()
            ));
        }
    }

    Ok(MatchPoint {
        subs: n,
        counting_build_secs,
        sorted_build_secs,
        counting_secs,
        sorted_secs,
        matched,
        hits,
        physical: store.physical_len(),
        covering_build_secs,
    })
}

fn probe_match(subs: usize, seed: u64, json_out: Option<&str>) -> Result<(), String> {
    println!(
        "match probe: counting vs sorted engine, covering store, \
         Zipf paper workload, seed {seed}"
    );
    let mut sweep: Vec<usize> = [subs / 10, subs / 3, subs]
        .into_iter()
        .filter(|&n| n >= 1)
        .collect();
    sweep.dedup();
    let mut points = Vec::with_capacity(sweep.len());
    for &n in &sweep {
        points.push(match_point(n, seed)?);
    }

    for p in &points {
        let counting_evs = p.matched as f64 / p.counting_secs.max(1e-9);
        let sorted_evs = p.matched as f64 / p.sorted_secs.max(1e-9);
        println!(
            "  subs {:>8}  counting {:>9.0} events/sec  sorted {:>9.0} events/sec  \
             sorted speedup {:.2}x  ({} events, {} hits)",
            p.subs,
            counting_evs,
            sorted_evs,
            sorted_evs / counting_evs.max(1e-9),
            p.matched,
            p.hits,
        );
        println!(
            "  {:>13} build: counting {:.2}s, sorted {:.2}s; covering store: \
             {} physical entries for {} subscriptions ({:.1}% saved, built in {:.2}s)",
            "",
            p.counting_build_secs,
            p.sorted_build_secs,
            p.physical,
            p.subs,
            100.0 * (1.0 - p.physical as f64 / p.subs as f64),
            p.covering_build_secs,
        );
    }
    if let Some(path) = json_out {
        let mut doc = String::from("{\n  \"probe\": \"match\",\n");
        doc.push_str(&format!(
            "  \"host_cores\": {},\n",
            std::thread::available_parallelism().map_or(1, |c| c.get())
        ));
        doc.push_str(&format!("  \"seed\": {seed},\n"));
        doc.push_str("  \"results\": [\n");
        for (i, p) in points.iter().enumerate() {
            let counting_evs = p.matched as f64 / p.counting_secs.max(1e-9);
            let sorted_evs = p.matched as f64 / p.sorted_secs.max(1e-9);
            doc.push_str(&format!(
                "    {{\"subs\": {}, \"counting_events_per_sec\": {:.0}, \
                 \"sorted_events_per_sec\": {:.0}, \"sorted_speedup\": {:.2}, \
                 \"matched_events\": {}, \"hits\": {}, \
                 \"counting_build_secs\": {:.3}, \"sorted_build_secs\": {:.3}, \
                 \"covering_physical_entries\": {}, \"covering_saved_pct\": {:.1}, \
                 \"covering_build_secs\": {:.3}}}{}\n",
                p.subs,
                counting_evs,
                sorted_evs,
                sorted_evs / counting_evs.max(1e-9),
                p.matched,
                p.hits,
                p.counting_build_secs,
                p.sorted_build_secs,
                p.physical,
                100.0 * (1.0 - p.physical as f64 / p.subs as f64),
                p.covering_build_secs,
                if i + 1 == points.len() { "" } else { "," },
            ));
        }
        doc.push_str("  ]\n}\n");
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  sweep written to {path}");
    }
    let last = points.last().expect("sweep is never empty");
    println!(
        "  at {} subs the sorted engine is {:.2}x the counting engine; \
         covering keeps {} physical entries ({:.1}% saved)",
        last.subs,
        (last.matched as f64 / last.sorted_secs.max(1e-9))
            / (last.matched as f64 / last.counting_secs.max(1e-9)).max(1e-9),
        last.physical,
        100.0 * (1.0 - last.physical as f64 / last.subs as f64),
    );
    Ok(())
}

/// One substrate's end-to-end profile from the shared overlay workload.
struct OverlayProfile {
    events: u64,
    events_per_sec: f64,
    one_hop_msgs: u64,
    stats: cbps_bench::RunStats,
}

fn overlay_profile<B: cbps::OverlayBackend>(nodes: usize, seed: u64) -> OverlayProfile {
    use cbps_bench::runner::{paper_workload, run_trace, workload_gen, Deployment};
    use cbps_sim::TrafficClass;

    let deployment = Deployment::new(nodes, seed);
    let cfg = paper_workload(nodes, 0)
        .with_counts(nodes * 2, nodes * 4)
        .with_matching_probability(0.5);
    let mut gen = workload_gen(cfg, seed);
    let trace = gen.gen_trace();
    let mut net = deployment.build_on::<B>();
    let started = Instant::now();
    let stats = run_trace(&mut net, &trace, 300);
    let secs = started.elapsed().as_secs_f64();
    let events = net.sim_mut().events_processed();
    let m = net.metrics();
    let one_hop_msgs = [
        TrafficClass::SUBSCRIPTION,
        TrafficClass::PUBLICATION,
        TrafficClass::NOTIFICATION,
        TrafficClass::COLLECT,
        TrafficClass::MAINTENANCE,
        TrafficClass::STATE_TRANSFER,
        TrafficClass::OTHER,
    ]
    .iter()
    .map(|&c| m.messages(c))
    .sum();
    OverlayProfile {
        events,
        events_per_sec: events as f64 / secs.max(1e-9),
        one_hop_msgs,
        stats,
    }
}

fn probe_overlay(nodes: usize, seed: u64) -> Result<(), String> {
    println!("overlay probe: {nodes} nodes, seed {seed}, same workload on both substrates");
    let chord = overlay_profile::<cbps::ChordBackend>(nodes, seed);
    let pastry = overlay_profile::<cbps_pastry::PastryBackend>(nodes, seed);
    for (name, p) in [("chord", &chord), ("pastry", &pastry)] {
        println!(
            "  {name:<6} {:>10.0} events/sec  ({} events)  msgs {:>7}  \
             hops/sub {:.2}  hops/pub {:.2}  hops/notify {:.2}  delivered {}",
            p.events_per_sec,
            p.events,
            p.one_hop_msgs,
            p.stats.hops_per_sub,
            p.stats.hops_per_pub,
            p.stats.hops_per_notification,
            p.stats.delivered,
        );
    }
    if chord.stats.delivered != pastry.stats.delivered {
        return Err(format!(
            "substrates disagree on delivered notifications: chord {} != pastry {}",
            chord.stats.delivered, pastry.stats.delivered
        ));
    }
    println!(
        "  delivered notifications: {} (identical)",
        chord.stats.delivered
    );
    Ok(())
}

/// One shard count's measurement from the fixed shard-sweep workload.
struct ShardPoint {
    shards: usize,
    events: u64,
    secs: f64,
    fingerprint: u64,
    delivered: u64,
}

/// Replays the fixed workload with the engine split into `shards` shards
/// and returns throughput plus an order-insensitive FNV-1a fingerprint of
/// the delivered `(node, sub, event)` set — the same digest `cbps
/// run-trace` prints, so a mismatch here is a correctness bug, not noise.
fn shard_point(nodes: usize, seed: u64, shards: usize) -> ShardPoint {
    use cbps_bench::runner::{self, paper_workload, run_trace, workload_gen, Deployment};

    runner::set_shards(shards);
    let deployment = Deployment::new(nodes, seed);
    let cfg = paper_workload(nodes, 0)
        .with_counts(nodes * 2, nodes * 4)
        .with_matching_probability(0.5);
    let mut gen = workload_gen(cfg, seed);
    let trace = gen.gen_trace();
    let mut net = deployment.build_on::<cbps::ChordBackend>();
    let started = Instant::now();
    let stats = run_trace(&mut net, &trace, 300);
    let secs = started.elapsed().as_secs_f64();
    let events = net.sim_mut().events_processed();

    let mut delivered: Vec<(usize, u64, u64)> = Vec::new();
    for idx in 0..nodes {
        for note in net.delivered(idx) {
            delivered.push((idx, note.sub_id.0, note.event_id.0));
        }
    }
    delivered.sort_unstable();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for (node, sub, event) in &delivered {
        for word in [*node as u64, *sub, *event] {
            for byte in word.to_le_bytes() {
                fingerprint ^= u64::from(byte);
                fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    ShardPoint {
        shards,
        events,
        secs,
        fingerprint,
        delivered: stats.delivered,
    }
}

fn probe_shard(nodes: usize, seed: u64, json_out: Option<&str>) -> Result<(), String> {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "shard probe: {nodes} nodes, seed {seed}, fixed chord workload, \
         host has {host_cores} core(s)"
    );
    let sweep = [1usize, 2, 4, 8];
    let mut points = Vec::with_capacity(sweep.len());
    for &shards in &sweep {
        points.push(shard_point(nodes, seed, shards));
    }
    cbps_bench::runner::set_shards(1);

    let base = points[0].events as f64 / points[0].secs.max(1e-9);
    for p in &points {
        let evs = p.events as f64 / p.secs.max(1e-9);
        println!(
            "  shards {:<2} {:>10.0} events/sec  ({} events, {:.3}s)  \
             speedup {:.2}x  fingerprint {:#018x}",
            p.shards,
            evs,
            p.events,
            p.secs,
            evs / base,
            p.fingerprint,
        );
    }
    if let Some(path) = json_out {
        let mut doc = String::from("{\n  \"probe\": \"shard\",\n");
        doc.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        doc.push_str(&format!("  \"nodes\": {nodes},\n  \"seed\": {seed},\n"));
        doc.push_str("  \"results\": [\n");
        for (i, p) in points.iter().enumerate() {
            let evs = p.events as f64 / p.secs.max(1e-9);
            doc.push_str(&format!(
                "    {{\"shards\": {}, \"events\": {}, \"wall_secs\": {:.3}, \
                 \"events_per_sec\": {:.0}, \"speedup_vs_1\": {:.2}, \
                 \"fingerprint\": \"{:#018x}\"}}{}\n",
                p.shards,
                p.events,
                p.secs,
                evs,
                evs / base,
                p.fingerprint,
                if i + 1 == points.len() { "" } else { "," },
            ));
        }
        doc.push_str("  ]\n}\n");
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  sweep written to {path}");
    }
    for p in &points[1..] {
        if p.fingerprint != points[0].fingerprint || p.delivered != points[0].delivered {
            return Err(format!(
                "shards {} changed the delivered set: fingerprint {:#x} != {:#x} \
                 (delivered {} vs {})",
                p.shards, p.fingerprint, points[0].fingerprint, p.delivered, points[0].delivered
            ));
        }
    }
    println!(
        "  delivered-set fingerprint: {:#018x} (identical across shard counts)",
        points[0].fingerprint
    );
    Ok(())
}

/// One (policy, shard-count) measurement of the Zipf flash-crowd workload.
struct RendezvousPoint {
    mode: cbps::RendezvousMode,
    shards: usize,
    fingerprint: u64,
    delivered: u64,
    max_mean: f64,
    p99_mean: f64,
    splits: u64,
    merges: u64,
    secs: f64,
}

/// Replays the fixed flash-crowd workload (mapping 3, one Zipf-selective
/// attribute, a mid-run burst of skewed publications) under the given
/// rendezvous policy and shard count.
fn rendezvous_point(
    nodes: usize,
    seed: u64,
    mode: cbps::RendezvousMode,
    shards: usize,
) -> RendezvousPoint {
    use cbps_bench::report::LoadReport;
    use cbps_bench::runner::{
        self, delivered_fingerprint, paper_workload, run_trace, workload_gen, Deployment,
    };

    runner::set_shards(shards);
    runner::set_rendezvous(mode);
    let mut deployment = Deployment::new(nodes, seed);
    deployment.mapping = cbps::MappingKind::SelectiveAttribute;
    let cfg = paper_workload(nodes, 1)
        .with_counts(nodes * 2, nodes * 4)
        .with_flash_crowd(nodes * 8, 1.1);
    let mut gen = workload_gen(cfg, seed);
    let trace = gen.gen_trace();
    let mut net = deployment.build_on::<cbps::ChordBackend>();
    let started = Instant::now();
    let stats = run_trace(&mut net, &trace, 300);
    let secs = started.elapsed().as_secs_f64();
    let (splits, merges) = net.rendezvous_counters();
    let load = LoadReport::from_work(&net.rendezvous_work_counts(), splits, merges);
    let (fingerprint, _) = delivered_fingerprint(&net);
    RendezvousPoint {
        mode,
        shards,
        fingerprint,
        delivered: stats.delivered,
        max_mean: load.map(|l| l.max_mean).unwrap_or(0.0),
        p99_mean: load.map(|l| l.p99_mean).unwrap_or(0.0),
        splits,
        merges,
        secs,
    }
}

/// A/B-compares the static and the adaptive rendezvous policy on the
/// Zipf flash-crowd workload, at 1 and 4 event-loop shards. Exits
/// non-zero unless (a) every configuration delivers the byte-identical
/// notification set, (b) the adaptive policy's max/mean node-load ratio
/// is strictly below the static policy's, (c) the adaptive policy
/// actually split at least once, and (d) its split/merge control
/// decisions are identical across shard counts.
fn probe_rendezvous(nodes: usize, seed: u64, json_out: Option<&str>) -> Result<(), String> {
    use cbps::RendezvousMode;

    println!("rendezvous probe: {nodes} nodes, seed {seed}, Zipf flash-crowd workload");
    let mut points = Vec::new();
    for &mode in &[RendezvousMode::Static, RendezvousMode::Adaptive] {
        for &shards in &[1usize, 4] {
            points.push(rendezvous_point(nodes, seed, mode, shards));
        }
    }
    cbps_bench::runner::set_shards(1);
    cbps_bench::runner::set_rendezvous(RendezvousMode::Static);

    for p in &points {
        println!(
            "  {:<8} shards {}  max/mean {:>6.2}  p99/mean {:>5.2}  \
             splits {:>2}  merges {:>2}  delivered {:>6}  fingerprint {:#018x}  ({:.2}s)",
            p.mode.name(),
            p.shards,
            p.max_mean,
            p.p99_mean,
            p.splits,
            p.merges,
            p.delivered,
            p.fingerprint,
            p.secs,
        );
    }

    if let Some(path) = json_out {
        let mut doc = String::from("{\n  \"probe\": \"rendezvous\",\n");
        doc.push_str(&format!("  \"nodes\": {nodes},\n  \"seed\": {seed},\n"));
        doc.push_str("  \"results\": [\n");
        for (i, p) in points.iter().enumerate() {
            doc.push_str(&format!(
                "    {{\"rendezvous\": \"{}\", \"shards\": {}, \"max_mean\": {:.3}, \
                 \"p99_mean\": {:.3}, \"splits\": {}, \"merges\": {}, \"delivered\": {}, \
                 \"fingerprint\": \"{:#018x}\", \"wall_secs\": {:.3}}}{}\n",
                p.mode.name(),
                p.shards,
                p.max_mean,
                p.p99_mean,
                p.splits,
                p.merges,
                p.delivered,
                p.fingerprint,
                p.secs,
                if i + 1 == points.len() { "" } else { "," },
            ));
        }
        doc.push_str("  ]\n}\n");
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  report written to {path}");
    }

    // (a) Delivery semantics must be policy- and shard-independent.
    for p in &points[1..] {
        if p.fingerprint != points[0].fingerprint || p.delivered != points[0].delivered {
            return Err(format!(
                "{} at {} shard(s) changed the delivered set: fingerprint {:#x} != {:#x} \
                 (delivered {} vs {})",
                p.mode.name(),
                p.shards,
                p.fingerprint,
                points[0].fingerprint,
                p.delivered,
                points[0].delivered
            ));
        }
    }
    let stat = &points[0];
    let adap = &points[2];
    // (b) The whole point: the hot node's load ratio must drop.
    if adap.max_mean >= stat.max_mean {
        return Err(format!(
            "adaptive rendezvous did not flatten the hotspot: max/mean {:.2} (adaptive) \
             vs {:.2} (static)",
            adap.max_mean, stat.max_mean
        ));
    }
    // (c) The drop must come from actual control activity.
    if adap.splits == 0 {
        return Err("adaptive rendezvous took no split decision on the flash crowd".into());
    }
    // (d) Control decisions are deterministic across the engine's shard counts.
    let adap4 = &points[3];
    if (adap.splits, adap.merges) != (adap4.splits, adap4.merges) {
        return Err(format!(
            "split/merge control diverged across shard counts: {}/{} at 1 shard vs {}/{} at 4",
            adap.splits, adap.merges, adap4.splits, adap4.merges
        ));
    }
    println!(
        "  adaptive flattens max/mean {:.2} -> {:.2} with identical delivered sets \
         ({} splits, {} merges, shard-independent)",
        stat.max_mean, adap.max_mean, adap.splits, adap.merges
    );
    Ok(())
}

/// Replays the fixed figures workload under the counting allocator and
/// reports allocations per simulated event — once over the whole replay
/// (cold buildup included) and once over a steady-state publication
/// window injected after a warmup pass. With `--pool reuse` (the
/// default) the steady-state window must perform **zero** heap
/// allocations: the slab pool, inline range sets and warm capacities
/// leave nothing to allocate, and any regression exits non-zero.
/// `--pool fresh` is the always-allocate control for before/after
/// comparisons.
fn probe_alloc(
    nodes: usize,
    seed: u64,
    pool: PoolMode,
    json_out: Option<&str>,
) -> Result<(), String> {
    use cbps_bench::report::{AllocReport, ExperimentReport, RunReport};
    use cbps_bench::runner::{self, paper_workload, run_trace, workload_gen, Deployment};
    use cbps_sim::SimDuration;

    runner::set_pool(pool);
    println!(
        "alloc probe: {nodes} nodes, seed {seed}, pool {}, chord workload",
        pool.name()
    );

    let deployment = Deployment::new(nodes, seed);
    let cfg = paper_workload(nodes, 0)
        .with_counts(nodes * 2, nodes * 4)
        .with_matching_probability(0.5);
    let mut gen = workload_gen(cfg, seed);
    let trace = gen.gen_trace();
    let mut net = deployment.build_on::<cbps::ChordBackend>();

    // Whole-replay audit: the figures workload end to end, including the
    // cold buildup (subscription storage, pool and queue growth to peak).
    let started = Instant::now();
    let (a0, b0) = alloc_totals();
    run_trace(&mut net, &trace, 300);
    let (a1, b1) = alloc_totals();
    let wall_secs = started.elapsed().as_secs_f64();
    let replay_events = net.sim_mut().events_processed();
    let (replay_allocs, replay_bytes) = (a1 - a0, b1 - b0);

    // Steady-state audit. Publication events are pre-generated, and each
    // one is injected *outside* the measured region, then drained with a
    // bounded `run_until` that is measured — so the audit covers exactly
    // the simulator's own work per event: queue pops, routing hops,
    // matching, delivery, timer cascades. Traffic is spread one
    // publication per two simulated seconds (steady state, not a
    // thundering herd), and the warmup pass is twice the measured length
    // so every recycled capacity — pool slab, wheel slots across a full
    // L1 ring revolution, per-node delivery logs, metric tables — has hit
    // its high-water mark before counting starts. The delivery logs are
    // drained in place (capacity retained) between the passes.
    const BATCH: usize = 256;
    let events: Vec<Event> = (0..3 * BATCH).map(|_| gen.gen_random_event()).collect();
    for (i, ev) in events[..2 * BATCH].iter().enumerate() {
        net.publish(i % nodes, ev.clone())
            .map_err(|e| format!("warmup publish failed: {e}"))?;
        let until = net.now() + SimDuration::from_secs(2);
        net.run_until(until);
    }
    for idx in 0..nodes {
        net.clear_delivered(idx);
        // Pre-fault nodes that did not see a publication during warmup:
        // their first one would otherwise charge cold-start growth (event
        // dedup window, match scratch) to the measured window.
        net.warm_node(idx);
    }
    let (mut steady_allocs, mut steady_bytes, mut steady_events) = (0u64, 0u64, 0u64);
    for (i, ev) in events[2 * BATCH..].iter().enumerate() {
        net.publish((2 * BATCH + i) % nodes, ev.clone())
            .map_err(|e| format!("steady publish failed: {e}"))?;
        let until = net.now() + SimDuration::from_secs(2);
        let ev0 = net.sim_mut().events_processed();
        let (sa0, sb0) = alloc_totals();
        net.run_until(until);
        let (sa1, sb1) = alloc_totals();
        steady_events += net.sim_mut().events_processed() - ev0;
        steady_allocs += sa1 - sa0;
        steady_bytes += sb1 - sb0;
    }

    let report = AllocReport {
        pool: pool.name().to_owned(),
        replay_allocs,
        replay_bytes,
        replay_events,
        steady_allocs,
        steady_bytes,
        steady_events,
    };
    println!(
        "  replay  {:>9} events  {:>9} allocs  {:>11} bytes  ({:.3} allocs/event, {:.1} bytes/event)",
        report.replay_events,
        report.replay_allocs,
        report.replay_bytes,
        report.replay_allocs_per_event(),
        report.replay_bytes as f64 / report.replay_events.max(1) as f64,
    );
    println!(
        "  steady  {:>9} events  {:>9} allocs  {:>11} bytes  ({:.3} allocs/event)",
        report.steady_events,
        report.steady_allocs,
        report.steady_bytes,
        report.steady_allocs_per_event(),
    );
    if steady_events == 0 {
        return Err("steady-state window processed no events".into());
    }

    if let Some(path) = json_out {
        let peak_queue_depth = net.sim_mut().queue_peak() as u64;
        let doc = RunReport {
            scale: "probe".to_owned(),
            jobs: 1,
            observability: "off".to_owned(),
            scheduler: "wheel".to_owned(),
            shards: 1,
            match_engine: "counting".to_owned(),
            rendezvous: "static".to_owned(),
            overlay: "chord".to_owned(),
            experiments: vec![ExperimentReport {
                name: "alloc-audit".to_owned(),
                wall_secs,
                events: replay_events,
                peak_queue_depth,
                obs: None,
                alloc: Some(report.clone()),
            }],
        }
        .to_json();
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  report written to {path}");
    }

    let steady_per_event = report.steady_allocs_per_event();
    match pool {
        PoolMode::Reuse => {
            if steady_allocs != 0 {
                return Err(format!(
                    "steady-state window performed {steady_allocs} heap allocations \
                     ({steady_bytes} bytes) over {steady_events} events; expected zero \
                     with the reuse pool"
                ));
            }
            println!("  steady state is allocation-free (0 allocs over {steady_events} events)");
        }
        PoolMode::Fresh => {
            println!("  fresh pool control: {steady_per_event:.3} allocs/event at steady state");
        }
    }
    Ok(())
}

/// Sweeps the deployment build pipeline across decades of ring size
/// (10^3, 10^4, 10^5 and — only when `--max-nodes` allows — a 10^6
/// stretch point): wall seconds and heap bytes to construct one fully
/// converged pub/sub network, total and per node, plus a
/// serial-vs-parallel routing-table parity check at every point. Two
/// gates make this the ci hook for build-path regressions: the per-node
/// cost (seconds and bytes) must stay flat within 2x across the
/// 10^3..10^5 core sweep — near-linear total cost — and, with
/// `--budget-secs`, the whole sweep must finish inside the budget. Any
/// parity mismatch or gate violation exits non-zero.
fn probe_scale(
    max_nodes: usize,
    seed: u64,
    budget_secs: Option<u64>,
    json_out: Option<&str>,
) -> Result<(), String> {
    use cbps_bench::runner::{self, Deployment};
    use cbps_overlay::{OverlayConfig, Peer, RingView, RoutingState};

    /// FNV-1a over every field of every routing table, in node order.
    fn table_fingerprint(states: &[RoutingState]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for st in states {
            mix(st.predecessor().map_or(u64::MAX, |p| p.idx as u64));
            for s in st.successors() {
                mix(s.idx as u64);
                mix(s.key.value());
            }
            for f in st.fingers() {
                mix(f.map_or(u64::MAX, |p| p.idx as u64));
            }
        }
        hash
    }

    runner::set_jobs(1);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "scale probe: build-pipeline sweep up to {max_nodes} nodes, seed {seed}, \
         host has {host_cores} core(s)"
    );

    struct Point {
        nodes: usize,
        key_bits: u32,
        secs: f64,
        allocs: u64,
        bytes: u64,
        fingerprint: u64,
    }
    let sweep_started = Instant::now();
    let mut points: Vec<Point> = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        if n > max_nodes {
            println!("  n {n:>7}  skipped (over --max-nodes)");
            continue;
        }
        let keys = cbps::deployment_key_space(n);
        // Build cost: one full pub/sub deployment, serial, under the
        // counting allocator.
        let started = Instant::now();
        let (a0, b0) = alloc_totals();
        let net = Deployment::new(n, seed).build();
        let (a1, b1) = alloc_totals();
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(net.len(), n);
        drop(net); // free this point before building the next decade

        // Parity: the routing tables from a 4-worker build must be
        // identical to the serial ones, field for field.
        let cfg = OverlayConfig::paper_default().with_space(keys);
        let node_keys = cbps_overlay::assign_node_keys(&cfg, n);
        let peers: Vec<Peer> = node_keys
            .into_iter()
            .enumerate()
            .map(|(idx, key)| Peer { idx, key })
            .collect();
        let ring = RingView::new(keys, peers);
        cbps_overlay::set_build_jobs(1);
        let serial = table_fingerprint(&cbps_overlay::build_routing_states(&cfg, &ring));
        cbps_overlay::set_build_jobs(4);
        let parallel = table_fingerprint(&cbps_overlay::build_routing_states(&cfg, &ring));
        cbps_overlay::set_build_jobs(1);
        if serial != parallel {
            return Err(format!(
                "n {n}: parallel build changed the routing tables: \
                 fingerprint {parallel:#018x} != serial {serial:#018x}"
            ));
        }

        println!(
            "  n {n:>7}  {:>2}-bit keys  build {secs:>7.3}s  {:>9} allocs  {:>12} bytes  \
             ({:.1}us/node, {:.0} B/node)  tables {serial:#018x} (serial == 4-worker)",
            keys.bits(),
            a1 - a0,
            b1 - b0,
            secs * 1e6 / n as f64,
            (b1 - b0) as f64 / n as f64,
        );
        points.push(Point {
            nodes: n,
            key_bits: keys.bits(),
            secs,
            allocs: a1 - a0,
            bytes: b1 - b0,
            fingerprint: serial,
        });
    }
    let sweep_secs = sweep_started.elapsed().as_secs_f64();
    if points.is_empty() {
        return Err("--max-nodes excluded every sweep point".into());
    }

    // The flatness gate covers the 10^3..10^5 core sweep; the optional
    // 10^6 stretch point is recorded but not gated — at that size the
    // wall clock is dominated by the kernel faulting in ~4.5 GB of
    // fresh pages, which says nothing about the pipeline's own cost.
    let per_secs = |p: &Point| p.secs / p.nodes as f64;
    let per_bytes = |p: &Point| p.bytes as f64 / p.nodes as f64;
    let gated: Vec<&Point> = points.iter().filter(|p| p.nodes <= 100_000).collect();
    let flat = |vals: Vec<f64>| -> f64 {
        let max = vals.iter().copied().fold(f64::MIN, f64::max);
        let min = vals.iter().copied().fold(f64::MAX, f64::min);
        max / min.max(1e-12)
    };
    let secs_ratio = flat(gated.iter().map(|p| per_secs(p)).collect());
    let bytes_ratio = flat(gated.iter().map(|p| per_bytes(p)).collect());
    println!(
        "  per-node flatness across the core sweep (n <= 10^5): {secs_ratio:.2}x seconds, \
         {bytes_ratio:.2}x bytes (gate: <= 2x each)"
    );

    if let Some(path) = json_out {
        let mut doc = String::from("{\n  \"probe\": \"scale\",\n");
        doc.push_str(&format!("  \"host_cores\": {host_cores},\n"));
        doc.push_str(&format!("  \"seed\": {seed},\n"));
        doc.push_str(&format!("  \"sweep_wall_secs\": {sweep_secs:.3},\n"));
        doc.push_str(&format!(
            "  \"per_node_secs_ratio\": {secs_ratio:.3},\n  \"per_node_bytes_ratio\": {bytes_ratio:.3},\n"
        ));
        doc.push_str("  \"results\": [\n");
        for (i, p) in points.iter().enumerate() {
            doc.push_str(&format!(
                "    {{\"nodes\": {}, \"key_bits\": {}, \"build_secs\": {:.3}, \
                 \"allocs\": {}, \"bytes\": {}, \"micros_per_node\": {:.2}, \
                 \"bytes_per_node\": {:.0}, \"table_fingerprint\": \"{:#018x}\"}}{}\n",
                p.nodes,
                p.key_bits,
                p.secs,
                p.allocs,
                p.bytes,
                per_secs(p) * 1e6,
                per_bytes(p),
                p.fingerprint,
                if i + 1 == points.len() { "" } else { "," },
            ));
        }
        doc.push_str("  ]\n}\n");
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  sweep written to {path}");
    }

    if gated.is_empty() {
        return Err("--max-nodes excluded every gated sweep point".into());
    }
    if secs_ratio > 2.0 || bytes_ratio > 2.0 {
        return Err(format!(
            "per-node build cost is not flat across the core sweep: {secs_ratio:.2}x seconds, \
             {bytes_ratio:.2}x bytes (budget: 2x) — the pipeline regressed from near-linear"
        ));
    }
    if let Some(budget) = budget_secs {
        if sweep_secs > budget as f64 {
            return Err(format!(
                "sweep took {sweep_secs:.1}s, over the {budget}s budget"
            ));
        }
        println!("  sweep finished in {sweep_secs:.1}s (budget {budget}s)");
    }
    Ok(())
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: probe sched [--ops N] [--seed S] \
                 | probe match [--subs N] [--seed S] [--json FILE] \
                 | probe overlay [--nodes N] [--seed S] \
                 | probe shard [--nodes N] [--seed S] [--json FILE] \
                 | probe alloc [--nodes N] [--seed S] [--pool reuse|fresh] [--json FILE] \
                 | probe scale [--max-nodes N] [--seed S] [--budget-secs T] [--json FILE] \
                 | probe rendezvous [--nodes N] [--seed S] [--json FILE]";
    let outcome = match args.first().map(String::as_str) {
        Some("sched") => probe_sched(
            arg_value(&args, "--ops").unwrap_or(2_000_000) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
        ),
        Some("match") => probe_match(
            arg_value(&args, "--subs").unwrap_or(1_000_000) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
        ),
        Some("overlay") => probe_overlay(
            arg_value(&args, "--nodes").unwrap_or(120) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
        ),
        Some("alloc") => {
            let pool = match args
                .iter()
                .position(|a| a == "--pool")
                .and_then(|i| args.get(i + 1))
            {
                None => PoolMode::Reuse,
                Some(v) => match PoolMode::parse(v) {
                    Some(mode) => mode,
                    None => {
                        eprintln!("--pool expects reuse|fresh, got {v:?}");
                        std::process::exit(2);
                    }
                },
            };
            probe_alloc(
                arg_value(&args, "--nodes").unwrap_or(120) as usize,
                arg_value(&args, "--seed").unwrap_or(7),
                pool,
                args.iter()
                    .position(|a| a == "--json")
                    .and_then(|i| args.get(i + 1))
                    .map(String::as_str),
            )
        }
        Some("scale") => probe_scale(
            arg_value(&args, "--max-nodes").unwrap_or(100_000) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
            arg_value(&args, "--budget-secs"),
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
        ),
        Some("shard") => probe_shard(
            arg_value(&args, "--nodes").unwrap_or(256) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
        ),
        Some("rendezvous") => probe_rendezvous(
            arg_value(&args, "--nodes").unwrap_or(150) as usize,
            arg_value(&args, "--seed").unwrap_or(7),
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
        ),
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

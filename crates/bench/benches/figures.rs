//! `cargo bench --bench figures`: regenerates every paper table and figure
//! at quick scale and prints the result tables. This is a measurement
//! harness (simulation metrics, not wall-clock), hence `harness = false`.

use std::time::Instant;

use cbps_bench::experiments::run_all;
use cbps_bench::Scale;

fn main() {
    // Under `cargo test --benches` just smoke-run nothing (the figures are
    // exercised by the harness itself when invoked via `cargo bench`).
    if std::env::args().any(|a| a == "--test") {
        println!("figures harness: skipped under --test (run `cargo bench` instead)");
        return;
    }
    let started = Instant::now();
    println!("Reproducing all tables/figures at quick scale (see EXPERIMENTS.md for paper-scale numbers)\n");
    for table in run_all(Scale::Quick) {
        println!("{}", table.render());
    }
    println!("total: {:.1}s", started.elapsed().as_secs_f64());
}

//! Criterion micro-benchmarks of the system's hot components: the three
//! ak-mappings, the matching index vs brute force, the m-cast split,
//! greedy routing, and SHA-1 hashing.

use cbps::{
    AkMapping, Event, EventSpace, MappingKind, MatchIndex, SubId, Subscription,
};
use cbps_overlay::{hash::sha1, KeyRangeSet, KeySpace, OverlayConfig, Peer, RingView, RoutingState};
use cbps_workload::{WorkloadConfig, WorkloadGen};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn workload(n_subs: usize) -> (EventSpace, Vec<Subscription>, Vec<Event>) {
    let space = EventSpace::paper_default();
    let cfg = WorkloadConfig::paper_default(100, 4).with_counts(n_subs, n_subs);
    let mut gen = WorkloadGen::new(space.clone(), cfg, 7);
    let subs: Vec<Subscription> = (0..n_subs).map(|_| gen.gen_subscription()).collect();
    let events: Vec<Event> = subs.iter().map(|s| gen.gen_matching_event(s)).collect();
    (space, subs, events)
}

fn bench_mappings(c: &mut Criterion) {
    let (space, subs, events) = workload(256);
    let keys = KeySpace::new(13);
    let mut group = c.benchmark_group("mapping");
    for kind in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        let mapping = AkMapping::new(kind, &space, keys);
        group.bench_function(format!("sk/{kind}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let s = &subs[i % subs.len()];
                i += 1;
                std::hint::black_box(mapping.sk(s))
            })
        });
        group.bench_function(format!("ek/{kind}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let e = &events[i % events.len()];
                i += 1;
                std::hint::black_box(mapping.ek(e))
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let (space, subs, events) = workload(2000);
    let mut index = MatchIndex::new(&space);
    for (i, s) in subs.iter().enumerate() {
        index.insert(SubId(i as u64), s.clone());
    }
    let mut group = c.benchmark_group("matching-2000-subs");
    group.bench_function("counting-index", |b| {
        let mut i = 0;
        b.iter(|| {
            let e = &events[i % events.len()];
            i += 1;
            std::hint::black_box(index.matches(e))
        })
    });
    group.bench_function("brute-force", |b| {
        let mut i = 0;
        b.iter(|| {
            let e = &events[i % events.len()];
            i += 1;
            std::hint::black_box(index.matches_brute_force(e))
        })
    });
    group.finish();
}

fn converged_state(n: usize) -> RoutingState {
    let cfg = OverlayConfig::paper_default();
    let peers: Vec<Peer> = (0..n)
        .map(|i| Peer {
            idx: i,
            key: cbps_overlay::hash::key_of_bytes(cfg.space, format!("n{i}").as_bytes()),
        })
        .collect();
    // Deduplicate keys for the view.
    let mut seen = std::collections::HashSet::new();
    let peers: Vec<Peer> = peers.into_iter().filter(|p| seen.insert(p.key)).collect();
    let ring = RingView::new(cfg.space, peers.clone());
    let me = peers[0];
    let mut st = RoutingState::new(cfg, me);
    st.set_predecessor(Some(ring.predecessor(me.key)));
    st.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
    for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
        st.set_finger(i, f);
    }
    st
}

fn bench_overlay(c: &mut Criterion) {
    let st = converged_state(500);
    let space = OverlayConfig::paper_default().space;
    let full = KeyRangeSet::full(space);
    c.bench_function("mcast-split-full-ring", |b| {
        b.iter(|| std::hint::black_box(st.mcast_split(&full)))
    });
    c.bench_function("next-hop", |b| {
        b.iter_batched(
            || st.clone(),
            |mut st| {
                for k in (0..8192u64).step_by(257) {
                    std::hint::black_box(st.next_hop(space.key(k)));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pastry(c: &mut Criterion) {
    use cbps_pastry::{PastryConfig, PastryState};
    let cfg = PastryConfig::paper_default();
    let overlay_like = OverlayConfig::paper_default();
    let keys = cbps_overlay::assign_node_keys(&overlay_like, 500);
    let peers: Vec<Peer> = keys
        .iter()
        .enumerate()
        .map(|(idx, &key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(cfg.space, peers.clone());
    let st = PastryState::converged(cfg, peers[0], &ring);
    let space = cfg.space;
    c.bench_function("pastry-next-hop", |b| {
        b.iter(|| {
            for k in (0..8192u64).step_by(257) {
                std::hint::black_box(st.next_hop(space.key(k)));
            }
        })
    });
    let full = KeyRangeSet::full(space);
    c.bench_function("pastry-mcast-split-full-ring", |b| {
        b.iter(|| std::hint::black_box(st.mcast_split(&full)))
    });
}

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xA5u8; 64];
    c.bench_function("sha1-64B", |b| b.iter(|| std::hint::black_box(sha1(&data))));
}

criterion_group!(benches, bench_mappings, bench_matching, bench_overlay, bench_pastry, bench_sha1);
criterion_main!(benches);

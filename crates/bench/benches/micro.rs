//! Micro-benchmarks of the system's hot components: the three
//! ak-mappings, the matching index vs brute force, the m-cast split,
//! greedy routing, and SHA-1 hashing.
//!
//! A self-contained `Instant`-based harness (`harness = false`, no
//! external benchmark framework): each benchmark is auto-calibrated to a
//! ~100 ms measurement window and reported in ns/iter. Run via
//! `cargo bench -p cbps-bench --bench micro`.

use std::time::{Duration, Instant};

use cbps::{
    AkMapping, Event, EventSpace, MappingKind, MatchIndex, SortedIndex, SubId, Subscription,
};
use cbps_overlay::{
    hash::sha1, KeyRangeSet, KeySpace, OverlayConfig, Peer, RingView, RoutingState,
};
use cbps_workload::{WorkloadConfig, WorkloadGen};

/// Calibrates the iteration count to a ~100 ms window, measures, and
/// prints mean ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and find an iteration count that runs for >= 10 ms.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= Duration::from_millis(10) || iters >= 1 << 30 {
            break;
        }
        iters *= 4;
    }
    // Measured run: scale to a ~100 ms window.
    let target = iters.saturating_mul(10).max(1);
    let start = Instant::now();
    for _ in 0..target {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / target as f64;
    println!(
        "{name:<40} {per_iter:>12.1} ns/iter   ({target} iters in {:.1} ms)",
        elapsed.as_secs_f64() * 1e3
    );
}

fn workload(n_subs: usize) -> (EventSpace, Vec<Subscription>, Vec<Event>) {
    let space = EventSpace::paper_default();
    let cfg = WorkloadConfig::paper_default(100, 4).with_counts(n_subs, n_subs);
    let mut gen = WorkloadGen::new(space.clone(), cfg, 7);
    let subs: Vec<Subscription> = (0..n_subs).map(|_| gen.gen_subscription()).collect();
    let events: Vec<Event> = subs.iter().map(|s| gen.gen_matching_event(s)).collect();
    (space, subs, events)
}

fn bench_mappings() {
    let (space, subs, events) = workload(256);
    let keys = KeySpace::new(13);
    for kind in [
        MappingKind::AttributeSplit,
        MappingKind::KeySpaceSplit,
        MappingKind::SelectiveAttribute,
    ] {
        let mapping = AkMapping::new(kind, &space, keys);
        let mut i = 0;
        bench(&format!("mapping/sk/{kind}"), || {
            let s = &subs[i % subs.len()];
            i += 1;
            std::hint::black_box(mapping.sk(s));
        });
        let mut i = 0;
        bench(&format!("mapping/ek/{kind}"), || {
            let e = &events[i % events.len()];
            i += 1;
            std::hint::black_box(mapping.ek(e));
        });
    }
}

fn bench_matching() {
    let (space, subs, events) = workload(2000);
    let mut index = MatchIndex::new(&space);
    let mut sorted = SortedIndex::new(&space);
    for (i, s) in subs.iter().enumerate() {
        index.insert(SubId(i as u64), s.clone());
        sorted.insert(SubId(i as u64), s.clone());
    }
    let mut hits = Vec::new();
    let mut i = 0;
    bench("matching-2000-subs/counting-index", || {
        let e = &events[i % events.len()];
        i += 1;
        index.matches_into(e, &mut hits);
        std::hint::black_box(hits.len());
    });
    let mut i = 0;
    bench("matching-2000-subs/sorted-index", || {
        let e = &events[i % events.len()];
        i += 1;
        sorted.matches_into(e, &mut hits);
        std::hint::black_box(hits.len());
    });
    let mut i = 0;
    bench("matching-2000-subs/brute-force", || {
        let e = &events[i % events.len()];
        i += 1;
        std::hint::black_box(index.matches_brute_force(e));
    });
}

fn converged_state(n: usize) -> RoutingState {
    let cfg = OverlayConfig::paper_default();
    let peers: Vec<Peer> = (0..n)
        .map(|i| Peer {
            idx: i,
            key: cbps_overlay::hash::key_of_bytes(cfg.space, format!("n{i}").as_bytes()),
        })
        .collect();
    // Deduplicate keys for the view.
    let mut seen = std::collections::HashSet::new();
    let peers: Vec<Peer> = peers.into_iter().filter(|p| seen.insert(p.key)).collect();
    let ring = RingView::new(cfg.space, peers.clone());
    let me = peers[0];
    let mut st = RoutingState::new(cfg, me);
    st.set_predecessor(Some(ring.predecessor(me.key)));
    st.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
    for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
        st.set_finger(i, f);
    }
    st
}

fn bench_overlay() {
    let st = converged_state(500);
    let space = OverlayConfig::paper_default().space;
    let full = KeyRangeSet::full(space);
    bench("mcast-split-full-ring", || {
        std::hint::black_box(st.mcast_split(&full));
    });
    let mut scratch = st.clone();
    bench("next-hop", || {
        for k in (0..8192u64).step_by(257) {
            std::hint::black_box(scratch.next_hop(space.key(k)));
        }
    });
}

fn bench_pastry() {
    use cbps_pastry::{PastryConfig, PastryState};
    let cfg = PastryConfig::paper_default();
    let overlay_like = OverlayConfig::paper_default();
    let keys = cbps_overlay::assign_node_keys(&overlay_like, 500);
    let peers: Vec<Peer> = keys
        .iter()
        .enumerate()
        .map(|(idx, &key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(cfg.space, peers.clone());
    let st = PastryState::converged(cfg, peers[0], &ring);
    let space = cfg.space;
    bench("pastry-next-hop", || {
        for k in (0..8192u64).step_by(257) {
            std::hint::black_box(st.next_hop(space.key(k)));
        }
    });
    let full = KeyRangeSet::full(space);
    bench("pastry-mcast-split-full-ring", || {
        std::hint::black_box(st.mcast_split(&full));
    });
}

fn bench_sha1() {
    let data = vec![0xA5u8; 64];
    bench("sha1-64B", || {
        std::hint::black_box(sha1(&data));
    });
}

fn main() {
    // Under `cargo test --benches` just smoke-run nothing.
    if std::env::args().any(|a| a == "--test") {
        println!("micro harness: skipped under --test (run `cargo bench` instead)");
        return;
    }
    bench_mappings();
    bench_matching();
    bench_overlay();
    bench_pastry();
    bench_sha1();
}

//! Zipf-distributed sampling.
//!
//! §5.1 of the paper: centers of selective constraints "are chosen …
//! following a Zipf distribution". This is a CDF-table sampler: exact,
//! O(log n) per sample, one-time O(n) setup. The paper's domain (10^6
//! values) costs 8 MB per table, built lazily and shared per generator.

use crate::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
///
/// # Examples
///
/// ```
/// use cbps_rng::{Rng, Zipf};
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = Rng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k-1] = P(rank <= k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `n > 2^24` (table memory guard), or `s` is
    /// negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty support");
        assert!(n <= 1 << 24, "zipf support too large for a CDF table: {n}");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and >= 0, got {s}"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx as u64 + 1).min(self.n())
    }

    /// Exact probability of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=n`.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n()).contains(&k), "rank {k} out of support");
        let i = (k - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_follows_power_law() {
        let z = Zipf::new(1000, 1.0);
        // P(1)/P(2) = 2, P(1)/P(10) = 10 for s = 1.
        assert!((z.pmf(1) / z.pmf(2) - 2.0).abs() < 1e-9);
        assert!((z.pmf(1) / z.pmf(10) - 10.0).abs() < 1e-9);
        let z = Zipf::new(1000, 2.0);
        assert!((z.pmf(1) / z.pmf(2) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        let draws = 200_000;
        for _ in 0..draws {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for k in [1u64, 2, 5, 20] {
            let expect = z.pmf(k) * draws as f64;
            let got = counts[(k - 1) as usize] as f64;
            assert!(
                (got - expect).abs() < expect * 0.1 + 30.0,
                "rank {k}: got {got}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let z = Zipf::new(50, 0.5);
        let analytic: f64 = (1..=50).map(|k| k as f64 * z.pmf(k)).sum();
        let mut rng = Rng::seed_from_u64(5);
        let draws = 200_000;
        let sum: u64 = (0..draws).map(|_| z.sample(&mut rng)).sum();
        let mean = sum as f64 / draws as f64;
        assert!(
            (mean - analytic).abs() < analytic * 0.02,
            "zipf mean {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(50, 0.0);
        assert!((z.pmf(1) - z.pmf(50)).abs() < 1e-12);
    }

    #[test]
    fn sample_stays_in_support() {
        let z = Zipf::new(3, 1.5);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn empty_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}

//! # cbps-rng — hermetic pseudo-random numbers for the CBPS reproduction
//!
//! A self-contained PRNG so the workspace builds and tests with **zero
//! external crates**: a [xoshiro256++] core seeded through [splitmix64],
//! plus the small distribution surface the evaluation actually uses —
//! bounded integers, unit-interval floats, Bernoulli, exponential /
//! Poisson arrivals, and a CDF-table [`Zipf`] sampler.
//!
//! The figures in the paper depend on distribution *shape* (uniform
//! delay, Poisson publications, Zipf centers), not on the identity of the
//! bit generator, so substituting xoshiro256++ for an external ChaCha12
//! stream changes nothing the evaluation measures while being roughly an
//! order of magnitude cheaper per draw — and every draw stays
//! deterministic per seed, which the replay and determinism suites rely
//! on.
//!
//! [xoshiro256++]: https://prng.di.unimi.it
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Examples
//!
//! ```
//! use cbps_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let hops = rng.gen_range(0u64..16);
//! let unit = rng.f64();
//! assert!(hops < 16 && (0.0..1.0).contains(&unit));
//! let _ = coin;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod zipf;

pub use zipf::Zipf;

/// One step of the splitmix64 sequence; used to expand a 64-bit seed into
/// the 256-bit xoshiro state (the seeding procedure its authors recommend).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator: 256 bits of state, period 2^256 − 1,
/// a handful of shifts/rotates per draw.
///
/// Deterministic per seed; `Clone` forks an identical stream. Not
/// cryptographic — this is a simulation RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // splitmix64 output is never all-zero across four draws for any
        // seed, so the xoshiro all-zero fixed point is unreachable.
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (high half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform value in `range`; supports `Range` and `RangeInclusive`
    /// over `u32` / `u64` / `u128` / `usize` and half-open `f64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` in `[0, n)` — Lemire's multiply-shift with
    /// rejection, so the result is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `u128` in `[0, n)` via bitmask rejection (delegates to
    /// [`Self::bounded_u64`] when `n` fits in 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bounded_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "empty range");
        if n <= u64::MAX as u128 {
            return self.bounded_u64(n as u64) as u128;
        }
        let bits = 128 - n.leading_zeros();
        let mask = if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        loop {
            let v = (((self.next_u64() as u128) << 64) | self.next_u64() as u128) & mask;
            if v < n {
                return v;
            }
        }
    }

    /// An exponential draw with the given mean (inverse-CDF method).
    /// Models Poisson-process inter-arrival times.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // f64() < 1 exactly, so the argument to ln is in (0, 1].
        -(1.0 - self.f64()).ln() * mean
    }

    /// A Poisson draw with the given rate (Knuth's product method, with
    /// halving for large `lambda` to stay inside `f64` range).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson rate must be finite and >= 0"
        );
        let mut total = 0u64;
        let mut remaining = lambda;
        // e^-500 ≈ 7e-218 keeps the running product comfortably normal.
        while remaining > 500.0 {
            total += self.poisson_small(500.0);
            remaining -= 500.0;
        }
        total + self.poisson_small(remaining)
    }

    fn poisson_small(&mut self, lambda: f64) -> u64 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full 64-bit range: every draw is already in bounds.
                    return rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<u128> {
    type Output = u128;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u128 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u128(self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<u128> {
    type Output = u128;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        if start == 0 && end == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        start + rng.bounded_u128(end - start + 1)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.f64() * (self.end - self.start);
        // Guard against the rounding edge where v == end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation values for xoshiro256++ seeded with
    /// splitmix64(0): regression-pins the exact stream so determinism
    /// tests elsewhere stay meaningful across refactors.
    #[test]
    fn stream_is_stable_across_versions() {
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        let mut other = Rng::seed_from_u64(1);
        assert_ne!(first[0], other.next_u64());
    }

    #[test]
    fn clone_forks_identical_streams() {
        let mut a = Rng::seed_from_u64(99);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_and_variance_within_tolerance() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = rng.f64();
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "uniform mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "uniform variance {var}");
    }

    #[test]
    fn gen_range_is_uniform_and_in_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket {i} count {c} deviates from uniform"
            );
        }
        for _ in 0..1000 {
            assert!((5..=9).contains(&rng.gen_range(5u64..=9)));
            assert!((100..600).contains(&rng.gen_range(100u64..600)));
            let m = rng.gen_range(3u128..=7);
            assert!((3..=7).contains(&m));
        }
    }

    #[test]
    fn gen_bool_frequency_matches_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_and_variance_within_tolerance() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 200_000;
        let mean_target = 5.0;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = rng.exp(mean_target);
            assert!(v >= 0.0);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - mean_target).abs() < 0.1, "exp mean {mean}");
        // Var = mean² for the exponential.
        assert!(
            (var - mean_target * mean_target).abs() < 1.5,
            "exp variance {var}"
        );
    }

    #[test]
    fn poisson_mean_and_variance_within_tolerance() {
        let mut rng = Rng::seed_from_u64(19);
        let lambda = 4.0;
        let n = 100_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = rng.poisson(lambda) as f64;
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        // Poisson: mean = variance = lambda.
        assert!((mean - lambda).abs() < 0.05, "poisson mean {mean}");
        assert!((var - lambda).abs() < 0.15, "poisson variance {var}");
    }

    #[test]
    fn large_lambda_poisson_stays_sane() {
        let mut rng = Rng::seed_from_u64(23);
        let lambda = 2000.0;
        let n = 2_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - lambda).abs() < 0.05 * lambda,
            "large-lambda mean {mean}"
        );
    }

    #[test]
    fn bounded_u64_covers_whole_range() {
        let mut rng = Rng::seed_from_u64(29);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.bounded_u64(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = Rng::seed_from_u64(31);
        let _ = rng.gen_range(5u64..5);
    }
}

//! Tiny hand-rolled flag parser (no offline argument-parsing crate).

use std::collections::HashMap;

/// Parsed command line: positional arguments plus `--flag value` pairs.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Errors produced while reading flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. Every `--name` consumes the following token as
    /// its value.
    ///
    /// # Errors
    ///
    /// Returns an error when a flag has no value or appears twice.
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{name} needs a value")))?;
                if out.flags.insert(name.to_owned(), value).is_some() {
                    return Err(ArgError(format!("flag --{name} given twice")));
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A flag's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A flag parsed into `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns an error when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{name}: cannot parse {v:?}"))),
        }
    }

    /// Rejects flags outside the allowed set (typo protection).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown flag.
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positional_and_flags() {
        let a = parse("run-trace trace.txt --nodes 100 --seed 7").unwrap();
        assert_eq!(a.positional(), ["run-trace", "trace.txt"]);
        assert_eq!(a.get("nodes"), Some("100"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse("x --nodes 5 --typo 1").unwrap();
        assert!(a.check_flags(&["nodes"]).is_err());
        assert!(a.check_flags(&["nodes", "typo"]).is_ok());
    }

    #[test]
    fn errors() {
        assert!(parse("x --flag").is_err());
        assert!(parse("--a 1 --a 2").is_err());
        let a = parse("--n abc").unwrap();
        assert!(a.get_or("n", 0u64).is_err());
    }
}

//! `cbps` — the command-line driver of the CBPS reproduction.
//!
//! ```text
//! cbps gen-trace --out FILE [--subs N] [--pubs N] [--nodes N] [--seed S]
//!                [--selective K] [--match P] [--ttl SECS] [--streak L]
//!                [--flash-crowd N] [--flash-alpha A]
//! cbps run-trace FILE [--nodes N] [--seed S] [--overlay chord|pastry]
//!                [--mapping m1|m2|m3] [--primitive unicast|mcast|walk]
//!                [--notify immediate|buffered:S|collecting:S]
//!                [--discretization W] [--replication R] [--scheduler wheel|heap]
//!                [--shards N] [--match-engine counting|sorted] [--pool reuse|fresh]
//!                [--rendezvous static|adaptive]
//! cbps stats FILE [--out FILE] [run-trace deployment flags]
//! cbps ring [--nodes N] [--seed S] [--node IDX]
//! cbps experiment NAME [--scale quick|paper|large] [--nodes N] [--overlay chord|pastry] [--jobs N]
//!                [--shards N] [--match-engine counting|sorted] [--pool reuse|fresh]
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
cbps — content-based pub/sub over structured overlays (ICDCS 2005 reproduction)

usage:
  cbps gen-trace --out FILE [--subs N] [--pubs N] [--nodes N] [--seed S]
                 [--selective K] [--match P] [--ttl SECS] [--streak L]
                 [--flash-crowd N] [--flash-alpha A]
  cbps run-trace FILE [--nodes N] [--seed S] [--overlay chord|pastry]
                 [--mapping m1|m2|m3] [--primitive unicast|mcast|walk]
                 [--notify immediate|buffered:SECS|collecting:SECS]
                 [--discretization W] [--replication R] [--scheduler wheel|heap]
                 [--shards N] [--match-engine counting|sorted] [--pool reuse|fresh]
                 [--rendezvous static|adaptive]
  cbps stats FILE [--out FILE] [run-trace deployment flags]
                 (replay with observability on; emit the cbps-report/v2 JSON)
  cbps ring [--nodes N] [--seed S] [--node IDX]
  cbps experiment NAME [--scale quick|paper|large] [--nodes N] [--overlay chord|pastry] [--jobs N]
                 [--shards N] [--match-engine counting|sorted] [--pool reuse|fresh]
                 (NAME: route, keys, fig5 … or all)
";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some(command) = args.positional().first().map(String::as_str) else {
        println!("{USAGE}");
        return;
    };
    let outcome = match command {
        "gen-trace" => commands::gen_trace(&args),
        "run-trace" => commands::run_trace(&args),
        "stats" => commands::stats(&args),
        "ring" => commands::ring(&args),
        "experiment" => commands::experiment(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(args::ArgError(format!("unknown command {other:?}"))),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

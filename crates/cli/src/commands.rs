//! The CLI subcommands.

use cbps::{
    EventSpace, MappingKind, NotifyMode, OverlayBackend as _, Primitive, PubSubConfig,
    PubSubNetwork, PubSubNetworkBuilder, RendezvousMode,
};
use cbps_bench::report::{ExperimentReport, ObsReport, RunReport};
use cbps_bench::runner::{delivered_fingerprint, BackendKind};
use cbps_bench::with_backend;
use cbps_sim::{
    MatchEngineKind, NetConfig, ObsMode, PoolMode, SchedulerKind, SimDuration, TrafficClass,
};
use cbps_workload::{trace_from_str, trace_to_string, WorkloadConfig, WorkloadGen};

use crate::args::{ArgError, Args};

type Outcome = Result<(), ArgError>;

fn parse_overlay(args: &Args) -> Result<BackendKind, ArgError> {
    let s = args.get("overlay").unwrap_or("chord");
    BackendKind::parse(s).ok_or_else(|| ArgError(format!("unknown overlay {s:?} (chord|pastry)")))
}

/// `cbps gen-trace`: generate a §5.1 workload trace file.
pub fn gen_trace(args: &Args) -> Outcome {
    args.check_flags(&[
        "out",
        "nodes",
        "subs",
        "pubs",
        "seed",
        "selective",
        "match",
        "streak",
        "ttl",
        "flash-crowd",
        "flash-alpha",
    ])?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("gen-trace needs --out FILE".into()))?
        .to_owned();
    let nodes: usize = args.get_or("nodes", 100)?;
    let subs: usize = args.get_or("subs", 500)?;
    let pubs: usize = args.get_or("pubs", 500)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let selective: usize = args.get_or("selective", 0)?;
    let matching: f64 = args.get_or("match", 0.5)?;
    let streak: u64 = args.get_or("streak", 1)?;
    let ttl: Option<u64> = match args.get("ttl") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| ArgError(format!("bad --ttl {v:?}")))?,
        ),
    };
    let flash_crowd: usize = args.get_or("flash-crowd", 0)?;
    let flash_alpha: f64 = args.get_or("flash-alpha", 1.1)?;
    if !(flash_alpha.is_finite() && flash_alpha > 0.0) {
        return Err(ArgError(format!(
            "--flash-alpha must be positive, got {flash_alpha}"
        )));
    }

    let space = EventSpace::paper_default();
    let cfg = WorkloadConfig::paper_default(nodes, space.dims())
        .with_selective_attrs(selective)
        .with_counts(subs, pubs)
        .with_matching_probability(matching)
        .with_seed_streak(streak)
        .with_flash_crowd(flash_crowd, flash_alpha)
        .with_sub_ttl(ttl.map(SimDuration::from_secs));
    let mut gen = WorkloadGen::new(space.clone(), cfg, seed);
    let trace = gen.gen_trace();
    let text = trace_to_string(&space, &trace);
    std::fs::write(&out, &text).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {} ({} subscriptions, {} publications, ends at {})",
        out,
        trace.sub_count(),
        trace.pub_count(),
        trace.end_time()
    );
    Ok(())
}

fn parse_mapping(s: &str) -> Result<MappingKind, ArgError> {
    Ok(match s {
        "m1" | "attribute-split" => MappingKind::AttributeSplit,
        "m2" | "keyspace-split" => MappingKind::KeySpaceSplit,
        "m3" | "selective" => MappingKind::SelectiveAttribute,
        other => return Err(ArgError(format!("unknown mapping {other:?} (m1|m2|m3)"))),
    })
}

fn parse_primitive(s: &str) -> Result<Primitive, ArgError> {
    Ok(match s {
        "unicast" => Primitive::Unicast,
        "mcast" | "m-cast" => Primitive::MCast,
        "walk" => Primitive::Walk,
        other => return Err(ArgError(format!("unknown primitive {other:?}"))),
    })
}

fn parse_scheduler(s: &str) -> Result<SchedulerKind, ArgError> {
    SchedulerKind::parse(s).ok_or_else(|| ArgError(format!("unknown scheduler {s:?} (wheel|heap)")))
}

fn parse_match_engine(s: &str) -> Result<MatchEngineKind, ArgError> {
    MatchEngineKind::parse(s)
        .ok_or_else(|| ArgError(format!("unknown match engine {s:?} (counting|sorted)")))
}

fn parse_pool(s: &str) -> Result<PoolMode, ArgError> {
    PoolMode::parse(s).ok_or_else(|| ArgError(format!("unknown pool mode {s:?} (reuse|fresh)")))
}

fn parse_rendezvous(s: &str) -> Result<RendezvousMode, ArgError> {
    RendezvousMode::parse(s)
        .ok_or_else(|| ArgError(format!("unknown rendezvous policy {s:?} (static|adaptive)")))
}

fn parse_notify(s: &str) -> Result<NotifyMode, ArgError> {
    if s == "immediate" {
        return Ok(NotifyMode::Immediate);
    }
    if let Some(secs) = s.strip_prefix("buffered:") {
        let secs: u64 = secs
            .parse()
            .map_err(|_| ArgError(format!("bad period in {s:?}")))?;
        return Ok(NotifyMode::Buffered {
            period: SimDuration::from_secs(secs),
        });
    }
    if let Some(secs) = s.strip_prefix("collecting:") {
        let secs: u64 = secs
            .parse()
            .map_err(|_| ArgError(format!("bad period in {s:?}")))?;
        return Ok(NotifyMode::Collecting {
            period: SimDuration::from_secs(secs),
        });
    }
    Err(ArgError(format!(
        "unknown notify mode {s:?} (immediate|buffered:SECS|collecting:SECS)"
    )))
}

/// `cbps run-trace`: replay a trace file against a fresh deployment and
/// print the run's statistics.
pub fn run_trace(args: &Args) -> Outcome {
    args.check_flags(&[
        "nodes",
        "seed",
        "mapping",
        "primitive",
        "notify",
        "discretization",
        "replication",
        "scheduler",
        "shards",
        "match-engine",
        "pool",
        "rendezvous",
        "overlay",
    ])?;
    let file = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("run-trace needs a trace FILE".into()))?;
    let text =
        std::fs::read_to_string(file).map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    let space = EventSpace::paper_default();
    let trace = trace_from_str(&space, &text).map_err(|e| ArgError(format!("bad trace: {e}")))?;

    let nodes: usize = args.get_or("nodes", 100)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let mapping = parse_mapping(args.get("mapping").unwrap_or("m2"))?;
    let primitive = parse_primitive(args.get("primitive").unwrap_or("mcast"))?;
    let notify = parse_notify(args.get("notify").unwrap_or("immediate"))?;
    let discretization: u64 = args.get_or("discretization", 1)?;
    let replication: usize = args.get_or("replication", 0)?;
    let scheduler = parse_scheduler(args.get("scheduler").unwrap_or("wheel"))?;
    let shards: usize = args.get_or("shards", 1)?;
    let match_engine = parse_match_engine(args.get("match-engine").unwrap_or("counting"))?;
    let pool = parse_pool(args.get("pool").unwrap_or("reuse"))?;
    let rendezvous = parse_rendezvous(args.get("rendezvous").unwrap_or("static"))?;
    let overlay = parse_overlay(args)?;

    cbps_bench::runner::set_backend(overlay);
    let keys = cbps::deployment_key_space(nodes);
    with_backend!(B => {
        let mut net = PubSubNetworkBuilder::<B>::new()
            .nodes(nodes)
            .overlay(B::with_key_space(B::paper_default(), keys))
            .net_config(
                NetConfig::new(seed)
                    .with_scheduler(scheduler)
                    .with_shards(shards)
                    .with_match_engine(match_engine)
                    .with_pool(pool),
            )
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(mapping)
                    .with_primitive(primitive)
                    .with_notify_mode(notify)
                    .with_discretization(discretization)
                    .with_replication(replication)
                    .with_rendezvous(rendezvous)
                    .with_key_space(keys),
            )
            .build()
            .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;

        let outcome = trace.replay(&mut net);
        net.run_until(trace.end_time() + SimDuration::from_secs(600));

        let m = net.metrics();
        let subs = trace.sub_count().max(1) as f64;
        let pubs = trace.pub_count().max(1) as f64;
        println!("deployment: {nodes} nodes, {overlay} overlay, {mapping}, {primitive:?}, {notify:?}");
        println!(
            "trace: {} subscriptions, {} publications",
            trace.sub_count(),
            trace.pub_count()
        );
        println!("one-hop messages:");
        for class in [
            TrafficClass::SUBSCRIPTION,
            TrafficClass::PUBLICATION,
            TrafficClass::NOTIFICATION,
            TrafficClass::COLLECT,
            TrafficClass::STATE_TRANSFER,
        ] {
            println!("  {:<14} {}", class.name(), m.messages(class));
        }
        println!(
            "hops/subscription: {:.2}",
            m.messages(TrafficClass::SUBSCRIPTION) as f64 / subs
        );
        println!(
            "hops/publication:  {:.2}",
            m.messages(TrafficClass::PUBLICATION) as f64 / pubs
        );
        println!("matches: {}", m.counter("matches"));
        println!(
            "notifications delivered: {}",
            m.counter("notifications.delivered")
        );
        let peaks = net.peak_stored_counts();
        let max = peaks.iter().max().copied().unwrap_or(0);
        let avg = peaks.iter().sum::<usize>() as f64 / peaks.len().max(1) as f64;
        println!("stored subscriptions/node: max {max}, avg {avg:.1}");
        if rendezvous == RendezvousMode::Adaptive {
            let (splits, merges) = net.rendezvous_counters();
            println!("rendezvous splits: {splits} merges: {merges}");
        }
        let (fp, count) = delivered_fingerprint(&net);
        println!("delivered-set fingerprint: {fp:#018x} ({count} notifications)");
        let expected = outcome.oracle.expected().len();
        println!("oracle (timing-agnostic) expected pairs: {expected}");
    });
    Ok(())
}

/// `cbps stats`: replay a trace file with observability on and emit the
/// structured `cbps-report/v2` JSON document (per-stage latency
/// percentiles, named histograms, hottest rendezvous nodes).
pub fn stats(args: &Args) -> Outcome {
    args.check_flags(&[
        "nodes",
        "seed",
        "mapping",
        "primitive",
        "notify",
        "discretization",
        "replication",
        "scheduler",
        "shards",
        "match-engine",
        "pool",
        "rendezvous",
        "overlay",
        "out",
    ])?;
    let file = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("stats needs a trace FILE".into()))?;
    let text =
        std::fs::read_to_string(file).map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    let space = EventSpace::paper_default();
    let trace = trace_from_str(&space, &text).map_err(|e| ArgError(format!("bad trace: {e}")))?;

    let nodes: usize = args.get_or("nodes", 100)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let mapping = parse_mapping(args.get("mapping").unwrap_or("m2"))?;
    let primitive = parse_primitive(args.get("primitive").unwrap_or("mcast"))?;
    let notify = parse_notify(args.get("notify").unwrap_or("immediate"))?;
    let discretization: u64 = args.get_or("discretization", 1)?;
    let replication: usize = args.get_or("replication", 0)?;
    let scheduler = parse_scheduler(args.get("scheduler").unwrap_or("wheel"))?;
    let shards: usize = args.get_or("shards", 1)?;
    let match_engine = parse_match_engine(args.get("match-engine").unwrap_or("counting"))?;
    let pool = parse_pool(args.get("pool").unwrap_or("reuse"))?;
    let rendezvous = parse_rendezvous(args.get("rendezvous").unwrap_or("static"))?;
    let overlay = parse_overlay(args)?;

    cbps_bench::runner::set_backend(overlay);
    let keys = cbps::deployment_key_space(nodes);
    let record = with_backend!(B => {
        let mut net = PubSubNetworkBuilder::<B>::new()
            .nodes(nodes)
            .overlay(B::with_key_space(B::paper_default(), keys))
            .net_config(
                NetConfig::new(seed)
                    .with_scheduler(scheduler)
                    .with_shards(shards)
                    .with_match_engine(match_engine)
                    .with_pool(pool),
            )
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(mapping)
                    .with_primitive(primitive)
                    .with_notify_mode(notify)
                    .with_discretization(discretization)
                    .with_replication(replication)
                    .with_rendezvous(rendezvous)
                    .with_key_space(keys),
            )
            .observability(ObsMode::Full)
            .build()
            .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;

        let started = std::time::Instant::now();
        trace.replay(&mut net);
        net.run_until(trace.end_time() + SimDuration::from_secs(600));
        let wall_secs = started.elapsed().as_secs_f64();

        let peaks: Vec<u64> = net
            .peak_stored_counts()
            .into_iter()
            .map(|p| p as u64)
            .collect();
        let work = net.rendezvous_work_counts();
        let (splits, merges) = net.rendezvous_counters();
        let sim = net.sim_mut();
        let events = sim.events_processed();
        let peak_queue_depth = sim.queue_peak() as u64;
        let obs = std::mem::take(net.metrics_mut().obs_mut());
        ExperimentReport {
            name: file.clone(),
            wall_secs,
            events,
            peak_queue_depth,
            obs: Some(ObsReport::distill(&obs, &peaks).with_load(&work, splits, merges)),
            alloc: None,
        }
    });
    let report = RunReport {
        scale: "trace".to_owned(),
        jobs: 1,
        observability: ObsMode::Full.name().to_owned(),
        scheduler: scheduler.name().to_owned(),
        shards: shards.max(1),
        match_engine: match_engine.name().to_owned(),
        rendezvous: rendezvous.name().to_owned(),
        overlay: overlay.name().to_owned(),
        experiments: vec![record],
    };
    let json = report.to_json();
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &json).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
            eprintln!("run report written to {out}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

/// `cbps ring`: print ring occupancy and one node's routing tables.
pub fn ring(args: &Args) -> Outcome {
    args.check_flags(&["nodes", "seed", "node"])?;
    let nodes: usize = args.get_or("nodes", 20)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let inspect: usize = args.get_or("node", 0)?;
    let keys = cbps::deployment_key_space(nodes);
    let net = PubSubNetwork::builder()
        .nodes(nodes)
        .net_config(NetConfig::new(seed))
        .overlay(cbps::ChordBackend::with_key_space(
            cbps::ChordBackend::paper_default(),
            keys,
        ))
        .pubsub(PubSubConfig::paper_default().with_key_space(keys))
        .build()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;
    let ring = net.ring();
    println!(
        "ring: {} nodes over {} keys",
        ring.len(),
        ring.space().size()
    );
    for peer in ring.peers() {
        let marker = if peer.idx == inspect {
            "  <-- --node"
        } else {
            ""
        };
        println!(
            "  node {:>4}  key {:>6}{}",
            peer.idx,
            peer.key.value(),
            marker
        );
    }
    if inspect < nodes {
        let me = ring
            .peers()
            .iter()
            .find(|p| p.idx == inspect)
            .expect("exists");
        println!(
            "\nfinger table of node {} (key {}):",
            me.idx,
            me.key.value()
        );
        for (i, f) in ring.fingers_of(me.key).iter().enumerate() {
            println!(
                "  finger {:>2}  target {:>6}  ->  node {:>4} (key {})",
                i,
                ring.space().finger_target(me.key, i as u32).value(),
                f.idx,
                f.key.value()
            );
        }
    }
    Ok(())
}

/// `cbps experiment`: run a named experiment from the bench harness.
pub fn experiment(args: &Args) -> Outcome {
    args.check_flags(&[
        "scale",
        "nodes",
        "jobs",
        "shards",
        "match-engine",
        "pool",
        "overlay",
    ])?;
    let name = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("experiment needs a NAME".into()))?;
    let raw_scale = args.get("scale").unwrap_or("quick");
    let scale = cbps_bench::Scale::parse(raw_scale)
        .ok_or_else(|| ArgError(format!("unknown scale {raw_scale:?}")))?;
    if let Some(nodes) = args.get("nodes") {
        let n: usize = nodes
            .parse()
            .map_err(|_| ArgError(format!("--nodes expects an integer, got {nodes:?}")))?;
        if n == 0 || n > cbps_bench::runner::MAX_NODES {
            return Err(ArgError(format!(
                "--nodes must be in 1..={}",
                cbps_bench::runner::MAX_NODES
            )));
        }
        cbps_bench::runner::set_nodes_override(n);
    }
    let jobs: usize = args.get_or("jobs", 1)?;
    if jobs == 0 {
        return Err(ArgError("--jobs must be at least 1".into()));
    }
    cbps_bench::runner::set_jobs(jobs);
    cbps_bench::runner::set_shards(args.get_or("shards", 1)?);
    cbps_bench::runner::set_match_engine(parse_match_engine(
        args.get("match-engine").unwrap_or("counting"),
    )?);
    cbps_bench::runner::set_pool(parse_pool(args.get("pool").unwrap_or("reuse"))?);
    cbps_bench::runner::set_backend(parse_overlay(args)?);
    let tables = cbps_bench::experiments::run_named(name, scale).ok_or_else(|| {
        ArgError(format!(
            "unknown experiment {name:?}; known: {}",
            cbps_bench::experiments::EXPERIMENT_NAMES.join(", ")
        ))
    })?;
    for t in tables {
        println!("{}", t.render());
    }
    Ok(())
}

//! Dynamic-membership tests: join, graceful leave, crash recovery.
//!
//! The paper's experiments run on a converged ring, but §4.1 argues the
//! architecture inherits the overlay's adaptiveness to joins and failures.
//! These tests exercise that machinery: stabilization, finger repair,
//! liveness probing and leave notices.

use cbps_overlay::{
    build_stable, ChordNode, Delivery, OverlayApp, OverlayConfig, OverlayServices, Peer, RingView,
    RoutingState,
};
use cbps_sim::{NetConfig, SimTime, Simulator, TraceId, TrafficClass};

/// An app that records payload deliveries and predecessor changes.
#[derive(Default)]
struct Probe {
    delivered: Vec<u32>,
    pred_changes: u32,
}

impl OverlayApp for Probe {
    type Payload = u32;
    type Timer = ();

    fn on_deliver(&mut self, payload: u32, _d: Delivery, _svc: &mut dyn OverlayServices<u32, ()>) {
        self.delivered.push(payload);
    }

    fn on_predecessor_changed(
        &mut self,
        _old: Option<Peer>,
        _new: Option<Peer>,
        _svc: &mut dyn OverlayServices<u32, ()>,
    ) {
        self.pred_changes += 1;
    }
}

fn maintained_network(
    n: usize,
    seed: u64,
) -> (Simulator<ChordNode<Probe>>, RingView, OverlayConfig) {
    let cfg = OverlayConfig::paper_default().with_maintenance(true);
    let apps: Vec<Probe> = (0..n).map(|_| Probe::default()).collect();
    let (sim, ring) = build_stable(NetConfig::new(seed), cfg, apps);
    (sim, ring, cfg)
}

/// Asserts that alive nodes form a consistent bidirectional ring.
fn assert_ring_consistent(sim: &Simulator<ChordNode<Probe>>) {
    let mut alive: Vec<Peer> = sim
        .nodes()
        .filter(|(i, _)| sim.is_alive(*i))
        .map(|(_, n)| n.me())
        .collect();
    alive.sort_by_key(|p| p.key);
    let n = alive.len();
    for (pos, peer) in alive.iter().enumerate() {
        let node = sim.node(peer.idx);
        let expect_succ = alive[(pos + 1) % n];
        let expect_pred = alive[(pos + n - 1) % n];
        assert_eq!(
            node.routing().successor(),
            Some(expect_succ),
            "node {} successor",
            peer.idx
        );
        assert_eq!(
            node.routing().predecessor(),
            Some(expect_pred),
            "node {} predecessor",
            peer.idx
        );
    }
}

#[test]
fn stable_ring_stays_consistent_under_maintenance() {
    let (mut sim, _ring, _cfg) = maintained_network(30, 1);
    sim.run_until(SimTime::from_secs(20));
    assert_ring_consistent(&sim);
    // Maintenance traffic must exist but carry the MAINTENANCE class only.
    assert!(sim.metrics().messages(cbps_sim::TrafficClass::MAINTENANCE) > 0);
    assert_eq!(
        sim.metrics().messages(cbps_sim::TrafficClass::PUBLICATION),
        0
    );
}

#[test]
fn join_integrates_new_node() {
    let (mut sim, ring, cfg) = maintained_network(25, 2);
    sim.run_until(SimTime::from_secs(2));

    // Pick a key not already on the ring.
    let space = cfg.space;
    let mut key = space.key(4242);
    while ring.peers().iter().any(|p| p.key == key) {
        key = space.add(key, 1);
    }
    let idx = sim.len();
    let me = Peer { idx, key };
    let added = sim.add_node(ChordNode::new(RoutingState::new(cfg, me), Probe::default()));
    assert_eq!(added, idx);
    let bootstrap = sim.node(0).me();
    sim.with_node(idx, |node, ctx| node.start_join(bootstrap, ctx));

    sim.run_until(SimTime::from_secs(30));
    assert_ring_consistent(&sim);

    // The joiner's fingers have been repaired to the correct successors.
    let mut peers: Vec<Peer> = ring.peers().to_vec();
    peers.push(me);
    let new_ring = RingView::new(space, peers);
    let node = sim.node(idx);
    let mut correct = 0;
    for (i, f) in node.routing().fingers().enumerate() {
        let expect = new_ring.successor(space.finger_target(key, i as u32));
        if f == Some(expect) || (f.is_none() && expect.key == key) {
            correct += 1;
        }
    }
    assert!(
        correct >= space.bits() as usize - 1,
        "only {correct}/{} fingers repaired",
        space.bits()
    );

    // Routing to a key the joiner covers reaches the joiner.
    let probe_key = key; // its own key is always covered by it now
    sim.with_node(3, |node, ctx| {
        node.app_call(ctx, |_, svc| {
            svc.send(probe_key, TrafficClass::OTHER, 77, TraceId::NONE)
        });
    });
    sim.run_until(SimTime::from_secs(31));
    assert_eq!(sim.node(idx).app().delivered, vec![77]);
}

#[test]
fn crash_heals_ring_and_reroutes() {
    let (mut sim, ring, _cfg) = maintained_network(25, 3);
    sim.run_until(SimTime::from_secs(2));

    let victim = 7usize;
    let victim_key = sim.node(victim).me().key;
    let heir = ring.next_node(victim_key); // takes over the victim's arc
    sim.crash(victim);
    sim.run_until(SimTime::from_secs(40));
    assert_ring_consistent(&sim);

    // A key formerly covered by the victim now lands on its successor.
    sim.with_node(1, |node, ctx| {
        node.app_call(ctx, |_, svc| {
            svc.send(victim_key, TrafficClass::OTHER, 55, TraceId::NONE)
        });
    });
    sim.run_until(SimTime::from_secs(41));
    assert_eq!(sim.node(heir.idx).app().delivered, vec![55]);
    // The heir observed a predecessor change (failure-driven takeover).
    assert!(sim.node(heir.idx).app().pred_changes >= 1);
}

#[test]
fn multiple_crashes_within_successor_list_tolerance() {
    let (mut sim, ring, _cfg) = maintained_network(30, 4);
    sim.run_until(SimTime::from_secs(2));

    // Crash two ring-adjacent nodes simultaneously (succ list length is 4).
    let k0 = sim.node(11).me().key;
    let neighbor = ring.next_node(k0);
    sim.crash(11);
    sim.crash(neighbor.idx);
    sim.run_until(SimTime::from_secs(60));
    assert_ring_consistent(&sim);
}

#[test]
fn graceful_leave_relinks_neighbors_immediately() {
    let (mut sim, ring, _cfg) = maintained_network(20, 5);
    sim.run_until(SimTime::from_secs(2));

    let leaver = 4usize;
    let me = sim.node(leaver).me();
    let pred = ring.predecessor(me.key);
    let succ = ring.next_node(me.key);
    sim.with_node(leaver, |node, ctx| node.start_leave(ctx));
    sim.crash(leaver);
    // One network delay suffices: no stabilization round needed.
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(sim.node(pred.idx).routing().successor(), Some(succ));
    assert_eq!(sim.node(succ.idx).routing().predecessor(), Some(pred));
    sim.run_until(SimTime::from_secs(30));
    assert_ring_consistent(&sim);
}

#[test]
fn lookups_succeed_during_churn() {
    let (mut sim, _ring, cfg) = maintained_network(40, 6);
    let space = cfg.space;
    sim.run_until(SimTime::from_secs(2));
    // Crash one node, then immediately issue lookups from many sources.
    sim.crash(13);
    let mut issued = 0u64;
    for i in 0..60u64 {
        let src = (i % 40) as usize;
        if src == 13 {
            continue;
        }
        issued += 1;
        let target = space.key(i * 131 + 3);
        sim.with_node(src, |node, ctx| node.start_lookup(target, ctx));
    }
    sim.run_until(SimTime::from_secs(90));
    // Lookups whose path crossed the dead node are lost (no retransmission
    // layer — the paper's simulator behaves the same); the overwhelming
    // majority must still complete.
    let done = sim
        .metrics()
        .histogram("lookup.hops")
        .map(|h| h.len())
        .unwrap_or(0);
    assert!(
        done >= issued * 9 / 10,
        "only {done}/{issued} lookups completed"
    );
}

#[test]
fn mcast_routes_around_unannounced_crashes() {
    // Maintenance OFF: nobody has been told about the crash — only the
    // connection-failure path (on_send_failed) can save the multicast.
    let cfg = OverlayConfig::paper_default();
    let apps: Vec<Probe> = (0..40).map(|_| Probe::default()).collect();
    let (mut sim, ring) = cbps_overlay::build_stable(NetConfig::new(17), cfg, apps);
    let space = cfg.space;

    let victim = 13usize;
    sim.crash(victim);

    let targets = cbps_overlay::KeyRangeSet::of_range(
        space,
        cbps_overlay::KeyRange::new(space.key(0), space.key(8191)),
    );
    sim.with_node(2, |node, ctx| {
        node.app_call(ctx, |_, svc| {
            svc.mcast(&targets, TrafficClass::OTHER, 1, TraceId::NONE)
        })
    });
    sim.run();

    // The orphaned arc's branch dies by hop TTL instead of livelocking.
    assert!(sim.metrics().counter("routing.ttl-drop") >= 1);
    // Every alive node must still deliver exactly once; the dead node's
    // arc is absorbed by whoever re-splits after the failed send.
    for (idx, node) in sim.nodes() {
        if idx == victim {
            assert!(node.app().delivered.is_empty());
            continue;
        }
        assert_eq!(
            node.app().delivered.len(),
            1,
            "alive node {idx} delivered {} times",
            node.app().delivered.len()
        );
    }
    let _ = ring;
}

#[test]
fn unicast_routes_around_unannounced_crashes() {
    let cfg = OverlayConfig::paper_default();
    let apps: Vec<Probe> = (0..40).map(|_| Probe::default()).collect();
    let (mut sim, ring) = cbps_overlay::build_stable(NetConfig::new(18), cfg, apps);
    let space = cfg.space;

    // Crash a node, then route to keys covered by OTHER nodes from many
    // sources: paths through the dead node must be repaired on the fly.
    let victim = 7usize;
    let victim_key = sim.node(victim).me().key;
    sim.crash(victim);
    let mut expected_deliveries = 0;
    for i in 0..30u64 {
        let key = space.key(i * 273 + 11);
        let dest = ring.successor(key).idx;
        if dest == victim {
            continue; // its keys are lost without maintenance — fine
        }
        expected_deliveries += 1;
        let src = (i % 40) as usize;
        if src == victim {
            continue;
        }
        sim.with_node(src, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.send(key, TrafficClass::OTHER, i as u32, TraceId::NONE)
            })
        });
    }
    sim.run();
    let delivered: usize = sim.nodes().map(|(_, n)| n.app().delivered.len()).sum();
    // Some sends were skipped when src == victim; allow that slack only.
    assert!(
        delivered + 2 >= expected_deliveries,
        "delivered {delivered} of {expected_deliveries}"
    );
    let _ = victim_key;
}

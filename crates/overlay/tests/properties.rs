//! Property-based tests of the overlay's core invariants: circular
//! interval-set algebra, m-cast partitioning, and greedy routing against
//! the global ring oracle.

use std::collections::BTreeSet;

use cbps_overlay::{
    KeyRange, KeyRangeSet, KeySpace, OverlayConfig, Peer, RingView, RoutingState,
};
use proptest::prelude::*;

/// A naive model of a key set: an explicit `BTreeSet<u64>`.
fn model_of(space: KeySpace, ranges: &[(u64, u64)]) -> BTreeSet<u64> {
    let mut model = BTreeSet::new();
    for &(start, len) in ranges {
        for off in 0..=len {
            model.insert((start + off) & space.max_value());
        }
    }
    model
}

fn set_of(space: KeySpace, ranges: &[(u64, u64)]) -> KeyRangeSet {
    let mut set = KeyRangeSet::new();
    for &(start, len) in ranges {
        let s = space.key(start);
        let e = space.add(s, len);
        set.insert_range(space, KeyRange::new(s, e));
    }
    set
}

proptest! {
    /// KeyRangeSet agrees with the explicit-set model on membership,
    /// cardinality and iteration.
    #[test]
    fn range_set_matches_model(
        ranges in proptest::collection::vec((0u64..256, 0u64..80), 0..8),
        probes in proptest::collection::vec(0u64..256, 0..32),
    ) {
        let space = KeySpace::new(8);
        let set = set_of(space, &ranges);
        let model = model_of(space, &ranges);
        prop_assert_eq!(set.count(), model.len() as u64);
        prop_assert_eq!(set.is_empty(), model.is_empty());
        for p in probes {
            prop_assert_eq!(set.contains(space.key(p)), model.contains(&p), "probe {}", p);
        }
        let iterated: BTreeSet<u64> = set.iter_keys(space).map(|k| k.value()).collect();
        prop_assert_eq!(iterated, model);
    }

    /// extract_arc_oc returns exactly the model subset on the arc.
    #[test]
    fn extract_arc_matches_model(
        ranges in proptest::collection::vec((0u64..256, 0u64..60), 0..6),
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let space = KeySpace::new(8);
        let set = set_of(space, &ranges);
        let model = model_of(space, &ranges);
        let part = set.extract_arc_oc(space, space.key(a), space.key(b));
        let expect: BTreeSet<u64> = model
            .iter()
            .copied()
            .filter(|&x| space.in_arc_oc(space.key(x), space.key(a), space.key(b)))
            .collect();
        let got: BTreeSet<u64> = part.iter_keys(space).map(|k| k.value()).collect();
        prop_assert_eq!(got, expect);
    }

    /// Union is the model union.
    #[test]
    fn union_matches_model(
        ra in proptest::collection::vec((0u64..256, 0u64..60), 0..5),
        rb in proptest::collection::vec((0u64..256, 0u64..60), 0..5),
    ) {
        let space = KeySpace::new(8);
        let mut a = set_of(space, &ra);
        let b = set_of(space, &rb);
        let mut model = model_of(space, &ra);
        model.extend(model_of(space, &rb));
        a.union_with(&b);
        let got: BTreeSet<u64> = a.iter_keys(space).map(|k| k.value()).collect();
        prop_assert_eq!(got, model);
    }

    /// intersects() agrees with the models' disjointness.
    #[test]
    fn intersects_matches_model(
        ra in proptest::collection::vec((0u64..256, 0u64..40), 0..5),
        rb in proptest::collection::vec((0u64..256, 0u64..40), 0..5),
    ) {
        let space = KeySpace::new(8);
        let a = set_of(space, &ra);
        let b = set_of(space, &rb);
        let ma = model_of(space, &ra);
        let mb = model_of(space, &rb);
        prop_assert_eq!(a.intersects(&b), ma.intersection(&mb).next().is_some());
    }
}

/// Builds a converged routing state for every node of a random ring.
fn converged_ring(keys: &[u64]) -> (KeySpace, RingView, Vec<RoutingState>) {
    let space = KeySpace::new(10);
    let cfg = OverlayConfig::paper_default()
        .with_space(space)
        .with_cache_capacity(0);
    let mut unique: Vec<u64> = keys.to_vec();
    unique.sort_unstable();
    unique.dedup();
    let peers: Vec<Peer> = unique
        .iter()
        .enumerate()
        .map(|(idx, &k)| Peer { idx, key: space.key(k) })
        .collect();
    let ring = RingView::new(space, peers.clone());
    let states = peers
        .iter()
        .map(|&me| {
            let mut st = RoutingState::new(cfg, me);
            if peers.len() > 1 {
                st.set_predecessor(Some(ring.predecessor(me.key)));
                st.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
                for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
                    st.set_finger(i, f);
                }
            }
            st
        })
        .collect();
    (space, ring, states)
}

proptest! {
    /// Greedy routing from any node reaches exactly the oracle's covering
    /// node, monotonically shrinking the clockwise distance.
    #[test]
    fn greedy_routing_reaches_oracle_successor(
        keys in proptest::collection::btree_set(0u64..1024, 2..40),
        target in 0u64..1024,
        start_sel in 0usize..1000,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let (space, ring, mut states) = converged_ring(&keys);
        let target = space.key(target);
        let expect = ring.successor(target);
        let mut at = start_sel % states.len();
        let mut hops = 0;
        loop {
            match states[at].next_hop(target) {
                None => break,
                Some(next) => {
                    // Progress: strictly closer to the target (clockwise),
                    // except for the final hop, which lands on the covering
                    // node just *past* the target key.
                    let d_now = space.distance_cw(states[at].me().key, target);
                    let d_next = space.distance_cw(next.key, target);
                    prop_assert!(
                        d_next < d_now || next.idx == expect.idx,
                        "no progress at hop {hops}"
                    );
                    at = next.idx;
                }
            }
            hops += 1;
            prop_assert!(hops <= states.len(), "routing loop");
        }
        prop_assert_eq!(states[at].me().idx, expect.idx);
    }

    /// The m-cast split at any node partitions the target set exactly:
    /// local ∪ bundles = targets, pairwise disjoint, no bundle to self.
    #[test]
    fn mcast_split_is_exact_partition(
        keys in proptest::collection::btree_set(0u64..1024, 1..40),
        ranges in proptest::collection::vec((0u64..1024, 0u64..300), 1..4),
        node_sel in 0usize..1000,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let (space, _ring, states) = converged_ring(&keys);
        let st = &states[node_sel % states.len()];
        let mut targets = KeyRangeSet::new();
        for &(start, len) in &ranges {
            let s = space.key(start);
            targets.insert_range(space, KeyRange::new(s, space.add(s, len)));
        }
        let (local, bundles) = st.mcast_split(&targets);
        let mut union = local.clone();
        let mut total = local.count();
        for (peer, subset) in &bundles {
            prop_assert!(peer.key != st.me().key, "bundle addressed to self");
            prop_assert!(!subset.is_empty(), "empty bundle");
            prop_assert!(!union.intersects(subset), "overlapping split");
            union.union_with(subset);
            total += subset.count();
        }
        prop_assert_eq!(total, targets.count());
        prop_assert_eq!(union, targets);
        // The local part is within our coverage.
        if let Some(pred) = st.predecessor() {
            let cover = local.extract_arc_oc(space, pred.key, st.me().key);
            prop_assert_eq!(cover, local);
        }
    }
}

//! Property-style tests of the overlay's core invariants: circular
//! interval-set algebra, m-cast partitioning, and greedy routing against
//! the global ring oracle.
//!
//! These were originally `proptest` suites; they are now plain seeded
//! loops over `cbps-rng` so the workspace tests with zero external
//! crates. Each case count matches or exceeds the old proptest defaults,
//! and the seed is fixed so failures reproduce exactly.

use std::collections::BTreeSet;

use cbps_overlay::{KeyRange, KeyRangeSet, KeySpace, OverlayConfig, Peer, RingView, RoutingState};
use cbps_rng::Rng;

/// A naive model of a key set: an explicit `BTreeSet<u64>`.
fn model_of(space: KeySpace, ranges: &[(u64, u64)]) -> BTreeSet<u64> {
    let mut model = BTreeSet::new();
    for &(start, len) in ranges {
        for off in 0..=len {
            model.insert((start + off) & space.max_value());
        }
    }
    model
}

fn set_of(space: KeySpace, ranges: &[(u64, u64)]) -> KeyRangeSet {
    let mut set = KeyRangeSet::new();
    for &(start, len) in ranges {
        let s = space.key(start);
        let e = space.add(s, len);
        set.insert_range(space, KeyRange::new(s, e));
    }
    set
}

/// Draws a random list of `(start, len)` range seeds.
fn random_ranges(rng: &mut Rng, max_count: usize, start_max: u64, len_max: u64) -> Vec<(u64, u64)> {
    let count = rng.gen_range(0..=max_count);
    (0..count)
        .map(|_| (rng.gen_range(0..start_max), rng.gen_range(0..len_max)))
        .collect()
}

/// KeyRangeSet agrees with the explicit-set model on membership,
/// cardinality and iteration.
#[test]
fn range_set_matches_model() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a1);
    let space = KeySpace::new(8);
    for case in 0..512 {
        let ranges = random_ranges(&mut rng, 7, 256, 80);
        let set = set_of(space, &ranges);
        let model = model_of(space, &ranges);
        assert_eq!(set.count(), model.len() as u64, "case {case}: count");
        assert_eq!(set.is_empty(), model.is_empty(), "case {case}: emptiness");
        for _ in 0..32 {
            let p = rng.gen_range(0u64..256);
            assert_eq!(
                set.contains(space.key(p)),
                model.contains(&p),
                "case {case}: probe {p}"
            );
        }
        let iterated: BTreeSet<u64> = set.iter_keys(space).map(|k| k.value()).collect();
        assert_eq!(iterated, model, "case {case}: iteration");
    }
}

/// extract_arc_oc returns exactly the model subset on the arc.
#[test]
fn extract_arc_matches_model() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a2);
    let space = KeySpace::new(8);
    for case in 0..512 {
        let ranges = random_ranges(&mut rng, 5, 256, 60);
        let a = rng.gen_range(0u64..256);
        let b = rng.gen_range(0u64..256);
        let set = set_of(space, &ranges);
        let model = model_of(space, &ranges);
        let part = set.extract_arc_oc(space, space.key(a), space.key(b));
        let expect: BTreeSet<u64> = model
            .iter()
            .copied()
            .filter(|&x| space.in_arc_oc(space.key(x), space.key(a), space.key(b)))
            .collect();
        let got: BTreeSet<u64> = part.iter_keys(space).map(|k| k.value()).collect();
        assert_eq!(got, expect, "case {case}: arc ({a}, {b}]");
    }
}

/// Union is the model union.
#[test]
fn union_matches_model() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a3);
    let space = KeySpace::new(8);
    for case in 0..512 {
        let ra = random_ranges(&mut rng, 4, 256, 60);
        let rb = random_ranges(&mut rng, 4, 256, 60);
        let mut a = set_of(space, &ra);
        let b = set_of(space, &rb);
        let mut model = model_of(space, &ra);
        model.extend(model_of(space, &rb));
        a.union_with(&b);
        let got: BTreeSet<u64> = a.iter_keys(space).map(|k| k.value()).collect();
        assert_eq!(got, model, "case {case}");
    }
}

/// intersects() agrees with the models' disjointness.
#[test]
fn intersects_matches_model() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a4);
    let space = KeySpace::new(8);
    for case in 0..512 {
        let ra = random_ranges(&mut rng, 4, 256, 40);
        let rb = random_ranges(&mut rng, 4, 256, 40);
        let a = set_of(space, &ra);
        let b = set_of(space, &rb);
        let ma = model_of(space, &ra);
        let mb = model_of(space, &rb);
        assert_eq!(
            a.intersects(&b),
            ma.intersection(&mb).next().is_some(),
            "case {case}"
        );
    }
}

/// Builds a converged routing state for every node of a random ring.
fn converged_ring(keys: &[u64]) -> (KeySpace, RingView, Vec<RoutingState>) {
    let space = KeySpace::new(10);
    let cfg = OverlayConfig::paper_default()
        .with_space(space)
        .with_cache_capacity(0);
    let mut unique: Vec<u64> = keys.to_vec();
    unique.sort_unstable();
    unique.dedup();
    let peers: Vec<Peer> = unique
        .iter()
        .enumerate()
        .map(|(idx, &k)| Peer {
            idx,
            key: space.key(k),
        })
        .collect();
    let ring = RingView::new(space, peers.clone());
    let states = peers
        .iter()
        .map(|&me| {
            let mut st = RoutingState::new(cfg, me);
            if peers.len() > 1 {
                st.set_predecessor(Some(ring.predecessor(me.key)));
                st.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
                for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
                    st.set_finger(i, f);
                }
            }
            st
        })
        .collect();
    (space, ring, states)
}

/// Draws a random de-duplicated key set of size within `lo..hi`.
fn random_keys(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u64> {
    let want = rng.gen_range(lo..hi);
    let mut set = BTreeSet::new();
    // Oversample: duplicates collapse, mirroring the old btree_set strategy.
    for _ in 0..want * 2 {
        if set.len() >= want {
            break;
        }
        set.insert(rng.gen_range(0u64..1024));
    }
    set.into_iter().collect()
}

/// Greedy routing from any node reaches exactly the oracle's covering
/// node, monotonically shrinking the clockwise distance.
#[test]
fn greedy_routing_reaches_oracle_successor() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a5);
    for case in 0..256 {
        let keys = random_keys(&mut rng, 2, 40);
        let target = rng.gen_range(0u64..1024);
        let start_sel = rng.gen_range(0usize..1000);
        let (space, ring, mut states) = converged_ring(&keys);
        let target = space.key(target);
        let expect = ring.successor(target);
        let mut at = start_sel % states.len();
        let mut hops = 0;
        loop {
            match states[at].next_hop(target) {
                None => break,
                Some(next) => {
                    // Progress: strictly closer to the target (clockwise),
                    // except for the final hop, which lands on the covering
                    // node just *past* the target key.
                    let d_now = space.distance_cw(states[at].me().key, target);
                    let d_next = space.distance_cw(next.key, target);
                    assert!(
                        d_next < d_now || next.idx == expect.idx,
                        "case {case}: no progress at hop {hops}"
                    );
                    at = next.idx;
                }
            }
            hops += 1;
            assert!(hops <= states.len(), "case {case}: routing loop");
        }
        assert_eq!(states[at].me().idx, expect.idx, "case {case}");
    }
}

/// The m-cast split at any node partitions the target set exactly:
/// local ∪ bundles = targets, pairwise disjoint, no bundle to self.
#[test]
fn mcast_split_is_exact_partition() {
    let mut rng = Rng::seed_from_u64(0x0005_e7a6);
    for case in 0..256 {
        let keys = random_keys(&mut rng, 1, 40);
        let range_count = rng.gen_range(1usize..4);
        let ranges: Vec<(u64, u64)> = (0..range_count)
            .map(|_| (rng.gen_range(0u64..1024), rng.gen_range(0u64..300)))
            .collect();
        let node_sel = rng.gen_range(0usize..1000);
        let (space, _ring, states) = converged_ring(&keys);
        let st = &states[node_sel % states.len()];
        let mut targets = KeyRangeSet::new();
        for &(start, len) in &ranges {
            let s = space.key(start);
            targets.insert_range(space, KeyRange::new(s, space.add(s, len)));
        }
        let (local, bundles) = st.mcast_split(&targets);
        let mut union = local.clone();
        let mut total = local.count();
        for (peer, subset) in bundles.iter() {
            assert!(
                peer.key != st.me().key,
                "case {case}: bundle addressed to self"
            );
            assert!(!subset.is_empty(), "case {case}: empty bundle");
            assert!(!union.intersects(subset), "case {case}: overlapping split");
            union.union_with(subset);
            total += subset.count();
        }
        assert_eq!(total, targets.count(), "case {case}: total");
        assert_eq!(union, targets, "case {case}: union");
        // The local part is within our coverage.
        if let Some(pred) = st.predecessor() {
            let cover = local.extract_arc_oc(space, pred.key, st.me().key);
            assert_eq!(cover, local, "case {case}: local outside coverage");
        }
    }
}

/// Minimal app for full-network deployment builds.
#[derive(Default)]
struct Null;

impl cbps_overlay::OverlayApp for Null {
    type Payload = u64;
    type Timer = ();
    fn on_deliver(
        &mut self,
        _payload: u64,
        _delivery: cbps_overlay::Delivery,
        _svc: &mut dyn cbps_overlay::OverlayServices<u64, ()>,
    ) {
    }
}

/// The batched deployment build path (`build_stable` with the shared
/// sorted-key table and the O(n*m) finger grid) agrees with the per-node
/// `RingView` oracle on every predecessor, successor list, and finger —
/// at n = 10^4 in a widened key space, the regime `--scale large` runs
/// in.
#[test]
fn large_ring_build_matches_oracle() {
    let n = 10_000;
    let space = KeySpace::new(16);
    let cfg = OverlayConfig::paper_default().with_space(space);
    let apps: Vec<Null> = (0..n).map(|_| Null).collect();
    let (sim, ring) = cbps_overlay::build_stable(cbps_sim::NetConfig::new(9), cfg, apps);
    assert_eq!(ring.len(), n);
    for (idx, node) in sim.nodes() {
        let me = node.me();
        assert_eq!(me.idx, idx);
        let st = node.routing();
        assert_eq!(
            st.predecessor().unwrap(),
            ring.predecessor(me.key),
            "predecessor of node {idx}"
        );
        assert_eq!(
            st.successors(),
            ring.successors_of(me.key, cfg.succ_list_len),
            "successor list of node {idx}"
        );
        for (i, f) in st.fingers().enumerate() {
            let expect = ring.successor(space.finger_target(me.key, i as u32));
            if expect.key == me.key {
                assert_eq!(f, None, "finger {i} of node {idx}");
            } else {
                assert_eq!(f, Some(expect), "finger {i} of node {idx}");
            }
        }
    }
}

/// Parallel construction is indistinguishable from serial: the routing
/// states produced at any worker count are identical, field for field.
#[test]
fn parallel_build_matches_serial() {
    let space = KeySpace::new(14);
    let cfg = OverlayConfig::paper_default().with_space(space);
    let keys = cbps_overlay::assign_node_keys(&cfg, 3_000);
    let peers: Vec<Peer> = keys
        .into_iter()
        .enumerate()
        .map(|(idx, key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(space, peers);
    type StateDigest = (Option<Peer>, Vec<Peer>, Vec<Option<Peer>>);
    let digest = |states: &[RoutingState]| -> Vec<StateDigest> {
        states
            .iter()
            .map(|st| {
                (
                    st.predecessor(),
                    st.successors().to_vec(),
                    st.fingers().collect(),
                )
            })
            .collect()
    };
    cbps_overlay::set_build_jobs(1);
    let serial = cbps_overlay::build_routing_states(&cfg, &ring);
    cbps_overlay::set_build_jobs(4);
    let parallel = cbps_overlay::build_routing_states(&cfg, &ring);
    cbps_overlay::set_build_jobs(1);
    assert_eq!(digest(&serial), digest(&parallel));
}

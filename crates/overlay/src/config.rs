//! Overlay configuration.

use cbps_sim::SimDuration;

use crate::key::KeySpace;

/// Configuration shared by every node of a Chord overlay.
///
/// # Examples
///
/// ```
/// use cbps_overlay::OverlayConfig;
///
/// let cfg = OverlayConfig::paper_default();
/// assert_eq!(cfg.space.bits(), 13);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayConfig {
    /// The `m`-bit identifier space.
    pub space: KeySpace,
    /// Length of each node's successor list (fault tolerance of the ring).
    pub succ_list_len: usize,
    /// Capacity of the location cache used to accelerate routing
    /// ("finger caching", §5.1). Zero disables the cache.
    pub cache_capacity: usize,
    /// Whether nodes run the periodic stabilization protocol. Bootstrapped
    /// stable rings (the experiments) leave this off; churn scenarios turn
    /// it on.
    pub maintenance: bool,
    /// Period of the stabilize / successor-list refresh timer.
    pub stabilize_period: SimDuration,
    /// Period of the finger-fixing timer (one finger refreshed per fire).
    pub fix_fingers_period: SimDuration,
    /// Routed messages are dropped after this many one-hop transmissions.
    /// Greedy routing needs `O(log n)` hops on a converged ring; the TTL
    /// only matters while the ring is damaged (it converts orphaned-arc
    /// routing cycles into counted drops instead of livelock).
    pub max_route_hops: u32,
}

impl OverlayConfig {
    /// The configuration used throughout the paper's evaluation: a `2^13`
    /// key space, a location cache sized to reproduce the reported ≈ 2.5
    /// average lookup hops at n = 500 (calibrated in EXPERIMENTS.md: 256
    /// entries give 2.6 warm-cache hops), and no background maintenance
    /// (the experiments run on a converged ring).
    pub fn paper_default() -> Self {
        OverlayConfig {
            space: KeySpace::new(13),
            succ_list_len: 4,
            cache_capacity: 256,
            maintenance: false,
            stabilize_period: SimDuration::from_millis(500),
            fix_fingers_period: SimDuration::from_millis(250),
            max_route_hops: 64,
        }
    }

    /// Replaces the key space.
    pub fn with_space(mut self, space: KeySpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the location-cache capacity (zero disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables or disables periodic ring maintenance.
    pub fn with_maintenance(mut self, on: bool) -> Self {
        self.maintenance = on;
        self
    }

    /// Replaces the successor-list length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero: a node always needs its immediate successor.
    pub fn with_succ_list_len(mut self, len: usize) -> Self {
        assert!(len > 0, "successor list must hold at least one entry");
        self.succ_list_len = len;
        self
    }
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = OverlayConfig::default();
        assert_eq!(cfg.space.size(), 8192);
        assert!(!cfg.maintenance);
        assert!(cfg.cache_capacity > 0);
    }

    #[test]
    fn builders_chain() {
        let cfg = OverlayConfig::paper_default()
            .with_space(KeySpace::new(8))
            .with_cache_capacity(0)
            .with_maintenance(true)
            .with_succ_list_len(2);
        assert_eq!(cfg.space.bits(), 8);
        assert_eq!(cfg.cache_capacity, 0);
        assert!(cfg.maintenance);
        assert_eq!(cfg.succ_list_len, 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn succ_list_len_validated() {
        let _ = OverlayConfig::paper_default().with_succ_list_len(0);
    }
}

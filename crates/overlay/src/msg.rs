//! Wire messages of the Chord overlay.
//!
//! Every message travels inside an [`Envelope`] stamping the immediate
//! sender's identity, which receivers feed to their location cache (the
//! "finger caching" of §5.1). Application payloads are generic: the overlay
//! routes them without inspecting them.

use std::sync::Arc;

use cbps_sim::{TraceId, TrafficClass};

use crate::key::Key;
use crate::range::{KeyRange, KeyRangeSet};
use crate::ring::Peer;

/// A message plus the identity of the node that transmitted this hop.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<P> {
    /// The node that performed this one-hop transmission (not necessarily
    /// the originator).
    pub sender: Peer,
    /// The message itself.
    pub body: OverlayMsg<P>,
}

/// The overlay protocol messages.
///
/// `Unicast`, `MCast` and `Walk` carry application payloads; the remaining
/// variants implement ring maintenance (join, stabilization, finger repair,
/// liveness).
#[derive(Clone, Debug, PartialEq)]
pub enum OverlayMsg<P> {
    /// Key-routed payload: the overlay's standard `send(m, k)` primitive.
    Unicast {
        /// Destination key; delivered at the node covering it.
        key: Key,
        /// Traffic class used to count every hop of this message.
        class: TrafficClass,
        /// Application payload, shared so every hop and branch bumps a
        /// reference count instead of deep-copying.
        payload: Arc<P>,
        /// One-hop transmissions so far (delivery dilation).
        hops: u32,
        /// The originating node.
        src: Peer,
        /// Causal trace of the application operation that sent this
        /// ([`TraceId::NONE`] for untraced traffic).
        trace: TraceId,
    },
    /// The paper's `m-cast(M, K)` primitive (Figure 4): key-set multicast
    /// with finger-wise recursive splitting.
    MCast {
        /// The subset of target keys this branch is responsible for.
        targets: KeyRangeSet,
        /// Traffic class used to count every hop of this message.
        class: TrafficClass,
        /// Application payload, shared across the branches of the split.
        payload: Arc<P>,
        /// One-hop transmissions so far on this branch.
        hops: u32,
        /// The originating node.
        src: Peer,
        /// Causal trace of the application operation that sent this
        /// ([`TraceId::NONE`] for untraced traffic).
        trace: TraceId,
    },
    /// Conservative unicast range propagation (§4.3.1): routed to the first
    /// key of the range, then walked successor-by-successor.
    Walk {
        /// The full target range being walked.
        range: KeyRange,
        /// Traffic class used to count every hop of this message.
        class: TrafficClass,
        /// Application payload, shared along the walk.
        payload: Arc<P>,
        /// One-hop transmissions so far.
        hops: u32,
        /// The originating node.
        src: Peer,
        /// `false` while still routing toward `range.start()`, `true` once
        /// walking the ring.
        walking: bool,
        /// Causal trace of the application operation that sent this
        /// ([`TraceId::NONE`] for untraced traffic).
        trace: TraceId,
    },
    /// One-hop application message to a known peer (used by the
    /// notification-collecting protocol and state transfer).
    Direct {
        /// Application payload.
        payload: Arc<P>,
        /// Traffic class the hop was counted under.
        class: TrafficClass,
    },

    // --- Ring maintenance ---
    /// Recursive lookup of `successor(target)`; the covering node answers
    /// `reply_to` directly with [`OverlayMsg::FindSuccReply`].
    FindSucc {
        /// The key whose successor is sought.
        target: Key,
        /// Who to answer.
        reply_to: Peer,
        /// Correlation token chosen by the requester.
        token: u64,
        /// One-hop transmissions so far.
        hops: u32,
    },
    /// Answer to [`OverlayMsg::FindSucc`].
    FindSuccReply {
        /// Correlation token from the request.
        token: u64,
        /// The covering node.
        succ: Peer,
        /// Hops the request took to reach the covering node.
        hops: u32,
    },
    /// Stabilization: ask a node for its predecessor and successor list.
    GetPred,
    /// Answer to [`OverlayMsg::GetPred`].
    GetPredReply {
        /// The answering node's current predecessor.
        pred: Option<Peer>,
        /// The answering node's successor list.
        succ_list: Vec<Peer>,
    },
    /// Stabilization: tell a node we believe we are its predecessor.
    Notify {
        /// The claiming node.
        peer: Peer,
    },
    /// Graceful departure: `leaving` is quitting; `replacement` is the
    /// neighbor that should take its place in the receiver's view.
    LeaveNotice {
        /// The departing node.
        leaving: Peer,
        /// Its neighbor on the other side.
        replacement: Peer,
    },
    /// Liveness probe.
    Ping {
        /// Correlation token.
        token: u64,
    },
    /// Liveness answer.
    Pong {
        /// Correlation token from the probe.
        token: u64,
    },
}

/// Takes an application payload out of its shared wrapper: zero-copy when
/// this is the last live reference (the common unicast case), one deep
/// clone when sibling branches are still in flight.
#[inline]
pub fn take_payload<P: Clone>(rc: Arc<P>) -> P {
    Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone())
}

impl<P> OverlayMsg<P> {
    /// The traffic class this message should be accounted under when
    /// transmitted (maintenance for all non-payload messages).
    pub fn class(&self) -> TrafficClass {
        match self {
            OverlayMsg::Unicast { class, .. }
            | OverlayMsg::MCast { class, .. }
            | OverlayMsg::Walk { class, .. }
            | OverlayMsg::Direct { class, .. } => *class,
            _ => TrafficClass::MAINTENANCE,
        }
    }

    /// The causal trace this message carries ([`TraceId::NONE`] for
    /// maintenance and direct messages, whose items carry their own).
    pub fn trace(&self) -> TraceId {
        match self {
            OverlayMsg::Unicast { trace, .. }
            | OverlayMsg::MCast { trace, .. }
            | OverlayMsg::Walk { trace, .. } => *trace,
            _ => TraceId::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeySpace;

    #[test]
    fn take_payload_avoids_copy_when_sole_owner() {
        let rc = Arc::new(vec![1u8, 2, 3]);
        let out = take_payload(rc);
        assert_eq!(out, vec![1, 2, 3]);
        let shared = Arc::new(7u32);
        let other = Arc::clone(&shared);
        assert_eq!(take_payload(shared), 7);
        assert_eq!(*other, 7);
    }

    #[test]
    fn class_of_payload_and_maintenance_msgs() {
        let s = KeySpace::new(5);
        let src = Peer {
            idx: 0,
            key: s.key(1),
        };
        let m: OverlayMsg<u8> = OverlayMsg::Unicast {
            key: s.key(3),
            class: TrafficClass::PUBLICATION,
            payload: Arc::new(9),
            hops: 0,
            src,
            trace: TraceId::for_publication(0, 1),
        };
        assert_eq!(m.class(), TrafficClass::PUBLICATION);
        assert_eq!(m.trace(), TraceId::for_publication(0, 1));
        let g: OverlayMsg<u8> = OverlayMsg::GetPred;
        assert_eq!(g.class(), TrafficClass::MAINTENANCE);
        let p: OverlayMsg<u8> = OverlayMsg::Ping { token: 7 };
        assert_eq!(p.class(), TrafficClass::MAINTENANCE);
    }
}

//! SHA-1 and consistent-hashing helpers.
//!
//! Chord assigns node and key identifiers with consistent hashing over
//! SHA-1 (§3.1.1 of the paper). No SHA-1 crate is available offline, so the
//! digest is implemented here from the FIPS 180-1 specification; it is used
//! only for identifier placement, not for security.

use crate::key::{Key, KeySpace};

/// Computes the SHA-1 digest of `data`.
///
/// # Examples
///
/// ```
/// use cbps_overlay::hash::sha1;
///
/// let digest = sha1(b"abc");
/// assert_eq!(digest[0], 0xa9);
/// assert_eq!(digest[19], 0x9d);
/// ```
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    let bit_len = (data.len() as u64).wrapping_mul(8);

    if data.len() <= 55 {
        // One-block fast path: the message plus 0x80 plus the 8-byte length
        // fits a single 64-byte block, so padding happens on the stack. Key
        // assignment hashes short node names, which all land here.
        let mut block = [0u8; 64];
        block[..data.len()].copy_from_slice(data);
        block[data.len()] = 0x80;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        sha1_block(&mut h, &block);
    } else {
        // Pad: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            sha1_block(&mut h, block.try_into().expect("exact 64-byte chunk"));
        }
        let tail = chunks.remainder();
        let mut block = [0u8; 64];
        block[..tail.len()].copy_from_slice(tail);
        block[tail.len()] = 0x80;
        if tail.len() <= 55 {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
            sha1_block(&mut h, &block);
        } else {
            sha1_block(&mut h, &block);
            let mut last = [0u8; 64];
            last[56..].copy_from_slice(&bit_len.to_be_bytes());
            sha1_block(&mut h, &last);
        }
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One 64-byte block of the FIPS 180-1 compression function.
fn sha1_block(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A827999),
            20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Hashes arbitrary bytes onto the ring: the top 64 bits of SHA-1, reduced
/// to the key space. This is Chord's consistent hash for node identifiers.
///
/// # Examples
///
/// ```
/// use cbps_overlay::{hash::key_of_bytes, KeySpace};
///
/// let s = KeySpace::new(13);
/// let k = key_of_bytes(s, b"node-42");
/// assert!(k.value() < s.size());
/// assert_eq!(k, key_of_bytes(s, b"node-42")); // deterministic
/// ```
pub fn key_of_bytes(space: KeySpace, data: &[u8]) -> Key {
    let digest = sha1(data);
    let mut top = [0u8; 8];
    top.copy_from_slice(&digest[..8]);
    space.key(u64::from_be_bytes(top))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding edges must not panic and
        // must be deterministic.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![0xAB; len];
            assert_eq!(sha1(&data), sha1(&data));
        }
    }

    #[test]
    fn keys_are_in_space_and_spread() {
        let s = KeySpace::new(13);
        let mut buckets = [0u32; 8];
        for i in 0..4000 {
            let k = key_of_bytes(s, format!("node-{i}").as_bytes());
            assert!(k.value() < s.size());
            buckets[(k.value() * 8 / s.size()) as usize] += 1;
        }
        // Uniformity smoke test: each octant holds a reasonable share.
        for &b in &buckets {
            assert!(b > 300, "octant underfilled: {buckets:?}");
        }
    }
}

//! Thread-local scratch pools for the routing hot path.
//!
//! The m-cast split runs once per hop of every multicast message — on the
//! figures workloads that is millions of calls — and naively needs two
//! temporary vectors per call: the sorted boundary-peer list and the
//! per-relay bundle list. Both are recycled here through small
//! thread-local free lists, so a steady-state split performs no heap
//! allocation at all (the bundle sets themselves are inline-first
//! [`KeyRangeSet`]s whose rare spill buffers are pooled in
//! [`crate::range`]).
//!
//! The types are safe plain wrappers around `Vec`: dropping one clears it
//! (running the members' own recycling `Drop`s) and pushes the storage
//! back onto the current thread's free list. Each simulator shard owns its
//! nodes and runs them on one thread at a time, so thread-local pooling
//! needs no synchronization.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use crate::range::KeyRangeSet;
use crate::ring::Peer;

/// Buffers kept per pool per thread. Splits are not recursive, so in
/// practice one or two buffers circulate; the cap only bounds pathological
/// callers that leak many at once.
const POOL_CAP: usize = 16;

thread_local! {
    static BUNDLES: RefCell<Vec<Vec<(Peer, KeyRangeSet)>>> = const { RefCell::new(Vec::new()) };
    static PEERS: RefCell<Vec<Vec<Peer>>> = const { RefCell::new(Vec::new()) };
}

/// The per-relay bundles produced by a `mcast_split`: recycled `Vec`
/// storage behind a `Deref` to `Vec<(Peer, KeyRangeSet)>`.
///
/// Consume it with `drain(..)` (or iterate by reference); dropping it —
/// drained or not — returns the buffer to the thread's pool.
#[derive(Debug, Default)]
pub struct Bundles(Vec<(Peer, KeyRangeSet)>);

impl Bundles {
    /// An empty bundle list, reusing pooled storage when available.
    pub fn take() -> Self {
        Bundles(BUNDLES.with(|p| p.borrow_mut().pop()).unwrap_or_default())
    }
}

impl Deref for Bundles {
    type Target = Vec<(Peer, KeyRangeSet)>;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for Bundles {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl Drop for Bundles {
    fn drop(&mut self) {
        // Clearing drops the member range sets, which recycle their own
        // spill buffers; then the container itself goes back to the pool.
        self.0.clear();
        if self.0.capacity() == 0 {
            return;
        }
        let v = std::mem::take(&mut self.0);
        BUNDLES.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < POOL_CAP {
                p.push(v);
            }
        });
    }
}

/// A pooled scratch list of peers (the sorted boundary set of a split).
#[derive(Debug, Default)]
pub struct PeerBuf(Vec<Peer>);

impl PeerBuf {
    /// An empty peer list, reusing pooled storage when available.
    pub fn take() -> Self {
        PeerBuf(PEERS.with(|p| p.borrow_mut().pop()).unwrap_or_default())
    }
}

impl Deref for PeerBuf {
    type Target = Vec<Peer>;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for PeerBuf {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl Drop for PeerBuf {
    fn drop(&mut self) {
        self.0.clear();
        if self.0.capacity() == 0 {
            return;
        }
        let v = std::mem::take(&mut self.0);
        PEERS.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < POOL_CAP {
                p.push(v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeySpace;

    #[test]
    fn bundles_recycle_storage() {
        let space = KeySpace::new(5);
        let peer = Peer {
            idx: 3,
            key: space.key(7),
        };
        let cap = {
            let mut b = Bundles::take();
            for _ in 0..10 {
                b.push((peer, KeyRangeSet::full(space)));
            }
            let cap = b.capacity();
            assert!(cap >= 10);
            cap
        }; // dropped → pooled
        let b = Bundles::take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "storage was not recycled");
    }

    #[test]
    fn peer_buf_recycles_storage() {
        let space = KeySpace::new(5);
        let peer = Peer {
            idx: 0,
            key: space.key(1),
        };
        let cap = {
            let mut b = PeerBuf::take();
            for _ in 0..20 {
                b.push(peer);
            }
            b.capacity()
        };
        let b = PeerBuf::take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "storage was not recycled");
    }
}

//! The Chord node: ring maintenance and the bridge to the application
//! layered on top. Routed payload handling (unicast, `m-cast`, walks)
//! lives in the overlay-neutral [`crate::routed`] module; this file is
//! the Chord-specific remainder — join, stabilization, finger repair,
//! failure handling.

use std::collections::HashMap;

use cbps_sim::{Context, Node, NodeIdx};

use crate::app::{OverlayApp, OverlaySvc};
use crate::key::Key;
use crate::msg::{Envelope, OverlayMsg};
use crate::ring::Peer;
use crate::routed;
use crate::services::OverlayServices;
use crate::state::RoutingState;
use crate::timer::OverlayTimer;

/// What an outstanding correlation token is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    /// Initial join lookup of our own successor.
    Join,
    /// Repairing finger `i`.
    Finger(usize),
    /// A measurement lookup started with [`ChordNode::start_lookup`].
    Probe,
    /// A liveness ping to the given peer.
    Ping(Peer),
}

/// A Chord overlay node hosting an application.
///
/// Implements [`cbps_sim::Node`]; all protocol behaviour happens in the
/// message/timer upcalls. The hosted [`OverlayApp`] is reached through
/// [`ChordNode::app`]/[`ChordNode::app_call`].
#[derive(Debug)]
pub struct ChordNode<A: OverlayApp> {
    state: RoutingState,
    app: A,
    pending: HashMap<u64, Pending>,
    next_token: u64,
    next_finger: usize,
    /// Consecutive stabilize rounds the successor failed to answer.
    succ_missed: u32,
}

impl<A: OverlayApp> ChordNode<A> {
    /// Creates a node that is not yet part of any ring.
    pub fn new(state: RoutingState, app: A) -> Self {
        ChordNode {
            state,
            app,
            pending: HashMap::new(),
            next_token: 0,
            next_finger: 0,
            succ_missed: 0,
        }
    }

    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.state.me()
    }

    /// The routing state (neighbors, fingers, cache) for inspection.
    pub fn routing(&self) -> &RoutingState {
        &self.state
    }

    /// Exclusive access to the routing state (test setup / bootstrap).
    pub fn routing_mut(&mut self) -> &mut RoutingState {
        &mut self.state
    }

    /// The hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Exclusive access to the hosted application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Runs an application-level call with a live [`OverlaySvc`] — the way
    /// external drivers invoke `sub()` / `pub()` on a node.
    pub fn app_call<R>(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
        f: impl FnOnce(&mut A, &mut dyn OverlayServices<A::Payload, A::Timer>) -> R,
    ) -> R {
        let mut svc = OverlaySvc::new(&mut self.state, ctx);
        f(&mut self.app, &mut svc)
    }

    /// Arms the periodic maintenance timers (call once per node when
    /// maintenance is enabled).
    pub fn start_maintenance(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        let cfg = *self.state.config();
        ctx.arm_timer(cfg.stabilize_period, OverlayTimer::Stabilize);
        ctx.arm_timer(cfg.fix_fingers_period, OverlayTimer::FixFingers);
    }

    /// Starts joining the ring through `bootstrap` (an existing member).
    /// Completion is asynchronous; stabilization then integrates the node.
    pub fn start_join(
        &mut self,
        bootstrap: Peer,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        let token = self.claim_token(Pending::Join);
        let me = self.state.me();
        self.send_body(
            ctx,
            bootstrap.idx,
            OverlayMsg::FindSucc {
                target: me.key,
                reply_to: me,
                token,
                hops: 1,
            },
        );
    }

    /// Starts a measurement lookup of `successor(target)`; the path length
    /// is recorded in the `lookup.hops` histogram when the reply arrives.
    /// Used to calibrate the location cache against the paper's reported
    /// ≈ 2.5 average hops (§5.1).
    pub fn start_lookup(
        &mut self,
        target: Key,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        if self.state.covers(target) {
            ctx.metrics().histogram_mut("lookup.hops").record(0);
            return;
        }
        let token = self.claim_token(Pending::Probe);
        let me = self.state.me();
        let msg = OverlayMsg::FindSucc {
            target,
            reply_to: me,
            token,
            hops: 1,
        };
        match self.state.next_hop(target) {
            None => {
                // covers() said no but routing found nothing better: alone.
                self.pending.remove(&token);
                ctx.metrics().histogram_mut("lookup.hops").record(0);
            }
            Some(hop) => self.send_body(ctx, hop.idx, msg),
        }
    }

    /// Leaves the ring gracefully: lets the application push its state,
    /// then links predecessor and successor to each other. The caller
    /// should crash the node in the simulator afterwards.
    pub fn start_leave(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        {
            let mut svc = OverlaySvc::new(&mut self.state, ctx);
            self.app.on_leaving(&mut svc);
        }
        let me = self.state.me();
        if let (Some(pred), Some(succ)) = (self.state.predecessor(), self.state.successor()) {
            self.send_body(
                ctx,
                pred.idx,
                OverlayMsg::LeaveNotice {
                    leaving: me,
                    replacement: succ,
                },
            );
            self.send_body(
                ctx,
                succ.idx,
                OverlayMsg::LeaveNotice {
                    leaving: me,
                    replacement: pred,
                },
            );
        }
    }

    fn claim_token(&mut self, purpose: Pending) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, purpose);
        t
    }

    fn send_body(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
        to: NodeIdx,
        body: OverlayMsg<A::Payload>,
    ) {
        let class = body.class();
        let me = self.state.me();
        ctx.send(to, class, Envelope { sender: me, body });
    }

    fn set_predecessor_with_hook(
        &mut self,
        new: Option<Peer>,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        let old = self.state.predecessor();
        if old == new {
            return;
        }
        self.state.set_predecessor(new);
        let mut svc = OverlaySvc::new(&mut self.state, ctx);
        self.app.on_predecessor_changed(old, new, &mut svc);
    }

    fn handle_find_succ(
        &mut self,
        target: Key,
        reply_to: Peer,
        token: u64,
        hops: u32,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        if routed::ttl_exceeded::<RoutingState, A>(&self.state, hops, ctx) {
            return;
        }
        match self.state.next_hop(target) {
            None => {
                let me = self.state.me();
                self.send_body(
                    ctx,
                    reply_to.idx,
                    OverlayMsg::FindSuccReply {
                        token,
                        succ: me,
                        hops,
                    },
                );
            }
            Some(hop) => self.send_body(
                ctx,
                hop.idx,
                OverlayMsg::FindSucc {
                    target,
                    reply_to,
                    token,
                    hops: hops + 1,
                },
            ),
        }
    }

    fn handle_find_succ_reply(
        &mut self,
        token: u64,
        succ: Peer,
        hops: u32,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        self.state.learn(succ);
        match self.pending.remove(&token) {
            Some(Pending::Join) => {
                self.state.set_successors(vec![succ]);
                // Announce ourselves so stabilization can integrate us.
                let me = self.state.me();
                self.send_body(ctx, succ.idx, OverlayMsg::Notify { peer: me });
                if self.state.config().maintenance {
                    self.start_maintenance(ctx);
                }
            }
            Some(Pending::Finger(i)) => {
                self.state.set_finger(i, succ);
            }
            Some(Pending::Probe) => {
                ctx.metrics()
                    .histogram_mut("lookup.hops")
                    .record(u64::from(hops));
            }
            Some(Pending::Ping(_)) | None => {}
        }
    }

    fn handle_stabilize(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        let cfg = *self.state.config();
        if let Some(succ) = self.state.successor() {
            if self.succ_missed >= 2 {
                // Successor unresponsive: fail over to the next in the list.
                self.state.forget(succ);
                self.succ_missed = 0;
            }
        }
        if let Some(succ) = self.state.successor() {
            self.succ_missed += 1; // cleared by the GetPredReply
            self.send_body(ctx, succ.idx, OverlayMsg::GetPred);
        }
        // Probe the predecessor; an unanswered probe clears it so that the
        // true predecessor's next Notify can take its place (and our app is
        // told it now covers the dead node's arc).
        if let Some(pred) = self.state.predecessor() {
            let token = self.claim_token(Pending::Ping(pred));
            self.send_body(ctx, pred.idx, OverlayMsg::Ping { token });
            ctx.arm_timer(
                cfg.stabilize_period / 2,
                OverlayTimer::ProbeTimeout { token },
            );
        }
        ctx.arm_timer(cfg.stabilize_period, OverlayTimer::Stabilize);
    }

    fn handle_get_pred_reply(
        &mut self,
        pred: Option<Peer>,
        succ_list: Vec<Peer>,
        from_idx: NodeIdx,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        self.succ_missed = 0;
        let me = self.state.me();
        let Some(mut succ) = self.state.successor() else {
            return;
        };
        if succ.idx != from_idx {
            return; // stale answer from a node we no longer track
        }
        if let Some(p) = pred {
            let space = self.state.space();
            if space.in_arc_oo(p.key, me.key, succ.key) {
                succ = p;
            }
        }
        let mut list = vec![succ];
        list.extend(succ_list);
        self.state.set_successors(list);
        if let Some(s) = self.state.successor() {
            self.send_body(ctx, s.idx, OverlayMsg::Notify { peer: me });
        }
    }

    fn handle_fix_fingers(
        &mut self,
        ctx: &mut Context<'_, Envelope<A::Payload>, OverlayTimer<A::Timer>>,
    ) {
        let cfg = *self.state.config();
        let space = cfg.space;
        let i = self.next_finger;
        self.next_finger = (self.next_finger + 1) % space.bits() as usize;
        let me = self.state.me();
        let target = space.finger_target(me.key, i as u32);
        match self.state.next_hop(target) {
            None => self.state.set_finger(i, me), // stored as None (self)
            Some(hop) => {
                let token = self.claim_token(Pending::Finger(i));
                self.send_body(
                    ctx,
                    hop.idx,
                    OverlayMsg::FindSucc {
                        target,
                        reply_to: me,
                        token,
                        hops: 1,
                    },
                );
            }
        }
        ctx.arm_timer(cfg.fix_fingers_period, OverlayTimer::FixFingers);
    }
}

impl<A: OverlayApp> Node for ChordNode<A> {
    type Msg = Envelope<A::Payload>;
    type Timer = OverlayTimer<A::Timer>;

    fn on_message(
        &mut self,
        _from: NodeIdx,
        envelope: Envelope<A::Payload>,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        let sender = envelope.sender;
        self.state.learn(sender);
        match envelope.body {
            OverlayMsg::Unicast {
                key,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                self.state.learn(src);
                routed::handle_unicast(
                    &mut self.state,
                    &mut self.app,
                    key,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::MCast {
                targets,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                self.state.learn(src);
                routed::handle_mcast(
                    &mut self.state,
                    &mut self.app,
                    targets,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::Walk {
                range,
                class,
                payload,
                hops,
                src,
                walking,
                trace,
            } => {
                self.state.learn(src);
                routed::handle_walk(
                    &mut self.state,
                    &mut self.app,
                    range,
                    class,
                    payload,
                    hops,
                    src,
                    walking,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::Direct { payload, class } => {
                let _ = class;
                routed::handle_direct(&mut self.state, &mut self.app, sender, payload, ctx);
            }
            OverlayMsg::FindSucc {
                target,
                reply_to,
                token,
                hops,
            } => {
                self.state.learn(reply_to);
                self.handle_find_succ(target, reply_to, token, hops, ctx);
            }
            OverlayMsg::FindSuccReply { token, succ, hops } => {
                self.handle_find_succ_reply(token, succ, hops, ctx);
            }
            OverlayMsg::GetPred => {
                let pred = self.state.predecessor();
                let succ_list = self.state.successors().to_vec();
                self.send_body(
                    ctx,
                    sender.idx,
                    OverlayMsg::GetPredReply { pred, succ_list },
                );
            }
            OverlayMsg::GetPredReply { pred, succ_list } => {
                self.handle_get_pred_reply(pred, succ_list, sender.idx, ctx);
            }
            OverlayMsg::Notify { peer } => {
                let me = self.state.me();
                let space = self.state.space();
                let adopt = match self.state.predecessor() {
                    None => true,
                    Some(p) => space.in_arc_oo(peer.key, p.key, me.key),
                };
                if adopt && peer.key != me.key {
                    self.set_predecessor_with_hook(Some(peer), ctx);
                }
                // A lone node learns its first peer: adopt as successor too.
                if self.state.successor().is_none() && peer.key != me.key {
                    self.state.set_successors(vec![peer]);
                }
            }
            OverlayMsg::LeaveNotice {
                leaving,
                replacement,
            } => {
                let me = self.state.me();
                if self.state.predecessor() == Some(leaving) {
                    let new = if replacement.key == me.key {
                        None
                    } else {
                        Some(replacement)
                    };
                    self.set_predecessor_with_hook(new, ctx);
                }
                if self.state.successor() == Some(leaving) {
                    self.state.forget(leaving);
                    if self.state.successor().is_none() && replacement.key != me.key {
                        self.state.set_successors(vec![replacement]);
                    }
                } else {
                    self.state.forget(leaving);
                }
            }
            OverlayMsg::Ping { token } => {
                self.send_body(ctx, sender.idx, OverlayMsg::Pong { token });
            }
            OverlayMsg::Pong { token } => {
                self.pending.remove(&token);
            }
        }
    }

    fn on_send_failed(
        &mut self,
        to: NodeIdx,
        envelope: Envelope<A::Payload>,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        // The peer refused the connection: it is dead. Scrub every routing
        // entry for it, then re-dispatch routed payloads along the repaired
        // state (maintenance traffic is periodic and simply retries later).
        self.state.forget_idx(to);
        match envelope.body {
            OverlayMsg::Unicast {
                key,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                routed::handle_unicast(
                    &mut self.state,
                    &mut self.app,
                    key,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::MCast {
                targets,
                class,
                payload,
                hops,
                src,
                trace,
            } => {
                routed::handle_mcast(
                    &mut self.state,
                    &mut self.app,
                    targets,
                    class,
                    payload,
                    hops,
                    src,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::Walk {
                range,
                class,
                payload,
                hops,
                src,
                walking,
                trace,
            } => {
                routed::handle_walk(
                    &mut self.state,
                    &mut self.app,
                    range,
                    class,
                    payload,
                    hops,
                    src,
                    walking,
                    trace,
                    ctx,
                );
            }
            OverlayMsg::FindSucc {
                target,
                reply_to,
                token,
                hops,
            } => {
                self.handle_find_succ(target, reply_to, token, hops, ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>) {
        match timer {
            OverlayTimer::Stabilize => self.handle_stabilize(ctx),
            OverlayTimer::FixFingers => self.handle_fix_fingers(ctx),
            OverlayTimer::ProbeTimeout { token } => {
                if let Some(Pending::Ping(peer)) = self.pending.remove(&token) {
                    self.state.forget(peer);
                }
            }
            OverlayTimer::App(t) => {
                routed::handle_app_timer(&mut self.state, &mut self.app, t, ctx);
            }
        }
    }
}

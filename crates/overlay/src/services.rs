//! The overlay-neutral service surface.
//!
//! The paper notes (§3.1) that the pub/sub infrastructure "is portable in
//! the sense that it can use any overlay routing scheme". This trait is
//! that portability boundary: everything the CB-pub/sub layer needs from
//! *an* overlay — key-routed send, the one-to-many primitives, one-hop
//! sends, timers, neighbor knowledge — with no Chord specifics. Chord's
//! [`OverlaySvc`](crate::OverlaySvc) implements it; so does the Pastry
//! overlay in `cbps-pastry`.

use cbps_rng::Rng;
use cbps_sim::{Metrics, SimDuration, SimTime, Stage, TraceId, TrafficClass};

use crate::key::{Key, KeySpace};
use crate::range::{KeyRange, KeyRangeSet};
use crate::ring::Peer;

/// What a structured overlay offers to the application stacked on it.
///
/// Implementations must guarantee: `send` delivers to the node covering
/// the key; `mcast` delivers exactly once to every node covering at least
/// one target key; `covers` is consistent with delivery; and `successor`/
/// `predecessor` name the ring-adjacent nodes of the key space (used for
/// the collecting optimization and state transfer).
pub trait OverlayServices<P: Clone, T> {
    /// This node's identity.
    fn me(&self) -> Peer;
    /// The key space of the overlay.
    fn space(&self) -> KeySpace;
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// The run's deterministic RNG.
    fn rng(&mut self) -> &mut Rng;
    /// The run's metrics sink.
    fn metrics(&mut self) -> &mut Metrics;
    /// The ring-adjacent node clockwise of this one, if any.
    fn successor(&self) -> Option<Peer>;
    /// The ring-adjacent node counter-clockwise of this one, if known.
    fn predecessor(&self) -> Option<Peer>;
    /// Nearest known clockwise neighbors (for replica placement).
    fn successors(&self) -> &[Peer];
    /// `true` iff this node currently covers `key`.
    fn covers(&self, key: Key) -> bool;
    /// Arms an application timer.
    fn arm_timer(&mut self, delay: SimDuration, timer: T);
    /// Routes `payload` to the node covering `key`, carrying `trace` for
    /// causal observability ([`TraceId::NONE`] for untraced traffic).
    fn send(&mut self, key: Key, class: TrafficClass, payload: P, trace: TraceId);
    /// One-to-many send: every covering node of `targets` receives the
    /// payload exactly once.
    fn mcast(&mut self, targets: &KeyRangeSet, class: TrafficClass, payload: P, trace: TraceId);
    /// Naive per-key unicast fan-out (the baseline primitive).
    fn ucast_keys(
        &mut self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        payload: P,
        trace: TraceId,
    );
    /// Conservative neighbor-walk propagation along a contiguous range.
    fn walk(&mut self, range: KeyRange, class: TrafficClass, payload: P, trace: TraceId);
    /// One-hop message to a known peer.
    fn direct(&mut self, to: Peer, class: TrafficClass, payload: P);

    /// Records that `trace` reached `stage` on this node, now. A single
    /// branch when observability is disabled.
    #[inline]
    fn stage(&mut self, trace: TraceId, stage: Stage, class: TrafficClass) {
        let (node, at) = (self.me().idx, self.now());
        self.metrics()
            .obs_mut()
            .stage(trace, stage, class, node, at);
    }

    /// Records a sample under a named observability series (fan-out sizes,
    /// store sizes, …). A single branch when observability is disabled.
    #[inline]
    fn obs_sample(&mut self, name: &str, value: u64) {
        self.metrics().obs_mut().sample(name, value);
    }
}

impl<P: Clone, T, S: crate::route::RouteTable> OverlayServices<P, T>
    for crate::app::OverlaySvc<'_, '_, P, T, S>
{
    fn me(&self) -> Peer {
        crate::app::OverlaySvc::me(self)
    }
    fn space(&self) -> KeySpace {
        crate::app::OverlaySvc::space(self)
    }
    fn now(&self) -> SimTime {
        crate::app::OverlaySvc::now(self)
    }
    fn rng(&mut self) -> &mut Rng {
        crate::app::OverlaySvc::rng(self)
    }
    fn metrics(&mut self) -> &mut Metrics {
        crate::app::OverlaySvc::metrics(self)
    }
    fn successor(&self) -> Option<Peer> {
        crate::app::OverlaySvc::successor(self)
    }
    fn predecessor(&self) -> Option<Peer> {
        crate::app::OverlaySvc::predecessor(self)
    }
    fn successors(&self) -> &[Peer] {
        crate::app::OverlaySvc::successors(self)
    }
    fn covers(&self, key: Key) -> bool {
        crate::app::OverlaySvc::covers(self, key)
    }
    fn arm_timer(&mut self, delay: SimDuration, timer: T) {
        crate::app::OverlaySvc::arm_timer(self, delay, timer);
    }
    fn send(&mut self, key: Key, class: TrafficClass, payload: P, trace: TraceId) {
        crate::app::OverlaySvc::send(self, key, class, payload, trace);
    }
    fn mcast(&mut self, targets: &KeyRangeSet, class: TrafficClass, payload: P, trace: TraceId) {
        crate::app::OverlaySvc::mcast(self, targets, class, payload, trace);
    }
    fn ucast_keys(
        &mut self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        payload: P,
        trace: TraceId,
    ) {
        crate::app::OverlaySvc::ucast_keys(self, targets, class, payload, trace);
    }
    fn walk(&mut self, range: KeyRange, class: TrafficClass, payload: P, trace: TraceId) {
        crate::app::OverlaySvc::walk(self, range, class, payload, trace);
    }
    fn direct(&mut self, to: Peer, class: TrafficClass, payload: P) {
        crate::app::OverlaySvc::direct(self, to, class, payload);
    }
}

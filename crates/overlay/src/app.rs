//! The application interface of the overlay.
//!
//! An [`OverlayApp`] is the protocol layered *above* the overlay (here:
//! the content-based pub/sub layer). It receives payload deliveries and
//! neighbor-change notifications, and acts on the world exclusively
//! through the overlay-neutral [`OverlayServices`] surface — the
//! programming model of §4.1: `send()`, `m-cast()`, timers and neighbor
//! knowledge, with the KN-mapping hidden. Because the upcalls take the
//! service surface as a trait object, the same application type runs
//! unchanged over every substrate implementing [`RouteTable`].

use std::sync::Arc;

use cbps_rng::Rng;
use cbps_sim::{Context, SimDuration, SimTime, TraceId, TrafficClass};

use crate::key::{Key, KeySpace};
use crate::msg::{Envelope, OverlayMsg};
use crate::range::{KeyRange, KeyRangeSet};
use crate::ring::Peer;
use crate::route::RouteTable;
use crate::services::OverlayServices;
use crate::state::RoutingState;
use crate::timer::OverlayTimer;

/// Information accompanying a routed payload delivery.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The keys covered by this node that caused the delivery (a singleton
    /// for unicast; the local subset for `m-cast`; the walked range
    /// portion for range walks).
    pub targets_here: KeyRangeSet,
    /// Traffic class the payload was sent under.
    pub class: TrafficClass,
    /// Number of one-hop transmissions the payload took to get here.
    pub hops: u32,
    /// The node that originated the send.
    pub src: Peer,
    /// Causal trace of the operation that sent the payload
    /// ([`TraceId::NONE`] when untraced).
    pub trace: TraceId,
}

/// The protocol stacked on top of an overlay node.
///
/// All methods receive the overlay-neutral [`OverlayServices`] surface for
/// sending, timer management and neighbor inspection. Default
/// implementations make every hook optional except payload delivery.
/// Membership hooks (`on_predecessor_changed`, `on_leaving`) only fire on
/// substrates with dynamic membership.
pub trait OverlayApp: Sized {
    /// The payload the overlay routes for this application.
    type Payload: Clone;
    /// Application timer token.
    type Timer;

    /// A routed payload (unicast, multicast or walk) arrived at a key this
    /// node covers.
    fn on_deliver(
        &mut self,
        payload: Self::Payload,
        delivery: Delivery,
        svc: &mut dyn OverlayServices<Self::Payload, Self::Timer>,
    );

    /// A one-hop direct message from a known peer arrived.
    fn on_direct(
        &mut self,
        from: Peer,
        payload: Self::Payload,
        svc: &mut dyn OverlayServices<Self::Payload, Self::Timer>,
    ) {
        let _ = (from, payload, svc);
    }

    /// An application timer armed through [`OverlayServices::arm_timer`]
    /// fired.
    fn on_timer(
        &mut self,
        timer: Self::Timer,
        svc: &mut dyn OverlayServices<Self::Payload, Self::Timer>,
    ) {
        let _ = (timer, svc);
    }

    /// The node's predecessor changed (a node joined just before us, or our
    /// old predecessor left/failed and we now cover its arc). This is the
    /// hook where stateful applications pull or activate state for the
    /// newly-covered keys (§4.1).
    fn on_predecessor_changed(
        &mut self,
        old: Option<Peer>,
        new: Option<Peer>,
        svc: &mut dyn OverlayServices<Self::Payload, Self::Timer>,
    ) {
        let _ = (old, new, svc);
    }

    /// This node is about to leave gracefully; push state to neighbors now.
    fn on_leaving(&mut self, svc: &mut dyn OverlayServices<Self::Payload, Self::Timer>) {
        let _ = svc;
    }
}

/// The overlay's service handle handed to application upcalls.
///
/// Wraps a substrate's routing state ([`RouteTable`]) plus the simulator
/// context, exposing the extended interface of §4.3.1: classic key
/// unicast, the `m-cast` primitive, the conservative range walk, naive
/// per-key unicast (the baseline the paper compares against), one-hop
/// sends, timers, and neighbor knowledge for state transfer. Implements
/// [`OverlayServices`], which is how applications receive it.
#[derive(Debug)]
pub struct OverlaySvc<'a, 'c, P, T, S: RouteTable = RoutingState> {
    pub(crate) state: &'a mut S,
    pub(crate) ctx: &'a mut Context<'c, Envelope<P>, OverlayTimer<T>>,
}

impl<'a, 'c, P: Clone, T, S: RouteTable> OverlaySvc<'a, 'c, P, T, S> {
    /// Wraps a substrate's routing state and a live simulator context into
    /// a service handle (how overlay nodes build the surface they hand to
    /// application upcalls).
    pub fn new(state: &'a mut S, ctx: &'a mut Context<'c, Envelope<P>, OverlayTimer<T>>) -> Self {
        OverlaySvc { state, ctx }
    }
}

impl<P: Clone, T, S: RouteTable> OverlaySvc<'_, '_, P, T, S> {
    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.state.me()
    }

    /// The key space of the overlay.
    pub fn space(&self) -> KeySpace {
        self.state.space()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut Rng {
        self.ctx.rng()
    }

    /// The run's metrics sink.
    pub fn metrics(&mut self) -> &mut cbps_sim::Metrics {
        self.ctx.metrics()
    }

    /// This node's immediate ring successor, if any.
    pub fn successor(&self) -> Option<Peer> {
        self.state.successor()
    }

    /// This node's ring predecessor, if known.
    pub fn predecessor(&self) -> Option<Peer> {
        self.state.predecessor()
    }

    /// This node's successor list (nearest first).
    pub fn successors(&self) -> &[Peer] {
        self.state.successors()
    }

    /// `true` iff this node currently covers `key` (`key ∈ (pred, me]`).
    pub fn covers(&self, key: Key) -> bool {
        self.state.covers(key)
    }

    /// Arms an application timer.
    pub fn arm_timer(&mut self, delay: SimDuration, timer: T) {
        self.ctx.arm_timer(delay, OverlayTimer::App(timer));
    }

    /// The overlay `send(m, k)` primitive: routes `payload` to the node
    /// covering `key`. Reaching a key we cover ourselves delivers locally
    /// without a network hop. `trace` ties the message to the application
    /// operation it serves ([`TraceId::NONE`] for untraced traffic).
    pub fn send(&mut self, key: Key, class: TrafficClass, payload: P, trace: TraceId) {
        self.send_rc(key, class, Arc::new(payload), trace);
    }

    /// [`OverlaySvc::send`] over an already-shared payload (no fresh
    /// allocation; used by the per-key fan-out).
    fn send_rc(&mut self, key: Key, class: TrafficClass, payload: Arc<P>, trace: TraceId) {
        let me = self.state.me();
        let unicast = |hops| OverlayMsg::Unicast {
            key,
            class,
            payload,
            hops,
            src: me,
            trace,
        };
        match self.state.next_hop(key) {
            None => self.ctx.send_local(Envelope {
                sender: me,
                body: unicast(0),
            }),
            Some(hop) => self.ctx.send(
                hop.idx,
                class,
                Envelope {
                    sender: me,
                    body: unicast(1),
                },
            ),
        }
    }

    /// The paper's `m-cast(M, K)` primitive: every node covering at least
    /// one key in `targets` receives `payload` exactly once.
    pub fn mcast(
        &mut self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        payload: P,
        trace: TraceId,
    ) {
        if targets.is_empty() {
            return;
        }
        let payload = Arc::new(payload);
        let me = self.state.me();
        let (local, mut bundles) = self.state.mcast_split(targets);
        if !local.is_empty() {
            self.ctx.send_local(Envelope {
                sender: me,
                body: OverlayMsg::MCast {
                    targets: local,
                    class,
                    payload: Arc::clone(&payload),
                    hops: 0,
                    src: me,
                    trace,
                },
            });
        }
        for (peer, subset) in bundles.drain(..) {
            self.ctx.send(
                peer.idx,
                class,
                Envelope {
                    sender: me,
                    body: OverlayMsg::MCast {
                        targets: subset,
                        class,
                        payload: Arc::clone(&payload),
                        hops: 1,
                        src: me,
                        trace,
                    },
                },
            );
        }
    }

    /// Naive unicast fan-out: one independent routed `send` per key in
    /// `targets`. This is the baseline the basic architecture is restricted
    /// to (§4.3.1, "aggressive" variant) and the "unicast" series of the
    /// figures.
    pub fn ucast_keys(
        &mut self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        payload: P,
        trace: TraceId,
    ) {
        let space = self.space();
        let payload = Arc::new(payload);
        for key in targets.iter_keys(space) {
            self.send_rc(key, class, Arc::clone(&payload), trace);
        }
    }

    /// Conservative unicast range propagation (§4.3.1): route to the first
    /// key of `range`, then walk covering nodes successor-by-successor.
    /// Same message complexity as `m-cast`, but dilation grows with the
    /// number of covering nodes.
    pub fn walk(&mut self, range: KeyRange, class: TrafficClass, payload: P, trace: TraceId) {
        let me = self.state.me();
        let msg = Envelope {
            sender: me,
            body: OverlayMsg::Walk {
                range,
                class,
                payload: Arc::new(payload),
                hops: 0,
                src: me,
                walking: false,
                trace,
            },
        };
        // Enter through normal routing toward the range start.
        match self.state.next_hop(range.start()) {
            None => self.ctx.send_local(msg),
            Some(hop) => {
                let mut env = msg;
                if let OverlayMsg::Walk { hops, .. } = &mut env.body {
                    *hops = 1;
                }
                self.ctx.send(hop.idx, class, env);
            }
        }
    }

    /// One-hop message to a peer whose address is already known (ring
    /// neighbors, learned peers). Used by the collecting protocol and state
    /// transfer.
    pub fn direct(&mut self, to: Peer, class: TrafficClass, payload: P) {
        let me = self.state.me();
        self.ctx.send(
            to.idx,
            class,
            Envelope {
                sender: me,
                body: OverlayMsg::Direct {
                    payload: Arc::new(payload),
                    class,
                },
            },
        );
    }
}

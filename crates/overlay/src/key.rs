//! Keys and the circular `m`-bit identifier space.
//!
//! Chord orders node and data identifiers on a circle modulo `2^m` (the
//! *Chord ring*). [`KeySpace`] captures `m` and provides the modular
//! arithmetic every protocol decision is built from; [`Key`] is an opaque
//! identifier in that space.

use std::fmt;

/// An identifier on the Chord ring.
///
/// Keys are produced by [`KeySpace::key`] (which masks to `m` bits) or by
/// hashing (see [`crate::hash`]). The numeric value is exposed for mapping
/// implementations via [`Key::value`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u64);

impl Key {
    /// The raw numeric value of the key.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The circular identifier space of `m`-bit keys (the Chord ring).
///
/// All interval tests follow Chord's conventions for circular arcs; in
/// particular the half-open arc `(a, a]` is the **full ring** (travelling
/// clockwise from just after `a` all the way around to `a`).
///
/// # Examples
///
/// ```
/// use cbps_overlay::KeySpace;
///
/// let space = KeySpace::new(13); // the paper's 2^13 key space
/// assert_eq!(space.size(), 8192);
/// let a = space.key(10);
/// let b = space.key(8190);
/// assert_eq!(space.distance_cw(b, a), 12); // wraps around the ring
/// assert!(space.in_arc_oc(a, b, space.key(100)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KeySpace {
    bits: u32,
}

impl KeySpace {
    /// Creates the key space of `bits`-bit identifiers.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 63`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "key space bits {bits} out of [1, 63]"
        );
        KeySpace { bits }
    }

    /// Number of bits `m` in a key.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Number of distinct keys, `2^m`.
    #[inline]
    pub const fn size(self) -> u64 {
        1u64 << self.bits
    }

    /// The largest key value, `2^m - 1`.
    #[inline]
    pub const fn max_value(self) -> u64 {
        self.size() - 1
    }

    /// Makes a key from an arbitrary integer by reducing it modulo `2^m`.
    #[inline]
    pub const fn key(self, value: u64) -> Key {
        Key(value & (self.size() - 1))
    }

    /// `key + delta` on the ring.
    #[inline]
    pub const fn add(self, key: Key, delta: u64) -> Key {
        self.key(key.0.wrapping_add(delta))
    }

    /// `key - delta` on the ring.
    #[inline]
    pub const fn sub(self, key: Key, delta: u64) -> Key {
        self.key(key.0.wrapping_sub(delta))
    }

    /// Clockwise distance from `a` to `b`: the number of steps to walk from
    /// `a` forwards to reach `b` (zero when `a == b`).
    #[inline]
    pub const fn distance_cw(self, a: Key, b: Key) -> u64 {
        b.0.wrapping_sub(a.0) & (self.size() - 1)
    }

    /// `true` iff `x` lies on the circular arc `(a, b]`.
    ///
    /// When `a == b` the arc is the full ring, so every key qualifies.
    #[inline]
    pub const fn in_arc_oc(self, x: Key, a: Key, b: Key) -> bool {
        let dx = self.distance_cw(a, x);
        let db = self.distance_cw(a, b);
        if db == 0 {
            true
        } else {
            dx != 0 && dx <= db
        }
    }

    /// `true` iff `x` lies on the circular arc `(a, b)`.
    ///
    /// When `a == b` the arc is the full ring minus `a` itself.
    #[inline]
    pub const fn in_arc_oo(self, x: Key, a: Key, b: Key) -> bool {
        let dx = self.distance_cw(a, x);
        let db = self.distance_cw(a, b);
        if db == 0 {
            dx != 0
        } else {
            dx != 0 && dx < db
        }
    }

    /// The `i`-th Chord finger target of `key`: `key + 2^i` (0-based `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    #[inline]
    pub fn finger_target(self, key: Key, i: u32) -> Key {
        assert!(
            i < self.bits,
            "finger index {i} out of range for m={}",
            self.bits
        );
        self.add(key, 1u64 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> KeySpace {
        KeySpace::new(5) // the paper's illustrative m = 5 ring
    }

    #[test]
    fn sizes() {
        let s = sp();
        assert_eq!(s.bits(), 5);
        assert_eq!(s.size(), 32);
        assert_eq!(s.max_value(), 31);
        assert_eq!(s.key(33), s.key(1));
    }

    #[test]
    fn modular_arithmetic() {
        let s = sp();
        assert_eq!(s.add(s.key(30), 4), s.key(2));
        assert_eq!(s.sub(s.key(2), 4), s.key(30));
        assert_eq!(s.distance_cw(s.key(30), s.key(2)), 4);
        assert_eq!(s.distance_cw(s.key(2), s.key(30)), 28);
        assert_eq!(s.distance_cw(s.key(7), s.key(7)), 0);
    }

    #[test]
    fn arc_open_closed() {
        let s = sp();
        // Plain arc (3, 10].
        assert!(!s.in_arc_oc(s.key(3), s.key(3), s.key(10)));
        assert!(s.in_arc_oc(s.key(4), s.key(3), s.key(10)));
        assert!(s.in_arc_oc(s.key(10), s.key(3), s.key(10)));
        assert!(!s.in_arc_oc(s.key(11), s.key(3), s.key(10)));
        // Wrapping arc (28, 2].
        assert!(s.in_arc_oc(s.key(31), s.key(28), s.key(2)));
        assert!(s.in_arc_oc(s.key(0), s.key(28), s.key(2)));
        assert!(s.in_arc_oc(s.key(2), s.key(28), s.key(2)));
        assert!(!s.in_arc_oc(s.key(28), s.key(28), s.key(2)));
        assert!(!s.in_arc_oc(s.key(15), s.key(28), s.key(2)));
        // Degenerate (a, a] is the full ring.
        assert!(s.in_arc_oc(s.key(5), s.key(7), s.key(7)));
        assert!(s.in_arc_oc(s.key(7), s.key(7), s.key(7)));
    }

    #[test]
    fn arc_open_open() {
        let s = sp();
        assert!(!s.in_arc_oo(s.key(10), s.key(3), s.key(10)));
        assert!(s.in_arc_oo(s.key(9), s.key(3), s.key(10)));
        // Degenerate (a, a) is everything but a.
        assert!(s.in_arc_oo(s.key(6), s.key(7), s.key(7)));
        assert!(!s.in_arc_oo(s.key(7), s.key(7), s.key(7)));
    }

    #[test]
    fn finger_targets_match_paper_example() {
        // Figure 1 of the paper: node 8 on an m=5 ring; the 4th finger
        // (1-based) targets 8 + 2^3 = 16.
        let s = sp();
        assert_eq!(s.finger_target(s.key(8), 3), s.key(16));
        assert_eq!(s.finger_target(s.key(30), 2), s.key(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn finger_index_validated() {
        let s = sp();
        let _ = s.finger_target(s.key(0), 5);
    }

    #[test]
    #[should_panic(expected = "out of [1, 63]")]
    fn bits_validated() {
        let _ = KeySpace::new(64);
    }
}

//! Per-node routing state: identity, neighbors, finger table, location
//! cache — and the two routing decisions built on them (greedy next-hop
//! selection and the `m-cast` split of Figure 4).

use crate::cache::LocationCache;
use crate::config::OverlayConfig;
use crate::key::{Key, KeySpace};
use crate::range::KeyRangeSet;
use crate::ring::Peer;
use crate::scratch::{Bundles, PeerBuf};

/// The Chord routing state of one node.
///
/// Pure data plus deterministic decision functions; all message handling
/// lives in [`crate::node::ChordNode`]. Keeping the decisions here makes
/// them unit-testable without a simulator.
///
/// The per-event working set is laid out struct-of-arrays: the finger
/// table is a liveness bitmap plus parallel key/index arrays, so the
/// next-hop and m-cast scans touch a few dense cache lines of raw `u64`
/// keys instead of striding over `Option<Peer>` records. Cold
/// configuration sits behind the hot fields.
#[derive(Clone, Debug)]
pub struct RoutingState {
    // --- hot: touched on every routed event ---
    me: Peer,
    pred: Option<Peer>,
    /// Bit `i` set iff finger `i` is known (and is not ourselves).
    finger_live: u64,
    /// Finger target keys (raw key values), valid where the live bit is
    /// set; entry `i` is the node covering `me.key + 2^i`.
    finger_keys: Box<[u64]>,
    /// Simulator indices parallel to `finger_keys`.
    finger_idxs: Box<[u32]>,
    /// Successor list; `succs[0]` is the immediate successor. Empty on a
    /// single-node ring.
    succs: Vec<Peer>,
    cache: LocationCache,
    // --- cold: configuration ---
    cfg: OverlayConfig,
}

impl RoutingState {
    /// Fresh state for a node that has not joined a ring yet.
    pub fn new(cfg: OverlayConfig, me: Peer) -> Self {
        let m = cfg.space.bits() as usize;
        assert!(m <= 64, "finger liveness bitmap holds at most 64 entries");
        RoutingState {
            me,
            pred: None,
            finger_live: 0,
            finger_keys: vec![0; m].into_boxed_slice(),
            finger_idxs: vec![0; m].into_boxed_slice(),
            succs: Vec::new(),
            cache: LocationCache::new(cfg.cache_capacity),
            cfg,
        }
    }

    /// This node's identity.
    pub fn me(&self) -> Peer {
        self.me
    }

    /// The key space.
    pub fn space(&self) -> KeySpace {
        self.cfg.space
    }

    /// The overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<Peer> {
        self.pred
    }

    /// Immediate successor, if any (a single-node ring has none).
    pub fn successor(&self) -> Option<Peer> {
        self.succs.first().copied()
    }

    /// The whole successor list.
    pub fn successors(&self) -> &[Peer] {
        &self.succs
    }

    /// Finger entry `i` (targets `me.key + 2^i`); `None` when unknown or
    /// pointing at ourselves.
    pub fn finger(&self, i: usize) -> Option<Peer> {
        assert!(i < self.finger_keys.len(), "finger index out of range");
        if self.finger_live & (1u64 << i) == 0 {
            return None;
        }
        Some(Peer {
            idx: self.finger_idxs[i] as usize,
            key: self.cfg.space.key(self.finger_keys[i]),
        })
    }

    /// The finger table, entry by entry (entry `i` targets `me.key + 2^i`).
    pub fn fingers(&self) -> impl Iterator<Item = Option<Peer>> + '_ {
        (0..self.finger_keys.len()).map(|i| self.finger(i))
    }

    /// Number of entries currently in the location cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Overwrites the predecessor.
    pub fn set_predecessor(&mut self, pred: Option<Peer>) {
        self.pred = pred;
    }

    /// Overwrites the successor list (first entry = immediate successor).
    /// Entries equal to this node are dropped; the list is truncated to the
    /// configured length.
    pub fn set_successors(&mut self, succs: Vec<Peer>) {
        let mut out: Vec<Peer> = Vec::with_capacity(self.cfg.succ_list_len);
        for p in succs {
            if p.key != self.me.key && !out.contains(&p) {
                out.push(p);
            }
            if out.len() == self.cfg.succ_list_len {
                break;
            }
        }
        self.succs = out;
    }

    /// Bulk successor install for the stable builder: the sequence must
    /// already be self-free, duplicate-free, clockwise-ordered and at most
    /// the configured length (which ring-adjacency slices are by
    /// construction), so no filtering pass or temporary is needed.
    pub fn set_successor_slice(&mut self, succs: impl IntoIterator<Item = Peer>) {
        self.succs.clear();
        for p in succs {
            debug_assert!(p.key != self.me.key, "successor slice contains self");
            debug_assert!(!self.succs.contains(&p), "duplicate in successor slice");
            debug_assert!(
                self.succs.len() < self.cfg.succ_list_len,
                "successor slice longer than the configured list"
            );
            self.succs.push(p);
        }
    }

    /// Pre-faults lazily allocated routing storage (the location cache's
    /// table) so a first `learn` after warmup does not allocate.
    pub fn warm(&mut self) {
        self.cache.warm();
    }

    /// Sets one finger entry (entries pointing at ourselves are stored as
    /// unknown).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_finger(&mut self, i: usize, peer: Peer) {
        assert!(i < self.finger_keys.len(), "finger index out of range");
        if peer.key == self.me.key {
            self.finger_live &= !(1u64 << i);
        } else {
            self.finger_live |= 1u64 << i;
            self.finger_keys[i] = peer.key.value();
            self.finger_idxs[i] = peer.idx as u32;
        }
    }

    /// Records that `peer` exists (location cache learning). Learning
    /// ourselves is a no-op.
    pub fn learn(&mut self, peer: Peer) {
        if peer.key != self.me.key {
            self.cache.learn(peer);
        }
    }

    /// Removes every trace of the node at simulator index `idx` (used when
    /// a send fails: the sender knows the address, not necessarily the
    /// key). Returns the peers scrubbed.
    pub fn forget_idx(&mut self, idx: usize) -> Vec<Peer> {
        let mut dead: Vec<Peer> = Vec::new();
        let mut note = |p: Peer| {
            if !dead.contains(&p) {
                dead.push(p);
            }
        };
        let mut live = self.finger_live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            if self.finger_idxs[i] as usize == idx {
                note(Peer {
                    idx,
                    key: self.cfg.space.key(self.finger_keys[i]),
                });
            }
        }
        for s in &self.succs {
            if s.idx == idx {
                note(*s);
            }
        }
        if let Some(p) = self.pred {
            if p.idx == idx {
                note(p);
            }
        }
        for p in self.cache.peers_at(idx) {
            note(p);
        }
        for p in dead.clone() {
            self.forget(p);
        }
        dead
    }

    /// Removes every trace of a peer believed dead: cache entry, fingers,
    /// successor-list entries, predecessor.
    pub fn forget(&mut self, peer: Peer) {
        self.cache.forget(peer.key);
        let mut live = self.finger_live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            if self.finger_keys[i] == peer.key.value() && self.finger_idxs[i] as usize == peer.idx {
                self.finger_live &= !(1u64 << i);
            }
        }
        self.succs.retain(|p| *p != peer);
        if self.pred == Some(peer) {
            self.pred = None;
        }
    }

    /// `true` iff this node covers `key`, i.e. `key ∈ (pred, me]`.
    ///
    /// A node with no known predecessor claims everything (true for a
    /// single-node ring; transiently optimistic while joining).
    pub fn covers(&self, key: Key) -> bool {
        match self.pred {
            None => true,
            Some(p) => self.cfg.space.in_arc_oc(key, p.key, self.me.key),
        }
    }

    /// Greedy routing decision for `key`: `None` to deliver locally, or the
    /// next hop — the closest node preceding `key` among the finger table,
    /// successor list and location cache, falling back to the successor.
    pub fn next_hop(&mut self, key: Key) -> Option<Peer> {
        if self.covers(key) {
            return None;
        }
        let succ = self.successor()?;
        let space = self.cfg.space;
        if space.in_arc_oc(key, self.me.key, succ.key) {
            return Some(succ);
        }
        let mut best: Option<Peer> = None;
        let mut best_dist = 0u64;
        // Finger scan over the dense key array: only the chosen entry's
        // index is materialized into a `Peer`.
        let mut live = self.finger_live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            let fk = space.key(self.finger_keys[i]);
            if space.in_arc_oo(fk, self.me.key, key) {
                let d = space.distance_cw(self.me.key, fk);
                if d > best_dist {
                    best_dist = d;
                    best = Some(Peer {
                        idx: self.finger_idxs[i] as usize,
                        key: fk,
                    });
                }
            }
        }
        let mut consider = |p: Peer| {
            if space.in_arc_oo(p.key, self.me.key, key) {
                let d = space.distance_cw(self.me.key, p.key);
                if d > best_dist {
                    best_dist = d;
                    best = Some(p);
                }
            }
        };
        for s in &self.succs {
            consider(*s);
        }
        if let Some(c) = self.cache.closest_preceding(space, self.me.key, key) {
            consider(c);
        }
        Some(best.unwrap_or(succ))
    }

    /// The `m-cast` split of Figure 4: partitions `targets` into the subset
    /// this node covers (to deliver) and per-next-hop bundles (to forward).
    ///
    /// Boundaries are the node's distinct neighbors sorted clockwise:
    /// successor `f_1`, the fingers, and the predecessor as the final
    /// `f_l`. The arc `(me, f_1]` goes to the successor (it covers it
    /// entirely); each arc `(f_i, f_{i+1}]` goes to `f_i`, which recurses;
    /// the final arc `(pred, me]` is local. Bundles to the same node are
    /// merged, so no node receives the message twice. All scratch storage
    /// is pooled ([`crate::scratch`]): the steady-state split allocates
    /// nothing.
    pub fn mcast_split(&self, targets: &KeyRangeSet) -> (KeyRangeSet, Bundles) {
        let space = self.cfg.space;
        let mut bundles = Bundles::take();
        let Some(succ) = self.successor() else {
            // Single-node ring: everything is local.
            return (targets.clone(), bundles);
        };

        // Distinct boundary peers sorted clockwise from me.
        let mut boundaries = PeerBuf::take();
        boundaries.push(succ);
        let mut live = self.finger_live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            live &= live - 1;
            boundaries.push(Peer {
                idx: self.finger_idxs[i] as usize,
                key: space.key(self.finger_keys[i]),
            });
        }
        if let Some(p) = self.pred {
            boundaries.push(p);
        }
        boundaries.retain(|p| p.key != self.me.key);
        boundaries.sort_by_key(|p| space.distance_cw(self.me.key, p.key));
        boundaries.dedup_by_key(|p| p.key);

        if boundaries.is_empty() {
            return (targets.clone(), bundles);
        }

        let mut add = |peer: Peer, part: KeyRangeSet| {
            if part.is_empty() {
                return;
            }
            if let Some((_, set)) = bundles.iter_mut().find(|(p, _)| p.idx == peer.idx) {
                set.union_with(&part);
            } else {
                bundles.push((peer, part));
            }
        };

        // (me, b_0] is covered entirely by the successor.
        add(
            boundaries[0],
            targets.extract_arc_oc(space, self.me.key, boundaries[0].key),
        );
        // (b_i, b_{i+1}] is relayed through b_i.
        for w in boundaries.windows(2) {
            add(w[0], targets.extract_arc_oc(space, w[0].key, w[1].key));
        }
        // (b_last, me] is ours.
        let last = boundaries[boundaries.len() - 1];
        let local = targets.extract_arc_oc(space, last.key, self.me.key);
        (local, bundles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::KeyRange;
    use crate::ring::RingView;

    /// Builds converged state for the node at `key` on a ring of the given
    /// node keys.
    fn converged(keys: &[u64], key: u64) -> RoutingState {
        let space = KeySpace::new(5);
        let cfg = OverlayConfig::paper_default()
            .with_space(space)
            .with_cache_capacity(0);
        let peers: Vec<Peer> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Peer {
                idx: i,
                key: space.key(k),
            })
            .collect();
        let ring = RingView::new(space, peers.clone());
        let me = *peers.iter().find(|p| p.key == space.key(key)).unwrap();
        let mut st = RoutingState::new(cfg, me);
        st.set_predecessor(Some(ring.predecessor(me.key)));
        st.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
        for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
            st.set_finger(i, f);
        }
        st
    }

    #[test]
    fn covers_own_arc_only() {
        let st = converged(&[1, 8, 14, 20, 27], 8);
        let s = st.space();
        assert!(st.covers(s.key(8)));
        assert!(st.covers(s.key(2)));
        assert!(!st.covers(s.key(1)));
        assert!(!st.covers(s.key(9)));
    }

    #[test]
    fn next_hop_none_when_covering() {
        let mut st = converged(&[1, 8, 14, 20, 27], 8);
        let s = st.space();
        assert_eq!(st.next_hop(s.key(5)), None);
    }

    #[test]
    fn next_hop_uses_successor_for_adjacent_arc() {
        let mut st = converged(&[1, 8, 14, 20, 27], 8);
        let s = st.space();
        let hop = st.next_hop(s.key(12)).unwrap();
        assert_eq!(hop.key, s.key(14));
    }

    #[test]
    fn next_hop_takes_longest_finger_before_target() {
        let mut st = converged(&[1, 8, 14, 20, 27], 1);
        let s = st.space();
        // Routing 26 from node 1: fingers of 1 target 2,3,5,9,17 →
        // successors 8,8,8,14,20. Closest preceding 26 is 20.
        let hop = st.next_hop(s.key(26)).unwrap();
        assert_eq!(hop.key, s.key(20));
    }

    #[test]
    fn next_hop_never_returns_self() {
        for target in 0..32 {
            let mut st = converged(&[1, 8, 14, 20, 27], 14);
            let s = st.space();
            if let Some(hop) = st.next_hop(s.key(target)) {
                assert_ne!(hop.key, st.me().key, "self-hop for target {target}");
            }
        }
    }

    #[test]
    fn finger_accessors_mirror_soa_storage() {
        let st = converged(&[1, 8, 14, 20, 27], 1);
        let s = st.space();
        // Fingers of 1 target 2,3,5,9,17 → successors 8,8,8,14,20.
        let expect = [8u64, 8, 8, 14, 20];
        for (i, f) in st.fingers().enumerate() {
            assert_eq!(f.unwrap().key, s.key(expect[i]), "finger {i}");
            assert_eq!(st.finger(i), f);
        }
        assert_eq!(st.fingers().count(), s.bits() as usize);
    }

    #[test]
    fn cache_entry_shortcuts_routing() {
        let space = KeySpace::new(5);
        let cfg = OverlayConfig::paper_default()
            .with_space(space)
            .with_cache_capacity(8)
            .with_succ_list_len(1);
        let peers: Vec<Peer> = [1u64, 8, 14, 20, 27]
            .iter()
            .enumerate()
            .map(|(i, &k)| Peer {
                idx: i,
                key: space.key(k),
            })
            .collect();
        let ring = RingView::new(space, peers.clone());
        let me = peers[0]; // key 1
        let mut st = RoutingState::new(cfg, me);
        st.set_predecessor(Some(ring.predecessor(me.key)));
        st.set_successors(ring.successors_of(me.key, 1));
        for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
            st.set_finger(i, f);
        }
        // Node 1 covers (27, 1]; route toward key 25 (covered by node 27).
        // Without cache knowledge the best hop is finger 20.
        assert_eq!(st.next_hop(space.key(25)).unwrap().key, space.key(20));
        // After learning a peer at 23 the cache supplies a closer hop.
        st.learn(Peer {
            idx: 9,
            key: space.key(23),
        });
        assert_eq!(st.next_hop(space.key(25)).unwrap().key, space.key(23));
        // The cached node is never returned for its own key: arc (1, 23) is
        // open at 23, so routing key 23 still goes through 20.
        assert_eq!(st.next_hop(space.key(23)).unwrap().key, space.key(20));
    }

    #[test]
    fn forget_scrubs_everywhere() {
        let mut st = converged(&[1, 8, 14, 20, 27], 8);
        let s = st.space();
        let dead = Peer {
            idx: 2,
            key: s.key(14),
        };
        st.forget(dead);
        assert!(!st.successors().contains(&dead));
        assert!(st.fingers().all(|f| f != Some(dead)));
        // Successor list falls back to the next node.
        assert_eq!(st.successor().unwrap().key, s.key(20));
    }

    #[test]
    fn mcast_split_partitions_disjointly_and_completely() {
        let st = converged(&[1, 8, 14, 20, 27], 8);
        let s = st.space();
        let targets = KeyRangeSet::full(s);
        let (local, bundles) = st.mcast_split(&targets);
        // Local must be exactly our coverage (1, 8].
        assert_eq!(
            local,
            KeyRangeSet::of_range(s, KeyRange::new(s.key(2), s.key(8)))
        );
        // The union of local + all bundles must be the full ring, disjoint.
        let mut total = local.count();
        let mut union = local.clone();
        for (_, set) in bundles.iter() {
            assert!(!union.intersects(set), "overlapping m-cast bundles");
            union.union_with(set);
            total += set.count();
        }
        assert_eq!(total, s.size());
        assert_eq!(union.count(), s.size());
        // No bundle is addressed to ourselves.
        assert!(bundles.iter().all(|(p, _)| p.key != st.me().key));
    }

    #[test]
    fn mcast_split_single_node_is_all_local() {
        let space = KeySpace::new(5);
        let cfg = OverlayConfig::paper_default().with_space(space);
        let me = Peer {
            idx: 0,
            key: space.key(7),
        };
        let st = RoutingState::new(cfg, me);
        let targets = KeyRangeSet::of_range(space, KeyRange::new(space.key(0), space.key(31)));
        let (local, bundles) = st.mcast_split(&targets);
        assert_eq!(local.count(), 32);
        assert!(bundles.is_empty());
    }

    #[test]
    fn mcast_split_bundles_merge_per_node() {
        // Successor also appears as finger 1 and 2; its bundle must be one
        // merged entry.
        let st = converged(&[1, 8, 14, 20, 27], 1);
        let targets = KeyRangeSet::full(st.space());
        let (_, bundles) = st.mcast_split(&targets);
        let mut idxs: Vec<usize> = bundles.iter().map(|(p, _)| p.idx).collect();
        idxs.sort_unstable();
        let before = idxs.len();
        idxs.dedup();
        assert_eq!(before, idxs.len(), "duplicate per-node bundles");
    }

    #[test]
    fn set_successors_filters_self_and_dups() {
        let mut st = converged(&[1, 8], 1);
        let s = st.space();
        let me = st.me();
        let other = Peer {
            idx: 1,
            key: s.key(8),
        };
        st.set_successors(vec![other, me, other, other]);
        assert_eq!(st.successors(), &[other]);
    }
}

//! Circular key intervals and normalized sets of them.
//!
//! The stateless mappings of the pub/sub layer send subscriptions to
//! *contiguous runs* of keys (the image of a range constraint under a
//! monotone scaling hash), and the `m-cast` primitive repeatedly splits a
//! target key set along finger boundaries. [`KeyRange`] is one circular
//! interval; [`KeyRangeSet`] is a normalized union of them supporting the
//! arc intersections both layers need.
//!
//! Internally a set is stored as sorted, disjoint, non-adjacent *linear*
//! segments `[lo, hi]` (wrapping ranges are split in two), which turns all
//! circular reasoning into ordinary interval algebra. The segments live in
//! an [`InlineVec`]: up to [`INLINE_SEGS`] segments are stored in place, so
//! the common few-segment sets built on every m-cast hop never touch the
//! heap. Wider sets spill into `Vec`s drawn from (and returned to) a
//! per-thread free list, so even the spill path stops allocating once the
//! pool is warm.

use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::inline::InlineVec;
use crate::key::{Key, KeySpace};

/// Number of segments a [`KeyRangeSet`] stores inline before spilling.
pub const INLINE_SEGS: usize = 4;

/// Per-thread free list of spilled segment buffers. `take`/`put` keep the
/// steady state allocation-free: a set that grows past [`INLINE_SEGS`]
/// segments borrows a recycled `Vec` and its `Drop` returns it.
mod spill {
    use super::RefCell;

    /// Bound on pooled buffers (beyond this, drops free normally).
    const POOL_CAP: usize = 32;
    /// Buffers that grew past this many segments are not worth hoarding.
    const RETAIN_CAP: usize = 4096;

    thread_local! {
        static POOL: RefCell<Vec<Vec<(u64, u64)>>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn take(min_cap: usize) -> Vec<(u64, u64)> {
        POOL.with(|pool| {
            let mut v = pool.borrow_mut().pop().unwrap_or_default();
            v.reserve(min_cap.max(super::INLINE_SEGS * 2));
            v
        })
    }

    pub(super) fn put(mut v: Vec<(u64, u64)>) {
        if v.capacity() == 0 || v.capacity() > RETAIN_CAP {
            return;
        }
        v.clear();
        POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(v);
            }
        });
    }
}

/// A circular interval of keys, walking clockwise from `start` to `end`,
/// both inclusive.
///
/// A range always contains at least one key; `start == end` is the
/// singleton, and `end == start - 1` covers the entire ring.
///
/// # Examples
///
/// ```
/// use cbps_overlay::{KeyRange, KeySpace};
///
/// let s = KeySpace::new(5);
/// let wrap = KeyRange::new(s.key(30), s.key(2));
/// assert_eq!(wrap.count(s), 5); // 30, 31, 0, 1, 2
/// assert!(wrap.contains(s, s.key(0)));
/// assert!(!wrap.contains(s, s.key(3)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KeyRange {
    start: Key,
    end: Key,
}

impl KeyRange {
    /// The circular interval `[start, end]`.
    #[inline]
    pub fn new(start: Key, end: Key) -> Self {
        KeyRange { start, end }
    }

    /// The singleton interval `[key, key]`.
    #[inline]
    pub fn singleton(key: Key) -> Self {
        KeyRange {
            start: key,
            end: key,
        }
    }

    /// First key of the interval (clockwise).
    #[inline]
    pub fn start(self) -> Key {
        self.start
    }

    /// Last key of the interval (clockwise).
    #[inline]
    pub fn end(self) -> Key {
        self.end
    }

    /// Number of keys in the interval.
    #[inline]
    pub fn count(self, space: KeySpace) -> u64 {
        space.distance_cw(self.start, self.end) + 1
    }

    /// `true` iff `key` lies within the interval.
    #[inline]
    pub fn contains(self, space: KeySpace, key: Key) -> bool {
        space.distance_cw(self.start, key) <= space.distance_cw(self.start, self.end)
    }

    /// The key at the clockwise midpoint of the interval.
    ///
    /// Used by the notification-collecting optimization: the middle node of
    /// a subscription's rendezvous range acts as the aggregation agent.
    #[inline]
    pub fn midpoint(self, space: KeySpace) -> Key {
        space.add(self.start, space.distance_cw(self.start, self.end) / 2)
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// A normalized set of keys on the ring, stored as disjoint intervals.
///
/// This is the value flowing through `SK`/`EK` mappings and the `m-cast`
/// primitive. All operations keep the representation normalized (sorted,
/// disjoint, non-adjacent linear segments). Sets of up to [`INLINE_SEGS`]
/// segments are heap-free; wider sets borrow pooled spill storage (see the
/// module docs).
///
/// # Examples
///
/// ```
/// use cbps_overlay::{KeyRange, KeyRangeSet, KeySpace};
///
/// let s = KeySpace::new(5);
/// let mut set = KeyRangeSet::new();
/// set.insert_range(s, KeyRange::new(s.key(30), s.key(2))); // wraps
/// set.insert_key(s, s.key(3)); // adjacent: merges into 30..=3
/// assert_eq!(set.count(), 6);
/// assert_eq!(set.iter_keys(s).count(), 6);
/// ```
#[derive(Debug, Default)]
pub struct KeyRangeSet {
    /// Sorted, disjoint, non-adjacent inclusive segments in linear space.
    segments: InlineVec<(u64, u64), INLINE_SEGS>,
}

impl Clone for KeyRangeSet {
    fn clone(&self) -> Self {
        let mut out = KeyRangeSet::new();
        let segs = self.segments.as_slice();
        if segs.len() > INLINE_SEGS {
            let mut v = spill::take(segs.len());
            v.extend_from_slice(segs);
            out.segments = InlineVec::Heap(v);
        } else {
            for &seg in segs {
                out.segments.push(seg);
            }
        }
        out
    }
}

impl Drop for KeyRangeSet {
    fn drop(&mut self) {
        if let Some(v) = self.segments.take_spill() {
            spill::put(v);
        }
    }
}

/// Equality is over the key set; inline and spilled representations of the
/// same segments compare equal (the representation is normalized, so
/// segment-slice equality is set equality).
impl PartialEq for KeyRangeSet {
    fn eq(&self, other: &Self) -> bool {
        self.segments.as_slice() == other.segments.as_slice()
    }
}

impl Eq for KeyRangeSet {}

impl Hash for KeyRangeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.segments.as_slice().hash(state);
    }
}

impl KeyRangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        KeyRangeSet::default()
    }

    /// The set holding a single key.
    pub fn of_key(space: KeySpace, key: Key) -> Self {
        let mut s = KeyRangeSet::new();
        s.insert_key(space, key);
        s
    }

    /// The set holding one circular range.
    pub fn of_range(space: KeySpace, range: KeyRange) -> Self {
        let mut s = KeyRangeSet::new();
        s.insert_range(space, range);
        s
    }

    /// The set covering the entire ring.
    pub fn full(space: KeySpace) -> Self {
        let mut s = KeyRangeSet::new();
        s.segments.push((0, space.max_value()));
        s
    }

    /// `true` when the set holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of keys in the set.
    #[inline]
    pub fn count(&self) -> u64 {
        self.segments
            .as_slice()
            .iter()
            .map(|&(lo, hi)| hi - lo + 1)
            .sum()
    }

    /// Number of disjoint linear segments (an implementation-level measure
    /// of fragmentation, exposed for tests and diagnostics).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// `true` while the segments fit the inline buffer (diagnostics for
    /// the allocation audit; spilled sets borrowed pooled storage).
    #[inline]
    pub fn is_inline(&self) -> bool {
        self.segments.is_inline()
    }

    /// `true` iff the set contains `key`.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        let v = key.value();
        self.segments
            .as_slice()
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts a single key.
    pub fn insert_key(&mut self, space: KeySpace, key: Key) {
        self.insert_range(space, KeyRange::singleton(key));
    }

    /// Inserts a circular range, merging with existing segments.
    pub fn insert_range(&mut self, space: KeySpace, range: KeyRange) {
        let (a, b) = (range.start().value(), range.end().value());
        if a <= b {
            self.insert_linear(a, b);
        } else {
            // Wrapping range: split at the top of the linear space.
            self.insert_linear(a, space.max_value());
            self.insert_linear(0, b);
        }
    }

    /// Union with another set.
    pub fn union_with(&mut self, other: &KeyRangeSet) {
        for &(lo, hi) in other.segments.as_slice() {
            self.insert_linear(lo, hi);
        }
    }

    fn insert_linear(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo <= hi);
        // Find all segments overlapping or adjacent to [lo, hi] and fuse.
        let mut new_lo = lo;
        let mut new_hi = hi;
        let mut i = 0;
        let mut first = None;
        while i < self.segments.len() {
            let (slo, shi) = self.segments.as_slice()[i];
            // A segment interacts iff it overlaps or touches [lo, hi].
            let touches = slo <= hi.saturating_add(1) && lo <= shi.saturating_add(1);
            if touches {
                new_lo = new_lo.min(slo);
                new_hi = new_hi.max(shi);
                if first.is_none() {
                    first = Some(i);
                }
                self.segments.remove(i);
            } else if slo > hi {
                break;
            } else {
                i += 1;
            }
        }
        let pos = match first {
            Some(p) => p,
            None => self
                .segments
                .as_slice()
                .partition_point(|&(slo, _)| slo < new_lo),
        };
        // Spill through the pool rather than letting InlineVec allocate.
        if self.segments.inline_is_full() {
            self.segments.spill_to(spill::take(INLINE_SEGS * 2));
        }
        self.segments.insert(pos, (new_lo, new_hi));
    }

    /// The subset of this set lying on the circular arc `(a, b]`.
    ///
    /// This is the paper's `extract-targets(K, n1, n2)` (Figure 4), the
    /// workhorse of the `m-cast` splitting step. When `a == b` the arc is
    /// the full ring and the whole set is returned.
    pub fn extract_arc_oc(&self, space: KeySpace, a: Key, b: Key) -> KeyRangeSet {
        if space.distance_cw(a, b) == 0 {
            return self.clone();
        }
        // Arc (a, b] in linear segments (at most two: it may wrap).
        let (av, bv) = (a.value(), b.value());
        let mut arcs = [(0u64, 0u64); 2];
        let mut n_arcs = 0;
        if av < bv {
            arcs[0] = (av + 1, bv);
            n_arcs = 1;
        } else {
            // Wraps: (a, max] and [0, b].
            if av < space.max_value() {
                arcs[0] = (av + 1, space.max_value());
                n_arcs = 1;
            }
            arcs[n_arcs] = (0, bv);
            n_arcs += 1;
        }
        let mut out = KeyRangeSet::new();
        for &(alo, ahi) in &arcs[..n_arcs] {
            for &(slo, shi) in self.segments.as_slice() {
                let lo = slo.max(alo);
                let hi = shi.min(ahi);
                if lo <= hi {
                    out.insert_linear(lo, hi);
                }
            }
        }
        out
    }

    /// Iterates over every key in the set in increasing linear order.
    pub fn iter_keys(&self, space: KeySpace) -> impl Iterator<Item = Key> + '_ {
        self.segments
            .as_slice()
            .iter()
            .flat_map(move |&(lo, hi)| (lo..=hi).map(move |v| space.key(v)))
    }

    /// Iterates over the linear segments as circular [`KeyRange`]s.
    pub fn iter_ranges(&self, space: KeySpace) -> impl Iterator<Item = KeyRange> + '_ {
        self.segments
            .as_slice()
            .iter()
            .map(move |&(lo, hi)| KeyRange::new(space.key(lo), space.key(hi)))
    }

    /// The smallest key (linear order), if the set is non-empty.
    pub fn min_key(&self, space: KeySpace) -> Option<Key> {
        self.segments
            .as_slice()
            .first()
            .map(|&(lo, _)| space.key(lo))
    }

    /// `true` iff the two sets share at least one key.
    pub fn intersects(&self, other: &KeyRangeSet) -> bool {
        let a = self.segments.as_slice();
        let b = other.segments.as_slice();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (alo, ahi) = a[i];
            let (blo, bhi) = b[j];
            if alo.max(blo) <= ahi.min(bhi) {
                return true;
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

impl fmt::Display for KeyRangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, &(lo, hi)) in self.segments.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}..={hi}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> KeySpace {
        KeySpace::new(5)
    }

    fn set_of(space: KeySpace, pairs: &[(u64, u64)]) -> KeyRangeSet {
        let mut s = KeyRangeSet::new();
        for &(a, b) in pairs {
            s.insert_range(space, KeyRange::new(space.key(a), space.key(b)));
        }
        s
    }

    #[test]
    fn range_basics() {
        let s = sp();
        let r = KeyRange::new(s.key(3), s.key(7));
        assert_eq!(r.count(s), 5);
        assert!(r.contains(s, s.key(3)));
        assert!(r.contains(s, s.key(7)));
        assert!(!r.contains(s, s.key(8)));
        assert_eq!(r.midpoint(s), s.key(5));
        assert_eq!(r.to_string(), "[k3, k7]");
    }

    #[test]
    fn wrapping_range() {
        let s = sp();
        let r = KeyRange::new(s.key(30), s.key(2));
        assert_eq!(r.count(s), 5);
        assert!(r.contains(s, s.key(31)));
        assert!(r.contains(s, s.key(0)));
        assert!(!r.contains(s, s.key(29)));
        assert_eq!(r.midpoint(s), s.key(0));
    }

    #[test]
    fn full_ring_range() {
        let s = sp();
        let r = KeyRange::new(s.key(9), s.key(8));
        assert_eq!(r.count(s), 32);
        assert!(r.contains(s, s.key(9)));
        assert!(r.contains(s, s.key(8)));
        assert!(r.contains(s, s.key(20)));
    }

    #[test]
    fn set_insert_merges_overlaps_and_adjacency() {
        let s = sp();
        let set = set_of(s, &[(1, 3), (5, 7), (4, 4)]);
        // 1..=3, 4, 5..=7 all fuse into one segment.
        assert_eq!(set.segment_count(), 1);
        assert_eq!(set.count(), 7);
        assert!(set.contains(s.key(4)));
        assert!(!set.contains(s.key(0)));
    }

    #[test]
    fn set_insert_disjoint_stays_sorted() {
        let s = sp();
        let set = set_of(s, &[(10, 12), (1, 2), (20, 20)]);
        assert_eq!(set.segment_count(), 3);
        let keys: Vec<u64> = set.iter_keys(s).map(Key::value).collect();
        assert_eq!(keys, vec![1, 2, 10, 11, 12, 20]);
        assert_eq!(set.min_key(s), Some(s.key(1)));
    }

    #[test]
    fn wrapping_insert_splits() {
        let s = sp();
        let set = set_of(s, &[(30, 2)]);
        assert_eq!(set.segment_count(), 2);
        assert_eq!(set.count(), 5);
        assert!(set.contains(s.key(31)));
        assert!(set.contains(s.key(0)));
    }

    #[test]
    fn union_and_display() {
        let s = sp();
        let mut a = set_of(s, &[(1, 2)]);
        let b = set_of(s, &[(4, 5), (2, 3)]);
        a.union_with(&b);
        assert_eq!(a.to_string(), "{1..=5}");
        assert_eq!(KeyRangeSet::new().to_string(), "{}");
    }

    #[test]
    fn extract_arc_simple() {
        let s = sp();
        let set = set_of(s, &[(0, 31)]);
        let part = set.extract_arc_oc(s, s.key(3), s.key(10));
        let keys: Vec<u64> = part.iter_keys(s).map(Key::value).collect();
        assert_eq!(keys, (4..=10).collect::<Vec<_>>());
    }

    #[test]
    fn extract_arc_wrapping() {
        let s = sp();
        let set = set_of(s, &[(29, 31), (0, 1), (15, 16)]);
        // Arc (30, 1] = {31, 0, 1}.
        let part = set.extract_arc_oc(s, s.key(30), s.key(1));
        let keys: Vec<u64> = part.iter_keys(s).map(Key::value).collect();
        assert_eq!(keys, vec![0, 1, 31]);
    }

    #[test]
    fn extract_arc_degenerate_returns_all() {
        let s = sp();
        let set = set_of(s, &[(3, 5)]);
        let part = set.extract_arc_oc(s, s.key(9), s.key(9));
        assert_eq!(part, set);
    }

    #[test]
    fn extract_arc_at_top_of_space() {
        let s = sp();
        let set = set_of(s, &[(0, 31)]);
        // Arc (31, 2] = {0, 1, 2}: the (a, max] half is empty.
        let part = set.extract_arc_oc(s, s.key(31), s.key(2));
        let keys: Vec<u64> = part.iter_keys(s).map(Key::value).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn intersects() {
        let s = sp();
        let a = set_of(s, &[(1, 5), (20, 22)]);
        let b = set_of(s, &[(5, 6)]);
        let c = set_of(s, &[(7, 19), (23, 31)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!KeyRangeSet::new().intersects(&a));
    }

    #[test]
    fn full_set() {
        let s = sp();
        let f = KeyRangeSet::full(s);
        assert_eq!(f.count(), 32);
        assert!(f.contains(s.key(0)));
        assert!(f.contains(s.key(31)));
    }

    /// Few-segment sets stay inline; crossing INLINE_SEGS spills and the
    /// spilled set behaves identically (equality is representation-blind).
    #[test]
    fn spill_preserves_semantics_and_equality() {
        let mut inline = KeyRangeSet::new();
        for i in 0..INLINE_SEGS as u64 {
            inline.insert_linear(i * 10, i * 10 + 2);
        }
        assert!(inline.is_inline());
        let mut wide = inline.clone();
        for i in INLINE_SEGS as u64..(INLINE_SEGS as u64 + 4) {
            wide.insert_linear(i * 10, i * 10 + 2);
        }
        assert!(!wide.is_inline());
        assert_eq!(wide.segment_count(), INLINE_SEGS + 4);
        assert_eq!(wide.count(), (INLINE_SEGS as u64 + 4) * 3);
        // Merging collapses the spilled set back down logically (the
        // representation stays spilled; equality must not care).
        let mut merged = KeyRangeSet::new();
        merged.insert_linear(0, (INLINE_SEGS as u64 + 4) * 10 + 2);
        let mut wide2 = wide.clone();
        wide2.insert_linear(0, (INLINE_SEGS as u64 + 4) * 10 + 2);
        assert_eq!(wide2.segment_count(), 1);
        assert!(!wide2.is_inline());
        assert_eq!(wide2, merged);
        use std::collections::hash_map::DefaultHasher;
        let h = |set: &KeyRangeSet| {
            let mut hasher = DefaultHasher::new();
            set.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&wide2), h(&merged));
    }

    /// Drop returns spilled buffers to the thread-local pool; later spills
    /// reuse them (observable via capacity retention).
    #[test]
    fn spill_pool_recycles_buffers() {
        let make_wide = || {
            let mut set = KeyRangeSet::new();
            for i in 0..(INLINE_SEGS as u64 + 12) {
                set.insert_linear(i * 10, i * 10 + 2);
            }
            set
        };
        // Warm the pool, then build/drop repeatedly: contents must be
        // identical every round (a stale pooled buffer would corrupt).
        let reference = make_wide();
        for _ in 0..100 {
            let set = make_wide();
            assert_eq!(set, reference);
        }
    }
}

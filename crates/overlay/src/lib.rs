//! # cbps-overlay — Chord with a native multicast primitive
//!
//! The structured-overlay substrate of the CBPS reproduction of
//! *"Content-Based Publish-Subscribe over Structured Overlay Networks"*
//! (ICDCS 2005). Implemented from scratch on top of [`cbps_sim`]:
//!
//! * consistent hashing on an `m`-bit ring ([`KeySpace`], [`hash`]),
//! * greedy finger-table routing with a location cache reproducing the
//!   paper's "finger caching" (≈ 2.5 average hops at n = 500, §5.1),
//! * the **`m-cast`** one-to-many primitive of §4.3.1 / Figure 4, plus the
//!   conservative (successor walk) and aggressive (per-key unicast) range
//!   baselines it is compared against,
//! * join / leave / stabilization / finger repair for dynamic membership,
//! * a generic [`OverlayApp`] layering interface used by the pub/sub layer,
//!   with the routed-message mechanics ([`routed`]) and the routing-decision
//!   surface ([`RouteTable`]) factored out so other substrates (e.g. the
//!   Pastry overlay in `cbps-pastry`) reuse them wholesale.
//!
//! # Examples
//!
//! Deliver a payload to every node covering a key range with one `m-cast`:
//!
//! ```
//! use cbps_overlay::{
//!     build_stable, Delivery, KeyRange, KeyRangeSet, OverlayApp, OverlayConfig, OverlayServices,
//! };
//! use cbps_sim::{NetConfig, TraceId, TrafficClass};
//!
//! #[derive(Default)]
//! struct Counter {
//!     deliveries: u32,
//! }
//!
//! impl OverlayApp for Counter {
//!     type Payload = &'static str;
//!     type Timer = ();
//!     fn on_deliver(
//!         &mut self,
//!         _msg: &'static str,
//!         _d: Delivery,
//!         _svc: &mut dyn OverlayServices<&'static str, ()>,
//!     ) {
//!         self.deliveries += 1;
//!     }
//! }
//!
//! let cfg = OverlayConfig::paper_default();
//! let apps: Vec<Counter> = (0..32).map(|_| Counter::default()).collect();
//! let (mut sim, ring) = build_stable(NetConfig::new(7), cfg, apps);
//!
//! let space = cfg.space;
//! let range = KeyRange::new(space.key(100), space.key(2100));
//! let targets = KeyRangeSet::of_range(space, range);
//! let expected = ring.covering_nodes(&targets).len() as u32;
//!
//! sim.with_node(0, |node, ctx| {
//!     node.app_call(ctx, |_app, svc| {
//!         svc.mcast(&targets, TrafficClass::OTHER, "hello", TraceId::NONE);
//!     })
//! });
//! sim.run();
//!
//! let delivered: u32 = sim.nodes().map(|(_, n)| n.app().deliveries).sum();
//! assert_eq!(delivered, expected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod app;
mod builder;
mod cache;
mod config;
pub mod hash;
mod inline;
mod key;
mod msg;
mod node;
mod range;
mod ring;
mod route;
pub mod routed;
mod scratch;
mod services;
mod state;
mod timer;

pub use app::{Delivery, OverlayApp, OverlaySvc};
pub use builder::{
    assign_node_keys, build_indexed, build_jobs, build_routing_states, build_stable, set_build_jobs,
};
pub use cache::LocationCache;
pub use config::OverlayConfig;
pub use inline::InlineVec;
pub use key::{Key, KeySpace};
pub use msg::{take_payload, Envelope, OverlayMsg};
pub use node::ChordNode;
pub use range::{KeyRange, KeyRangeSet, INLINE_SEGS};
pub use ring::{FingerGrid, Peer, RingView};
pub use route::RouteTable;
pub use scratch::{Bundles, PeerBuf};
pub use services::OverlayServices;
pub use state::RoutingState;
pub use timer::OverlayTimer;

#[cfg(test)]
mod tests {
    use super::*;
    use cbps_sim::{NetConfig, NodeIdx, Simulator, TraceId, TrafficClass};

    /// Records every delivery with its metadata.
    #[derive(Default)]
    struct Recorder {
        deliveries: Vec<(String, u32, KeyRangeSet)>,
        directs: Vec<(NodeIdx, String)>,
    }

    impl OverlayApp for Recorder {
        type Payload = String;
        type Timer = ();

        fn on_deliver(
            &mut self,
            payload: String,
            d: Delivery,
            _svc: &mut dyn OverlayServices<String, ()>,
        ) {
            self.deliveries.push((payload, d.hops, d.targets_here));
        }

        fn on_direct(
            &mut self,
            from: Peer,
            payload: String,
            _svc: &mut dyn OverlayServices<String, ()>,
        ) {
            self.directs.push((from.idx, payload));
        }
    }

    fn network(n: usize, seed: u64) -> (Simulator<ChordNode<Recorder>>, RingView, OverlayConfig) {
        let cfg = OverlayConfig::paper_default();
        let apps: Vec<Recorder> = (0..n).map(|_| Recorder::default()).collect();
        let (sim, ring) = build_stable(NetConfig::new(seed), cfg, apps);
        (sim, ring, cfg)
    }

    #[test]
    fn unicast_reaches_exactly_the_covering_node() {
        let (mut sim, ring, cfg) = network(40, 3);
        let space = cfg.space;
        for probe in [0u64, 17, 4095, 8191, 5000] {
            let key = space.key(probe);
            let expect = ring.successor(key).idx;
            sim.with_node(5, |node, ctx| {
                node.app_call(ctx, |_, svc| {
                    svc.send(key, TrafficClass::OTHER, format!("p{probe}"), TraceId::NONE);
                })
            });
            sim.run();
            let holders: Vec<NodeIdx> = sim
                .nodes()
                .filter(|(_, n)| {
                    n.app()
                        .deliveries
                        .iter()
                        .any(|(p, _, _)| p == &format!("p{probe}"))
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders, vec![expect], "probe key {probe}");
        }
    }

    #[test]
    fn unicast_to_own_key_costs_no_messages() {
        let (mut sim, _ring, _cfg) = network(20, 4);
        let own_key = sim.node(7).me().key;
        sim.with_node(7, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.send(
                    own_key,
                    TrafficClass::OTHER,
                    "self".to_owned(),
                    TraceId::NONE,
                );
            })
        });
        sim.run();
        assert_eq!(sim.metrics().total_messages(), 0);
        assert_eq!(sim.node(7).app().deliveries.len(), 1);
        assert_eq!(sim.node(7).app().deliveries[0].1, 0); // zero hops
    }

    #[test]
    fn mcast_delivers_exactly_once_to_every_covering_node() {
        let (mut sim, ring, cfg) = network(60, 5);
        let space = cfg.space;
        let mut targets = KeyRangeSet::new();
        targets.insert_range(space, KeyRange::new(space.key(8000), space.key(600))); // wraps
        targets.insert_range(space, KeyRange::new(space.key(3000), space.key(3500)));
        let expected: Vec<NodeIdx> = ring
            .covering_nodes(&targets)
            .iter()
            .map(|p| p.idx)
            .collect();

        sim.with_node(2, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.mcast(
                    &targets,
                    TrafficClass::OTHER,
                    "mc".to_owned(),
                    TraceId::NONE,
                );
            })
        });
        sim.run();

        let mut got: Vec<NodeIdx> = Vec::new();
        for (idx, n) in sim.nodes() {
            let hits = n
                .app()
                .deliveries
                .iter()
                .filter(|(p, _, _)| p == "mc")
                .count();
            assert!(hits <= 1, "node {idx} delivered {hits} times");
            if hits == 1 {
                got.push(idx);
            }
        }
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected_sorted);
    }

    #[test]
    fn mcast_local_subsets_partition_targets() {
        let (mut sim, _ring, cfg) = network(60, 6);
        let space = cfg.space;
        let targets = KeyRangeSet::of_range(space, KeyRange::new(space.key(0), space.key(8191)));
        sim.with_node(0, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.mcast(
                    &targets,
                    TrafficClass::OTHER,
                    "all".to_owned(),
                    TraceId::NONE,
                );
            })
        });
        sim.run();
        let mut union = KeyRangeSet::new();
        let mut total = 0u64;
        for (_, n) in sim.nodes() {
            for (_, _, local) in &n.app().deliveries {
                assert!(!union.intersects(local), "overlapping local target sets");
                union.union_with(local);
                total += local.count();
            }
        }
        assert_eq!(total, space.size());
    }

    #[test]
    fn mcast_message_count_beats_naive_unicast() {
        // Sending to a wide range: m-cast must use O(log n + |nodes|)
        // messages while per-key unicast pays per key.
        let (mut sim, ring, cfg) = network(100, 7);
        let space = cfg.space;
        let range = KeyRange::new(space.key(1000), space.key(3000));
        let targets = KeyRangeSet::of_range(space, range);
        let covering = ring.covering_nodes(&targets).len() as u64;

        sim.with_node(1, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.mcast(&targets, TrafficClass::OTHER, "m".to_owned(), TraceId::NONE);
            })
        });
        sim.run();
        let mcast_msgs = sim.metrics().messages(TrafficClass::OTHER);
        // Bound from the paper: log2(n) + covering nodes, with slack for
        // the relay hops of sparse fingers.
        assert!(
            mcast_msgs <= 2 * (covering + 14),
            "m-cast used {mcast_msgs} msgs for {covering} covering nodes"
        );

        let (mut sim2, _, _) = network(100, 7);
        sim2.with_node(1, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.ucast_keys(&targets, TrafficClass::OTHER, "u".to_owned(), TraceId::NONE);
            })
        });
        sim2.run();
        let ucast_msgs = sim2.metrics().messages(TrafficClass::OTHER);
        assert!(
            ucast_msgs > 5 * mcast_msgs,
            "expected unicast ({ucast_msgs}) ≫ m-cast ({mcast_msgs})"
        );
    }

    #[test]
    fn walk_covers_range_with_linear_dilation() {
        let (mut sim, ring, cfg) = network(60, 8);
        let space = cfg.space;
        let range = KeyRange::new(space.key(2000), space.key(4000));
        let targets = KeyRangeSet::of_range(space, range);
        let expected: Vec<NodeIdx> = ring
            .covering_nodes(&targets)
            .iter()
            .map(|p| p.idx)
            .collect();

        sim.with_node(3, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.walk(range, TrafficClass::OTHER, "w".to_owned(), TraceId::NONE);
            })
        });
        sim.run();

        let mut got: Vec<NodeIdx> = Vec::new();
        let mut max_hops = 0;
        for (idx, n) in sim.nodes() {
            for (p, hops, _) in &n.app().deliveries {
                if p == "w" {
                    got.push(idx);
                    max_hops = max_hops.max(*hops);
                }
            }
        }
        got.sort_unstable();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        assert_eq!(got, expected_sorted);
        // Dilation grows with the number of covering nodes (the paper's
        // O(log n + N) — linear, unlike m-cast's O(log n)).
        assert!(max_hops as usize + 1 >= expected.len());
    }

    #[test]
    fn direct_messages_are_one_hop() {
        let (mut sim, _ring, _cfg) = network(10, 9);
        let target = sim.node(4).me();
        sim.with_node(0, |node, ctx| {
            node.app_call(ctx, |_, svc| {
                svc.direct(target, TrafficClass::COLLECT, "d".to_owned());
            })
        });
        sim.run();
        assert_eq!(sim.metrics().messages(TrafficClass::COLLECT), 1);
        assert_eq!(sim.node(4).app().directs, vec![(0, "d".to_owned())]);
    }

    #[test]
    fn lookup_dilation_is_logarithmic_without_cache() {
        let cfg = OverlayConfig::paper_default().with_cache_capacity(0);
        let apps: Vec<Recorder> = (0..128).map(|_| Recorder::default()).collect();
        let (mut sim, _ring) = build_stable(NetConfig::new(11), cfg, apps);
        let space = cfg.space;
        for i in 0..400u64 {
            let src = (i % 128) as usize;
            let target = space.key(i * 20 + 7);
            sim.with_node(src, |node, ctx| node.start_lookup(target, ctx));
        }
        sim.run();
        let h = sim.metrics().histogram("lookup.hops").unwrap().clone();
        assert_eq!(h.len(), 400);
        // ~0.5 * log2(128) = 3.5 expected; allow generous slack.
        assert!(h.mean() > 1.5 && h.mean() < 5.5, "mean hops {}", h.mean());
        assert!(h.max().unwrap() <= 10);
    }

    #[test]
    fn location_cache_reduces_lookup_hops() {
        let run = |cache: usize| {
            let cfg = OverlayConfig::paper_default().with_cache_capacity(cache);
            let apps: Vec<Recorder> = (0..128).map(|_| Recorder::default()).collect();
            let (mut sim, _ring) = build_stable(NetConfig::new(12), cfg, apps);
            let space = cfg.space;
            // The cache learns opportunistically from lookup traffic.
            for i in 0..3000u64 {
                let src = ((i * 13) % 128) as usize;
                let target = space.key((i * 97 + 5) % space.size());
                sim.with_node(src, |node, ctx| node.start_lookup(target, ctx));
                sim.run();
            }
            sim.metrics().histogram("lookup.hops").unwrap().mean()
        };
        let cold = run(0);
        let warm = run(96);
        assert!(
            warm < cold - 0.8,
            "cache should cut mean hops: cold {cold:.2}, warm {warm:.2}"
        );
    }
}

//! Timer tokens of a Chord node.

/// Timers a [`crate::ChordNode`] arms, wrapping the application's own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayTimer<T> {
    /// Periodic stabilization (successor check + notify).
    Stabilize,
    /// Periodic finger repair (one finger per fire, round-robin).
    FixFingers,
    /// A liveness probe went unanswered for too long.
    ProbeTimeout {
        /// Correlation token of the outstanding probe.
        token: u64,
    },
    /// An application timer.
    App(T),
}

//! The location cache behind the paper's "finger caching" remark.
//!
//! §5.1 reports that lookups at `n = 500` averaged ≈ 2.5 hops — "better
//! than log n due to the finger caching mechanism". We reproduce that
//! effect with a bounded LRU cache of `(node key → node address)` entries
//! learned opportunistically from message traffic; routing considers cache
//! entries alongside the finger table when picking the closest preceding
//! hop.

use std::collections::HashMap;

use crate::key::{Key, KeySpace};
use crate::ring::Peer;

/// A bounded LRU set of known remote nodes, keyed by ring identifier.
///
/// # Examples
///
/// ```
/// use cbps_overlay::{KeySpace, LocationCache, Peer};
///
/// let s = KeySpace::new(8);
/// let mut cache = LocationCache::new(2);
/// cache.learn(Peer { idx: 1, key: s.key(10) });
/// cache.learn(Peer { idx: 2, key: s.key(20) });
/// cache.learn(Peer { idx: 3, key: s.key(30) }); // evicts the LRU entry
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct LocationCache {
    capacity: usize,
    clock: u64,
    /// key → (address, last-touched stamp)
    entries: HashMap<Key, (usize, u64)>,
}

impl LocationCache {
    /// Creates a cache holding at most `capacity` entries. Zero disables
    /// caching entirely.
    ///
    /// The table itself is allocated on the first [`Self::learn`] (or by
    /// [`Self::warm`]): a converged deployment builds one cache per node,
    /// and most nodes in a large ring never see enough traffic to cache
    /// anything, so eager tables would dominate build memory.
    pub fn new(capacity: usize) -> Self {
        LocationCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// Pre-faults the table to its steady-state capacity, so the next
    /// `learn` performs no heap allocation. Idempotent.
    pub fn warm(&mut self) {
        if self.capacity > 0 && self.entries.capacity() == 0 {
            self.entries.reserve(self.capacity.min(1024));
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records that `peer` exists, refreshing recency; evicts the least
    /// recently used entry when full.
    pub fn learn(&mut self, peer: Peer) {
        if self.capacity == 0 {
            return;
        }
        self.warm();
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.entries.get_mut(&peer.key) {
            *slot = (peer.idx, clock);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &(_, stamp))| stamp) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(peer.key, (peer.idx, clock));
    }

    /// Forgets a peer (e.g. after observing its failure).
    pub fn forget(&mut self, key: Key) {
        self.entries.remove(&key);
    }

    /// Every cached peer registered under simulator address `idx`.
    pub fn peers_at(&self, idx: usize) -> Vec<Peer> {
        self.entries
            .iter()
            .filter(|(_, &(i, _))| i == idx)
            .map(|(&key, &(i, _))| Peer { idx: i, key })
            .collect()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Among cached nodes, the one whose key lies strictly within the arc
    /// `(from, target)` and is closest to `target` — the cache's candidate
    /// for Chord's *closest preceding node*. Touches the returned entry's
    /// recency.
    pub fn closest_preceding(&mut self, space: KeySpace, from: Key, target: Key) -> Option<Peer> {
        let best = self
            .entries
            .iter()
            .filter(|(&k, _)| space.in_arc_oo(k, from, target))
            .max_by_key(|(&k, _)| space.distance_cw(from, k))
            .map(|(&k, &(idx, _))| Peer { idx, key: k });
        if let Some(peer) = best {
            self.clock += 1;
            let clock = self.clock;
            if let Some(slot) = self.entries.get_mut(&peer.key) {
                slot.1 = clock;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(idx: usize, key: u64, s: KeySpace) -> Peer {
        Peer {
            idx,
            key: s.key(key),
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let s = KeySpace::new(8);
        let mut c = LocationCache::new(0);
        c.learn(peer(1, 5, s));
        assert!(c.is_empty());
        assert_eq!(c.closest_preceding(s, s.key(0), s.key(100)), None);
    }

    #[test]
    fn lru_eviction_order() {
        let s = KeySpace::new(8);
        let mut c = LocationCache::new(2);
        c.learn(peer(1, 10, s));
        c.learn(peer(2, 20, s));
        c.learn(peer(1, 10, s)); // refresh 10; 20 becomes LRU
        c.learn(peer(3, 30, s));
        assert_eq!(c.len(), 2);
        assert!(c.closest_preceding(s, s.key(9), s.key(11)).is_some()); // 10 kept
        assert_eq!(c.closest_preceding(s, s.key(19), s.key(21)), None); // 20 gone
    }

    #[test]
    fn closest_preceding_picks_nearest_below_target() {
        let s = KeySpace::new(8);
        let mut c = LocationCache::new(8);
        for (i, k) in [10u64, 50, 90, 130].iter().enumerate() {
            c.learn(peer(i, *k, s));
        }
        let got = c.closest_preceding(s, s.key(0), s.key(100)).unwrap();
        assert_eq!(got.key, s.key(90));
        // Wrapping arc (200, 60): candidates 10 and 50; closest preceding 60
        // is 50.
        let got = c.closest_preceding(s, s.key(200), s.key(60)).unwrap();
        assert_eq!(got.key, s.key(50));
    }

    #[test]
    fn target_itself_is_excluded() {
        let s = KeySpace::new(8);
        let mut c = LocationCache::new(4);
        c.learn(peer(1, 100, s));
        // Arc (0, 100) is open at 100: the node at exactly 100 must not be
        // returned as a *preceding* hop.
        assert_eq!(c.closest_preceding(s, s.key(0), s.key(100)), None);
    }

    #[test]
    fn forget_and_clear() {
        let s = KeySpace::new(8);
        let mut c = LocationCache::new(4);
        c.learn(peer(1, 10, s));
        c.learn(peer(2, 20, s));
        c.forget(s.key(10));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }
}

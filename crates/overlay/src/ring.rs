//! A global, sorted view of ring membership.
//!
//! [`RingView`] is the "god's eye" picture of which node covers which key.
//! It is used to bootstrap stable rings (computing correct predecessor,
//! successor-list and finger entries directly, as the paper's experiments
//! assume a converged overlay), and by tests as an oracle for routing and
//! multicast coverage. Protocol logic on the nodes themselves never
//! consults it.

use cbps_sim::NodeIdx;

use crate::key::{Key, KeySpace};
use crate::range::KeyRangeSet;

/// A node's identity as seen by other nodes: its simulator index (standing
/// in for a network address) and its ring key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Peer {
    /// Simulator index (the "IP address" of the node).
    pub idx: NodeIdx,
    /// The node's identifier on the ring.
    pub key: Key,
}

/// Sorted membership of a Chord ring.
///
/// # Examples
///
/// ```
/// use cbps_overlay::{KeySpace, Peer, RingView};
///
/// let s = KeySpace::new(5);
/// // The paper's Figure 1 ring: nodes 1, 8, 14, 20, 21, 32 % 32 ...
/// let ring = RingView::new(s, vec![
///     Peer { idx: 0, key: s.key(1) },
///     Peer { idx: 1, key: s.key(14) },
///     Peer { idx: 2, key: s.key(20) },
/// ]);
/// // Keys 13, 17, 26 are covered by nodes 14, 20 and 1 respectively.
/// assert_eq!(ring.successor(s.key(13)).key, s.key(14));
/// assert_eq!(ring.successor(s.key(17)).key, s.key(20));
/// assert_eq!(ring.successor(s.key(26)).key, s.key(1));
/// ```
#[derive(Clone, Debug)]
pub struct RingView {
    space: KeySpace,
    /// Sorted by key, unique keys.
    peers: Vec<Peer>,
}

impl RingView {
    /// Builds a view from arbitrary-order peers.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty or two peers share a key.
    pub fn new(space: KeySpace, mut peers: Vec<Peer>) -> Self {
        assert!(!peers.is_empty(), "a ring needs at least one node");
        peers.sort_by_key(|p| p.key);
        for w in peers.windows(2) {
            assert_ne!(w[0].key, w[1].key, "duplicate ring key {}", w[0].key);
        }
        RingView { space, peers }
    }

    /// The key space of this ring.
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `false`: a view always holds at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All peers in increasing key order.
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// The node covering `key`: the first node whose identifier is equal to
    /// or follows `key` on the ring (Chord's `successor(key)`).
    pub fn successor(&self, key: Key) -> Peer {
        let i = self.peers.partition_point(|p| p.key < key);
        if i == self.peers.len() {
            self.peers[0]
        } else {
            self.peers[i]
        }
    }

    /// The closest node whose identifier strictly precedes `key`.
    pub fn predecessor(&self, key: Key) -> Peer {
        let i = self.peers.partition_point(|p| p.key < key);
        if i == 0 {
            *self.peers.last().expect("non-empty")
        } else {
            self.peers[i - 1]
        }
    }

    /// The immediate ring successor of the *node* at `key` (skipping the
    /// node itself).
    pub fn next_node(&self, key: Key) -> Peer {
        self.successor(self.space.add(key, 1))
    }

    /// The `count` nodes following the node at `key` clockwise (wrapping,
    /// possibly fewer if the ring is smaller).
    pub fn successors_of(&self, key: Key, count: usize) -> Vec<Peer> {
        let mut out = Vec::with_capacity(count);
        let mut cur = key;
        for _ in 0..count.min(self.peers.len().saturating_sub(1).max(1)) {
            let next = self.next_node(cur);
            if next.key == key {
                break;
            }
            out.push(next);
            cur = next.key;
        }
        out
    }

    /// The correct finger table of the node at `key`: entry `i` (0-based)
    /// is `successor(key + 2^i)`.
    pub fn fingers_of(&self, key: Key) -> Vec<Peer> {
        (0..self.space.bits())
            .map(|i| self.successor(self.space.finger_target(key, i)))
            .collect()
    }

    /// All n×m finger tables at once: `grid.get(pos, i)` is the sorted-table
    /// position of `successor(k_pos + 2^i)`, where `pos` indexes
    /// [`Self::peers`]. Derived in O(n·m) with one monotone pointer sweep
    /// per level instead of n·m independent binary searches: for a fixed
    /// distance d = 2^i the wrapped targets (nodes with k ≥ M−d) all land in
    /// [0, d) and the rest ascend through [d, M), so visiting the wrapped
    /// suffix first makes the whole target sequence non-decreasing.
    pub fn finger_grid(&self) -> FingerGrid {
        let n = self.peers.len();
        let bits = self.space.bits() as usize;
        let m = self.space.size();
        let mut grid = vec![0u32; n * bits];
        for i in 0..bits {
            let d = 1u64 << i;
            // First sorted position whose key wraps past the ring end.
            let wrap_from = self.peers.partition_point(|p| p.key.value() < m - d);
            let mut p = 0usize;
            let mut fill = |grid: &mut [u32], pos: usize, target: u64| {
                while p < n && self.peers[p].key.value() < target {
                    p += 1;
                }
                grid[pos * bits + i] = if p == n { 0 } else { p as u32 };
            };
            for pos in wrap_from..n {
                fill(&mut grid, pos, self.peers[pos].key.value() + d - m);
            }
            for pos in 0..wrap_from {
                fill(&mut grid, pos, self.peers[pos].key.value() + d);
            }
        }
        FingerGrid { bits, grid }
    }

    /// Every distinct node covering at least one key of `targets`.
    pub fn covering_nodes(&self, targets: &KeyRangeSet) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for range in targets.iter_ranges(self.space) {
            // Walk nodes from successor(start); a node is the last coverer
            // once its key reaches or passes the range end.
            let first = self.successor(range.start());
            let mut node = first;
            loop {
                if !out.contains(&node) {
                    out.push(node);
                }
                // Keys of the range beyond `node.key` remain exactly when
                // node.key lies strictly inside the range.
                if range.contains(self.space, node.key) && node.key != range.end() {
                    let next = self.next_node(node.key);
                    if next == first {
                        break; // wrapped all the way around
                    }
                    node = next;
                } else {
                    break;
                }
            }
        }
        out.sort_by_key(|p| p.key);
        out.dedup();
        out
    }
}

/// Dense n×m finger table from [`RingView::finger_grid`]: all nodes'
/// fingers as sorted-table positions, row-major by node position.
#[derive(Clone, Debug)]
pub struct FingerGrid {
    bits: usize,
    grid: Vec<u32>,
}

impl FingerGrid {
    /// Sorted-table position of finger `level` of the node at sorted
    /// position `pos`.
    pub fn get(&self, pos: usize, level: usize) -> usize {
        self.grid[pos * self.bits + level] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::KeyRange;

    fn ring() -> (KeySpace, RingView) {
        let s = KeySpace::new(5);
        let peers = [1u64, 8, 14, 20, 27]
            .iter()
            .enumerate()
            .map(|(i, &k)| Peer {
                idx: i,
                key: s.key(k),
            })
            .collect();
        (s, RingView::new(s, peers))
    }

    #[test]
    fn successor_and_predecessor() {
        let (s, r) = ring();
        assert_eq!(r.successor(s.key(8)).key, s.key(8)); // exact hit
        assert_eq!(r.successor(s.key(9)).key, s.key(14));
        assert_eq!(r.successor(s.key(28)).key, s.key(1)); // wraps
        assert_eq!(r.predecessor(s.key(8)).key, s.key(1));
        assert_eq!(r.predecessor(s.key(1)).key, s.key(27)); // wraps
    }

    #[test]
    fn next_node_skips_self() {
        let (s, r) = ring();
        assert_eq!(r.next_node(s.key(8)).key, s.key(14));
        assert_eq!(r.next_node(s.key(27)).key, s.key(1));
    }

    #[test]
    fn successors_list() {
        let (s, r) = ring();
        let succs = r.successors_of(s.key(20), 3);
        let keys: Vec<u64> = succs.iter().map(|p| p.key.value()).collect();
        assert_eq!(keys, vec![27, 1, 8]);
        // Asking for more than the ring holds stops after a full loop.
        let all = r.successors_of(s.key(20), 10);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn fingers_match_chord_definition() {
        let (s, r) = ring();
        let f = r.fingers_of(s.key(8));
        // Targets 9, 10, 12, 16, 24 → successors 14, 14, 14, 20, 27.
        let keys: Vec<u64> = f.iter().map(|p| p.key.value()).collect();
        assert_eq!(keys, vec![14, 14, 14, 20, 27]);
    }

    #[test]
    fn finger_grid_matches_per_node_fingers() {
        let (s, r) = ring();
        let grid = r.finger_grid();
        for (pos, p) in r.peers().iter().enumerate() {
            let expect = r.fingers_of(p.key);
            for (i, &want) in expect.iter().enumerate() {
                assert_eq!(r.peers()[grid.get(pos, i)], want, "node {pos} level {i}");
            }
        }
        // Including rings containing the top-of-space key, where every
        // finger target of that node wraps.
        let top = RingView::new(
            s,
            vec![
                Peer {
                    idx: 0,
                    key: s.key(31),
                },
                Peer {
                    idx: 1,
                    key: s.key(2),
                },
            ],
        );
        let g = top.finger_grid();
        for (pos, p) in top.peers().iter().enumerate() {
            for (i, &want) in top.fingers_of(p.key).iter().enumerate() {
                assert_eq!(top.peers()[g.get(pos, i)], want, "top node {pos} level {i}");
            }
        }
    }

    #[test]
    fn covering_nodes_of_range() {
        let (s, r) = ring();
        // Keys 9..=20 are covered by nodes 14 and 20.
        let set = KeyRangeSet::of_range(s, KeyRange::new(s.key(9), s.key(20)));
        let cover: Vec<u64> = r
            .covering_nodes(&set)
            .iter()
            .map(|p| p.key.value())
            .collect();
        assert_eq!(cover, vec![14, 20]);
        // Wrapping range 21..=2 → node 27 covers (20,27], node 1 covers
        // (27,1], and node 8 covers (1,8] which contains key 2.
        let set = KeyRangeSet::of_range(s, KeyRange::new(s.key(21), s.key(2)));
        let cover: Vec<u64> = r
            .covering_nodes(&set)
            .iter()
            .map(|p| p.key.value())
            .collect();
        assert_eq!(cover, vec![1, 8, 27]);
    }

    #[test]
    fn covering_nodes_singleton_and_full() {
        let (s, r) = ring();
        let one = KeyRangeSet::of_key(s, s.key(15));
        assert_eq!(r.covering_nodes(&one)[0].key, s.key(20));
        let full = KeyRangeSet::full(s);
        assert_eq!(r.covering_nodes(&full).len(), 5);
    }

    #[test]
    fn single_node_ring_covers_everything() {
        let s = KeySpace::new(5);
        let r = RingView::new(
            s,
            vec![Peer {
                idx: 0,
                key: s.key(7),
            }],
        );
        assert_eq!(r.successor(s.key(0)).key, s.key(7));
        assert_eq!(r.predecessor(s.key(7)).key, s.key(7));
        let full = KeyRangeSet::full(s);
        assert_eq!(r.covering_nodes(&full).len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate ring key")]
    fn duplicate_keys_rejected() {
        let s = KeySpace::new(5);
        let _ = RingView::new(
            s,
            vec![
                Peer {
                    idx: 0,
                    key: s.key(3),
                },
                Peer {
                    idx: 1,
                    key: s.key(3),
                },
            ],
        );
    }
}

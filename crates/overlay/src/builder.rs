//! Constructing overlay networks inside a simulator.
//!
//! Two modes:
//!
//! * [`build_stable`] — the experiments' mode: every node starts with
//!   converged predecessor/successor/finger state computed from a global
//!   [`RingView`] (the paper's simulations run on an already-formed Chord
//!   ring and "exploit the Chord infrastructure" for maintenance);
//! * incremental joins through [`crate::ChordNode::start_join`] plus
//!   stabilization, exercised by the churn tests.

use std::sync::atomic::{AtomicUsize, Ordering};

use cbps_sim::{NetConfig, SimTime, Simulator};

use crate::app::OverlayApp;
use crate::config::OverlayConfig;
use crate::hash::key_of_bytes;
use crate::key::Key;
use crate::node::ChordNode;
use crate::ring::{Peer, RingView};
use crate::state::RoutingState;
use crate::timer::OverlayTimer;

/// Worker threads used by the stable builders ([`build_stable`] and the
/// Pastry equivalent) for converged-state construction. Construction output
/// is a pure function of the ring table, so any job count produces
/// identical networks; 1 (the default) builds inline with no threads.
static BUILD_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the builder worker count (clamped to at least 1).
pub fn set_build_jobs(jobs: usize) {
    BUILD_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// Current builder worker count.
pub fn build_jobs() -> usize {
    BUILD_JOBS.load(Ordering::Relaxed).max(1)
}

/// Renders `node-{i}#{attempt}` into `buf` and returns the filled length.
/// Byte-identical to `format!("node-{i}#{attempt}")`, so key placement (and
/// with it every recorded table and fingerprint) is unchanged — but with no
/// per-attempt heap allocation.
fn render_node_name(buf: &mut [u8; 40], i: usize, attempt: u32) -> usize {
    fn write_decimal(buf: &mut [u8], v: u64) -> usize {
        let mut digits = [0u8; 20];
        let mut v = v;
        let mut n = 0;
        loop {
            digits[n] = b'0' + (v % 10) as u8;
            v /= 10;
            n += 1;
            if v == 0 {
                break;
            }
        }
        for (k, d) in digits[..n].iter().rev().enumerate() {
            buf[k] = *d;
        }
        n
    }
    buf[..5].copy_from_slice(b"node-");
    let mut len = 5 + write_decimal(&mut buf[5..], i as u64);
    buf[len] = b'#';
    len += 1;
    len + write_decimal(&mut buf[len..], u64::from(attempt))
}

/// Assigns distinct ring keys to `n` nodes by consistent hashing of their
/// names, rehashing on collision (small key spaces collide readily: 500
/// nodes in a 2^13 space expect ~15 birthday collisions).
pub fn assign_node_keys(cfg: &OverlayConfig, n: usize) -> Vec<Key> {
    assert!(
        (n as u64) <= cfg.space.size(),
        "cannot place {n} nodes in a key space of {}",
        cfg.space.size()
    );
    let mut used = std::collections::HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    let mut name = [0u8; 40];
    for i in 0..n {
        let mut attempt = 0u32;
        let key = loop {
            let len = render_node_name(&mut name, i, attempt);
            let candidate = key_of_bytes(cfg.space, &name[..len]);
            if used.insert(candidate) {
                break candidate;
            }
            attempt += 1;
        };
        keys.push(key);
    }
    keys
}

/// Runs `build_one(idx)` for `0..n` across [`build_jobs`] worker threads on
/// contiguous index chunks and returns the results in index order. With one
/// job (the default) this is a plain inline loop. Used by the stable
/// builders for per-node converged state, which is a pure function of the
/// shared ring table — so the output is identical at any job count.
pub fn build_indexed<T, F>(n: usize, build_one: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = build_jobs().min(n).max(1);
    if jobs == 1 {
        return (0..n).map(build_one).collect();
    }
    let chunk = n.div_ceil(jobs);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let build_one = &build_one;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(build_one).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("builder worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Converged routing state for every node of `ring`, in node-index order.
/// Neighbor lists come from ring adjacency and fingers from the batched
/// [`RingView::finger_grid`], so the whole pass is O(n·m) with no per-node
/// ring queries; construction fans out over [`build_jobs`] workers.
pub fn build_routing_states(cfg: &OverlayConfig, ring: &RingView) -> Vec<RoutingState> {
    let sorted = ring.peers();
    let n = sorted.len();
    let bits = cfg.space.bits() as usize;
    let mut peer_of_idx = vec![
        Peer {
            idx: 0,
            key: cfg.space.key(0),
        };
        n
    ];
    let mut pos_of_idx = vec![0u32; n];
    for (pos, p) in sorted.iter().enumerate() {
        peer_of_idx[p.idx] = *p;
        pos_of_idx[p.idx] = pos as u32;
    }
    if n == 1 {
        return vec![RoutingState::new(*cfg, peer_of_idx[0])];
    }
    let grid = ring.finger_grid();
    let succ_count = cfg.succ_list_len.min(n - 1);
    build_indexed(n, |idx| {
        let me = peer_of_idx[idx];
        let pos = pos_of_idx[idx] as usize;
        let mut state = RoutingState::new(*cfg, me);
        state.set_predecessor(Some(sorted[(pos + n - 1) % n]));
        state.set_successor_slice((1..=succ_count).map(|k| sorted[(pos + k) % n]));
        for i in 0..bits {
            state.set_finger(i, sorted[grid.get(pos, i)]);
        }
        state
    })
}

/// Builds a converged ring of `apps.len()` nodes and returns the simulator
/// together with the global ring view (node index `i` hosts `apps[i]`).
///
/// When the overlay config enables maintenance, stabilize and finger timers
/// are armed at staggered offsets.
///
/// # Panics
///
/// Panics if `apps` is empty or larger than the key space.
pub fn build_stable<A: OverlayApp>(
    net: NetConfig,
    cfg: OverlayConfig,
    apps: Vec<A>,
) -> (Simulator<ChordNode<A>>, RingView) {
    assert!(!apps.is_empty(), "a network needs at least one node");
    let n = apps.len();
    let keys = assign_node_keys(&cfg, n);
    let peers: Vec<Peer> = keys
        .iter()
        .enumerate()
        .map(|(idx, &key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(cfg.space, peers);

    let states = build_routing_states(&cfg, &ring);
    let mut sim = Simulator::new(net);
    for (idx, (state, app)) in states.into_iter().zip(apps).enumerate() {
        let added = sim.add_node(ChordNode::new(state, app));
        debug_assert_eq!(added, idx);
    }

    if cfg.maintenance {
        for idx in 0..n {
            let s_off = sim
                .rng_mut()
                .gen_range(0..cfg.stabilize_period.as_micros().max(1));
            let f_off = sim
                .rng_mut()
                .gen_range(0..cfg.fix_fingers_period.as_micros().max(1));
            sim.arm_timer_at(SimTime::from_micros(s_off), idx, OverlayTimer::Stabilize);
            sim.arm_timer_at(SimTime::from_micros(f_off), idx, OverlayTimer::FixFingers);
        }
    }

    (sim, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Delivery;
    use crate::key::KeySpace;
    use crate::services::OverlayServices;

    /// Minimal app that remembers what it was delivered.
    #[derive(Default)]
    struct Sink {
        got: Vec<u64>,
    }

    impl OverlayApp for Sink {
        type Payload = u64;
        type Timer = ();
        fn on_deliver(
            &mut self,
            payload: u64,
            _delivery: Delivery,
            _svc: &mut dyn OverlayServices<u64, ()>,
        ) {
            self.got.push(payload);
        }
    }

    #[test]
    fn keys_are_distinct_even_in_tiny_spaces() {
        let cfg = OverlayConfig::paper_default().with_space(KeySpace::new(7));
        let keys = assign_node_keys(&cfg, 128); // fills the space entirely
        let mut set: Vec<u64> = keys.iter().map(|k| k.value()).collect();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 128);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_nodes_rejected() {
        let cfg = OverlayConfig::paper_default().with_space(KeySpace::new(3));
        let _ = assign_node_keys(&cfg, 9);
    }

    #[test]
    fn stable_ring_state_is_converged() {
        let cfg = OverlayConfig::paper_default();
        let apps: Vec<Sink> = (0..50).map(|_| Sink::default()).collect();
        let (sim, ring) = build_stable(NetConfig::new(1), cfg, apps);
        assert_eq!(sim.len(), 50);
        for (idx, node) in sim.nodes() {
            let me = node.me();
            assert_eq!(me.idx, idx);
            let st = node.routing();
            assert_eq!(st.predecessor().unwrap(), ring.predecessor(me.key));
            assert_eq!(st.successor().unwrap(), ring.next_node(me.key));
            for (i, f) in st.fingers().enumerate() {
                let expect = ring.successor(cfg.space.finger_target(me.key, i as u32));
                if expect.key == me.key {
                    assert_eq!(f, None);
                } else {
                    assert_eq!(f, Some(expect), "finger {i} of node {idx}");
                }
            }
        }
    }

    #[test]
    fn single_node_network() {
        let cfg = OverlayConfig::paper_default();
        let (sim, ring) = build_stable(NetConfig::new(1), cfg, vec![Sink::default()]);
        assert_eq!(ring.len(), 1);
        assert_eq!(sim.node(0).routing().successor(), None);
        assert_eq!(sim.node(0).routing().predecessor(), None);
    }
}

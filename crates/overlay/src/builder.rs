//! Constructing overlay networks inside a simulator.
//!
//! Two modes:
//!
//! * [`build_stable`] — the experiments' mode: every node starts with
//!   converged predecessor/successor/finger state computed from a global
//!   [`RingView`] (the paper's simulations run on an already-formed Chord
//!   ring and "exploit the Chord infrastructure" for maintenance);
//! * incremental joins through [`crate::ChordNode::start_join`] plus
//!   stabilization, exercised by the churn tests.

use cbps_sim::{NetConfig, SimTime, Simulator};

use crate::app::OverlayApp;
use crate::config::OverlayConfig;
use crate::hash::key_of_bytes;
use crate::key::Key;
use crate::node::ChordNode;
use crate::ring::{Peer, RingView};
use crate::state::RoutingState;
use crate::timer::OverlayTimer;

/// Assigns distinct ring keys to `n` nodes by consistent hashing of their
/// names, rehashing on collision (small key spaces collide readily: 500
/// nodes in a 2^13 space expect ~15 birthday collisions).
pub fn assign_node_keys(cfg: &OverlayConfig, n: usize) -> Vec<Key> {
    assert!(
        (n as u64) <= cfg.space.size(),
        "cannot place {n} nodes in a key space of {}",
        cfg.space.size()
    );
    let mut used = std::collections::HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    for i in 0..n {
        let mut attempt = 0u32;
        let key = loop {
            let candidate = key_of_bytes(cfg.space, format!("node-{i}#{attempt}").as_bytes());
            if used.insert(candidate) {
                break candidate;
            }
            attempt += 1;
        };
        keys.push(key);
    }
    keys
}

/// Builds a converged ring of `apps.len()` nodes and returns the simulator
/// together with the global ring view (node index `i` hosts `apps[i]`).
///
/// When the overlay config enables maintenance, stabilize and finger timers
/// are armed at staggered offsets.
///
/// # Panics
///
/// Panics if `apps` is empty or larger than the key space.
pub fn build_stable<A: OverlayApp>(
    net: NetConfig,
    cfg: OverlayConfig,
    apps: Vec<A>,
) -> (Simulator<ChordNode<A>>, RingView) {
    assert!(!apps.is_empty(), "a network needs at least one node");
    let n = apps.len();
    let keys = assign_node_keys(&cfg, n);
    let peers: Vec<Peer> = keys
        .iter()
        .enumerate()
        .map(|(idx, &key)| Peer { idx, key })
        .collect();
    let ring = RingView::new(cfg.space, peers.clone());

    let mut sim = Simulator::new(net);
    for (idx, app) in apps.into_iter().enumerate() {
        let me = peers[idx];
        let mut state = RoutingState::new(cfg, me);
        if n > 1 {
            state.set_predecessor(Some(ring.predecessor(me.key)));
            state.set_successors(ring.successors_of(me.key, cfg.succ_list_len));
            for (i, f) in ring.fingers_of(me.key).into_iter().enumerate() {
                state.set_finger(i, f);
            }
        }
        let added = sim.add_node(ChordNode::new(state, app));
        debug_assert_eq!(added, idx);
    }

    if cfg.maintenance {
        for idx in 0..n {
            let s_off = sim
                .rng_mut()
                .gen_range(0..cfg.stabilize_period.as_micros().max(1));
            let f_off = sim
                .rng_mut()
                .gen_range(0..cfg.fix_fingers_period.as_micros().max(1));
            sim.arm_timer_at(SimTime::from_micros(s_off), idx, OverlayTimer::Stabilize);
            sim.arm_timer_at(SimTime::from_micros(f_off), idx, OverlayTimer::FixFingers);
        }
    }

    (sim, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Delivery;
    use crate::key::KeySpace;
    use crate::services::OverlayServices;

    /// Minimal app that remembers what it was delivered.
    #[derive(Default)]
    struct Sink {
        got: Vec<u64>,
    }

    impl OverlayApp for Sink {
        type Payload = u64;
        type Timer = ();
        fn on_deliver(
            &mut self,
            payload: u64,
            _delivery: Delivery,
            _svc: &mut dyn OverlayServices<u64, ()>,
        ) {
            self.got.push(payload);
        }
    }

    #[test]
    fn keys_are_distinct_even_in_tiny_spaces() {
        let cfg = OverlayConfig::paper_default().with_space(KeySpace::new(7));
        let keys = assign_node_keys(&cfg, 128); // fills the space entirely
        let mut set: Vec<u64> = keys.iter().map(|k| k.value()).collect();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 128);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_nodes_rejected() {
        let cfg = OverlayConfig::paper_default().with_space(KeySpace::new(3));
        let _ = assign_node_keys(&cfg, 9);
    }

    #[test]
    fn stable_ring_state_is_converged() {
        let cfg = OverlayConfig::paper_default();
        let apps: Vec<Sink> = (0..50).map(|_| Sink::default()).collect();
        let (sim, ring) = build_stable(NetConfig::new(1), cfg, apps);
        assert_eq!(sim.len(), 50);
        for (idx, node) in sim.nodes() {
            let me = node.me();
            assert_eq!(me.idx, idx);
            let st = node.routing();
            assert_eq!(st.predecessor().unwrap(), ring.predecessor(me.key));
            assert_eq!(st.successor().unwrap(), ring.next_node(me.key));
            for (i, f) in st.fingers().enumerate() {
                let expect = ring.successor(cfg.space.finger_target(me.key, i as u32));
                if expect.key == me.key {
                    assert_eq!(f, None);
                } else {
                    assert_eq!(f, Some(expect), "finger {i} of node {idx}");
                }
            }
        }
    }

    #[test]
    fn single_node_network() {
        let cfg = OverlayConfig::paper_default();
        let (sim, ring) = build_stable(NetConfig::new(1), cfg, vec![Sink::default()]);
        assert_eq!(ring.len(), 1);
        assert_eq!(sim.node(0).routing().successor(), None);
        assert_eq!(sim.node(0).routing().predecessor(), None);
    }
}

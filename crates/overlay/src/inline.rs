//! A tiny small-vector: the first `N` elements live inline, longer lists
//! spill to the heap. Used for [`KeyRangeSet`](crate::KeyRangeSet)
//! segment storage (where the overwhelming majority of m-cast splits
//! produce one or two segments) and for covering-group member lists in
//! `cbps-core` (where most groups hold a handful of subscriptions).
//!
//! The crate forbids `unsafe`, so instead of `MaybeUninit` tricks the
//! inline buffer requires `T: Copy + Default` and keeps unused slots at
//! `T::default()`.

/// Inline-first vector of `Copy` elements.
#[derive(Clone, Debug)]
pub enum InlineVec<T: Copy + Default, const N: usize> {
    /// Up to `N` elements stored in place.
    Inline {
        /// Number of live elements in `buf`.
        len: u8,
        /// Backing array; slots at `len..` hold `T::default()`.
        buf: [T; N],
    },
    /// Spilled representation (never shrinks back inline).
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector. `N` must fit the inline length byte.
    pub fn new() -> Self {
        debug_assert!(N > 0 && N <= u8::MAX as usize);
        InlineVec::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len as usize,
            InlineVec::Heap(v) => v.len(),
        }
    }

    /// `true` when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { len, buf } => &buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            InlineVec::Inline { len, buf } => &mut buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    /// `true` while the elements still live in the inline buffer.
    pub fn is_inline(&self) -> bool {
        matches!(self, InlineVec::Inline { .. })
    }

    /// `true` when one more insertion would spill to the heap.
    pub fn inline_is_full(&self) -> bool {
        matches!(self, InlineVec::Inline { len, .. } if *len as usize == N)
    }

    /// Moves the inline contents into `v` and switches to the spilled
    /// representation. Lets callers that manage their own spill storage
    /// (e.g. a free-list of recycled `Vec`s) pre-empt the plain-allocation
    /// spill inside [`InlineVec::push`] / [`InlineVec::insert`]. No-op
    /// when already spilled.
    pub fn spill_to(&mut self, mut v: Vec<T>) {
        debug_assert!(v.is_empty());
        if let InlineVec::Inline { len, buf } = self {
            v.extend_from_slice(&buf[..*len as usize]);
            *self = InlineVec::Heap(v);
        }
    }

    /// Takes the spilled backing `Vec`, leaving the vector empty. Returns
    /// `None` (and leaves the contents alone) while still inline — the
    /// counterpart of [`InlineVec::spill_to`] for recycling spill storage.
    pub fn take_spill(&mut self) -> Option<Vec<T>> {
        match self {
            InlineVec::Inline { .. } => None,
            InlineVec::Heap(v) => {
                let v = std::mem::take(v);
                *self = InlineVec::new();
                Some(v)
            }
        }
    }

    /// Removes every element (the spilled buffer, if any, is kept).
    pub fn clear(&mut self) {
        match self {
            InlineVec::Inline { len, .. } => *len = 0,
            InlineVec::Heap(v) => v.clear(),
        }
    }

    /// Appends an element, spilling to the heap on overflow.
    pub fn push(&mut self, value: T) {
        match self {
            InlineVec::Inline { len, buf } => {
                if (*len as usize) < N {
                    buf[*len as usize] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(buf);
                    v.push(value);
                    *self = InlineVec::Heap(v);
                }
            }
            InlineVec::Heap(v) => v.push(value),
        }
    }

    /// Inserts an element at `i`, shifting everything after it right
    /// (like [`Vec::insert`]); spills to the heap on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `i > len`.
    pub fn insert(&mut self, i: usize, value: T) {
        match self {
            InlineVec::Inline { len, buf } => {
                let n = *len as usize;
                assert!(i <= n, "insert index {i} out of bounds");
                if n < N {
                    buf.copy_within(i..n, i + 1);
                    buf[i] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..i]);
                    v.push(value);
                    v.extend_from_slice(&buf[i..]);
                    *self = InlineVec::Heap(v);
                }
            }
            InlineVec::Heap(v) => v.insert(i, value),
        }
    }

    /// Removes and returns the element at `i`, shifting everything after
    /// it left (like [`Vec::remove`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn remove(&mut self, i: usize) -> T {
        match self {
            InlineVec::Inline { len, buf } => {
                let n = *len as usize;
                assert!(i < n, "remove index {i} out of bounds");
                let out = buf[i];
                buf.copy_within(i + 1..n, i);
                buf[n - 1] = T::default();
                *len -= 1;
                out
            }
            InlineVec::Heap(v) => v.remove(i),
        }
    }

    /// Removes and returns the element at `i`, replacing it with the last
    /// element (like [`Vec::swap_remove`]).
    pub fn swap_remove(&mut self, i: usize) -> T {
        match self {
            InlineVec::Inline { len, buf } => {
                let last = *len as usize - 1;
                assert!(i <= last, "swap_remove index {i} out of bounds");
                let out = buf[i];
                buf[i] = buf[last];
                buf[last] = T::default();
                *len -= 1;
                out
            }
            InlineVec::Heap(v) => v.swap_remove(i),
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_spills_and_swap_remove_everywhere() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.swap_remove(0), 0);
        assert_eq!(v.as_slice(), &[3, 1, 2]);
        for i in 4..10 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Heap(_)));
        assert_eq!(v.len(), 9);
        assert_eq!(v.swap_remove(1), 1);
        assert_eq!(v.as_slice(), &[3, 9, 2, 4, 5, 6, 7, 8]);
        v.as_mut_slice()[0] = 42;
        assert_eq!(v.as_slice()[0], 42);
    }

    #[test]
    fn ordered_insert_and_remove() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.insert(0, 3);
        v.insert(0, 1);
        v.insert(1, 2);
        v.insert(3, 4);
        assert!(v.is_inline() && v.inline_is_full());
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        // Inserting into a full inline buffer spills, preserving order.
        v.insert(2, 99);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[1, 2, 99, 3, 4]);
        assert_eq!(v.remove(2), 99);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        let spill = v.take_spill().expect("was spilled");
        assert_eq!(spill, vec![1, 2, 3, 4]);
        assert!(v.is_empty() && v.is_inline());
    }

    #[test]
    fn managed_spill_roundtrip() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(7);
        v.push(8);
        assert!(v.take_spill().is_none());
        let recycled = Vec::with_capacity(16);
        v.spill_to(recycled);
        assert_eq!(v.as_slice(), &[7, 8]);
        v.push(9);
        assert_eq!(v.as_slice(), &[7, 8, 9]);
        let back = v.take_spill().expect("spilled");
        assert!(back.capacity() >= 16);
        let mut w: InlineVec<u32, 2> = InlineVec::new();
        w.clear();
        assert!(w.is_empty());
    }
}

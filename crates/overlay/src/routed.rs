//! Shared handlers for routed payload messages.
//!
//! The mechanics of the three payload-carrying message kinds — key
//! unicast, `m-cast` splitting, and the conservative range walk — are the
//! same on every structured overlay: account the hop, consult the routing
//! state, forward or deliver, record dilation. These free functions
//! implement those mechanics once, generically over the substrate's
//! [`RouteTable`] and the hosted [`OverlayApp`]. An overlay node's
//! `on_message` just destructures the wire message and calls in here;
//! backend-specific code shrinks to ring maintenance.

use std::sync::Arc;

use cbps_sim::{Context, TraceId, TrafficClass};

use crate::app::{Delivery, OverlayApp, OverlaySvc};
use crate::key::Key;
use crate::msg::{take_payload, Envelope, OverlayMsg};
use crate::range::{KeyRange, KeyRangeSet};
use crate::ring::Peer;
use crate::route::RouteTable;
use crate::timer::OverlayTimer;

/// The simulator context type every routed handler operates in.
pub type RoutedCtx<'c, A> =
    Context<'c, Envelope<<A as OverlayApp>::Payload>, OverlayTimer<<A as OverlayApp>::Timer>>;

/// Name of the dilation histogram for a traffic class.
pub fn dilation_series(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::SUBSCRIPTION => "dilation.subscription",
        TrafficClass::PUBLICATION => "dilation.publication",
        TrafficClass::NOTIFICATION => "dilation.notification",
        TrafficClass::COLLECT => "dilation.collect",
        TrafficClass::MAINTENANCE => "dilation.maintenance",
        TrafficClass::STATE_TRANSFER => "dilation.state-transfer",
        _ => "dilation.other",
    }
}

/// `true` (and counts the drop) when a routed message has exceeded the
/// substrate's hop TTL — the backstop against routing cycles while the
/// overlay's state is damaged.
pub fn ttl_exceeded<S: RouteTable, A: OverlayApp>(
    state: &S,
    hops: u32,
    ctx: &mut RoutedCtx<'_, A>,
) -> bool {
    if hops >= state.max_route_hops() {
        ctx.metrics().add("routing.ttl-drop", 1);
        true
    } else {
        false
    }
}

/// One-hop transmission of `body`, stamped with this node's identity and
/// accounted under the message's own traffic class.
pub fn send_body<S: RouteTable, A: OverlayApp>(
    state: &S,
    ctx: &mut RoutedCtx<'_, A>,
    to: cbps_sim::NodeIdx,
    body: OverlayMsg<A::Payload>,
) {
    let class = body.class();
    let me = state.me();
    ctx.send(to, class, Envelope { sender: me, body });
}

/// Handles an incoming [`OverlayMsg::Unicast`]: forward toward the covering
/// node or deliver locally with dilation accounting.
#[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
pub fn handle_unicast<S: RouteTable, A: OverlayApp>(
    state: &mut S,
    app: &mut A,
    key: Key,
    class: TrafficClass,
    payload: Arc<A::Payload>,
    hops: u32,
    src: Peer,
    trace: TraceId,
    ctx: &mut RoutedCtx<'_, A>,
) {
    if ttl_exceeded::<S, A>(state, hops, ctx) {
        return;
    }
    match state.next_hop(key) {
        None => {
            ctx.metrics()
                .histogram_mut(dilation_series(class))
                .record(u64::from(hops));
            let delivery = Delivery {
                targets_here: KeyRangeSet::of_key(state.space(), key),
                class,
                hops,
                src,
                trace,
            };
            let mut svc = OverlaySvc::new(state, ctx);
            app.on_deliver(take_payload(payload), delivery, &mut svc);
        }
        Some(hop) => {
            ctx.route_hop(trace, class);
            send_body::<S, A>(
                state,
                ctx,
                hop.idx,
                OverlayMsg::Unicast {
                    key,
                    class,
                    payload,
                    hops: hops + 1,
                    src,
                    trace,
                },
            );
        }
    }
}

/// Handles an incoming [`OverlayMsg::MCast`]: split the targets against the
/// routing state (Figure 4), relay the remote bundles, deliver the local
/// share.
#[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
pub fn handle_mcast<S: RouteTable, A: OverlayApp>(
    state: &mut S,
    app: &mut A,
    targets: KeyRangeSet,
    class: TrafficClass,
    payload: Arc<A::Payload>,
    hops: u32,
    src: Peer,
    trace: TraceId,
    ctx: &mut RoutedCtx<'_, A>,
) {
    if ttl_exceeded::<S, A>(state, hops, ctx) {
        return;
    }
    let (local, mut bundles) = state.mcast_split(&targets);
    if !bundles.is_empty() {
        ctx.route_hop(trace, class);
    }
    for (peer, subset) in bundles.drain(..) {
        send_body::<S, A>(
            state,
            ctx,
            peer.idx,
            OverlayMsg::MCast {
                targets: subset,
                class,
                payload: Arc::clone(&payload),
                hops: hops + 1,
                src,
                trace,
            },
        );
    }
    if !local.is_empty() {
        ctx.metrics()
            .histogram_mut(dilation_series(class))
            .record(u64::from(hops));
        let delivery = Delivery {
            targets_here: local,
            class,
            hops,
            src,
            trace,
        };
        let mut svc = OverlaySvc::new(state, ctx);
        app.on_deliver(take_payload(payload), delivery, &mut svc);
    }
}

/// Handles an incoming [`OverlayMsg::Walk`]: route toward the range start,
/// then walk covering nodes successor-by-successor, delivering each node's
/// portion of the range.
#[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
pub fn handle_walk<S: RouteTable, A: OverlayApp>(
    state: &mut S,
    app: &mut A,
    range: KeyRange,
    class: TrafficClass,
    payload: Arc<A::Payload>,
    hops: u32,
    src: Peer,
    walking: bool,
    trace: TraceId,
    ctx: &mut RoutedCtx<'_, A>,
) {
    if ttl_exceeded::<S, A>(state, hops, ctx) {
        return;
    }
    let space = state.space();
    if !walking {
        // Still routing toward the start of the range.
        if let Some(hop) = state.next_hop(range.start()) {
            ctx.route_hop(trace, class);
            send_body::<S, A>(
                state,
                ctx,
                hop.idx,
                OverlayMsg::Walk {
                    range,
                    class,
                    payload,
                    hops: hops + 1,
                    src,
                    walking: false,
                    trace,
                },
            );
            return;
        }
    }
    // We cover part of the range: deliver our portion. Decide first
    // whether the walk continues so a terminal delivery can take the
    // payload without copying it.
    let me = state.me();
    let pred = state.predecessor().unwrap_or(me);
    let full = KeyRangeSet::of_range(space, range);
    let local = full.extract_arc_oc(space, pred.key, me.key);
    let next = if range.contains(space, me.key) && me.key != range.end() {
        state.successor()
    } else {
        None
    };
    let deliver = |state: &mut S, app: &mut A, payload: A::Payload, ctx: &mut RoutedCtx<'_, A>| {
        ctx.metrics()
            .histogram_mut(dilation_series(class))
            .record(u64::from(hops));
        let delivery = Delivery {
            targets_here: local.clone(),
            class,
            hops,
            src,
            trace,
        };
        let mut svc = OverlaySvc::new(state, ctx);
        app.on_deliver(payload, delivery, &mut svc);
    };
    match next {
        // Continue walking while range keys remain beyond our own key.
        Some(succ) => {
            if !local.is_empty() {
                deliver(state, app, take_payload(Arc::clone(&payload)), ctx);
            }
            ctx.route_hop(trace, class);
            send_body::<S, A>(
                state,
                ctx,
                succ.idx,
                OverlayMsg::Walk {
                    range,
                    class,
                    payload,
                    hops: hops + 1,
                    src,
                    walking: true,
                    trace,
                },
            );
        }
        // Terminal node of the walk: the payload can be taken whole.
        None => {
            if !local.is_empty() {
                deliver(state, app, take_payload(payload), ctx);
            }
        }
    }
}

/// Handles an incoming [`OverlayMsg::Direct`]: hand the payload to the
/// application with the immediate sender's identity.
pub fn handle_direct<S: RouteTable, A: OverlayApp>(
    state: &mut S,
    app: &mut A,
    sender: Peer,
    payload: Arc<A::Payload>,
    ctx: &mut RoutedCtx<'_, A>,
) {
    let mut svc = OverlaySvc::new(state, ctx);
    app.on_direct(sender, take_payload(payload), &mut svc);
}

/// Handles an application timer ([`OverlayTimer::App`]).
pub fn handle_app_timer<S: RouteTable, A: OverlayApp>(
    state: &mut S,
    app: &mut A,
    timer: A::Timer,
    ctx: &mut RoutedCtx<'_, A>,
) {
    let mut svc = OverlaySvc::new(state, ctx);
    app.on_timer(timer, &mut svc);
}

//! The routing-decision surface shared by every overlay substrate.
//!
//! A structured overlay, as the routed message handlers see it, is just a
//! state table answering five questions: who am I, do I cover this key,
//! where does this key go next, how do I split a one-to-many send, and who
//! are my ring neighbors. [`RouteTable`] captures exactly that, so the
//! message-handling mechanics (hop accounting, TTL backstop, delivery
//! staging — see [`crate::routed`]) are written once and reused by Chord's
//! finger-table state and Pastry's prefix-table state alike. A new overlay
//! backend is an implementation of this trait plus a converged-state
//! constructor — not a re-implementation of the node.

use crate::key::{Key, KeySpace};
use crate::range::KeyRangeSet;
use crate::ring::Peer;
use crate::scratch::Bundles;

/// Per-node routing state of one structured overlay.
///
/// Implementations must guarantee the invariants the paper's primitives
/// rely on: `covers` and `next_hop` are consistent (`next_hop` returns
/// `None` exactly when this node covers the key), routing makes progress
/// toward the covering node, and `mcast_split` partitions the targets into
/// the local share plus disjoint per-peer bundles (Figure 4's argument).
pub trait RouteTable {
    /// This node's identity.
    fn me(&self) -> Peer;

    /// The key space of the overlay.
    fn space(&self) -> KeySpace;

    /// Routed messages are dropped after this many hops (the backstop
    /// against routing cycles while the ring is damaged).
    fn max_route_hops(&self) -> u32;

    /// The ring predecessor, if known.
    fn predecessor(&self) -> Option<Peer>;

    /// The immediate ring successor, if any.
    fn successor(&self) -> Option<Peer>;

    /// Nearest known clockwise neighbors, closest first (replica
    /// placement, walk continuation).
    fn successors(&self) -> &[Peer];

    /// `true` iff this node currently covers `key` (`key ∈ (pred, me]`,
    /// the successor convention shared by all substrates).
    fn covers(&self, key: Key) -> bool;

    /// The routing decision: `None` to deliver locally, otherwise the next
    /// hop toward the node covering `key`. Takes `&mut self` so
    /// implementations may consult mutable structures (Chord's LRU
    /// location cache).
    fn next_hop(&mut self, key: Key) -> Option<Peer>;

    /// The one-to-many split of Figure 4: the local share of `targets`
    /// plus one disjoint bundle per relay peer. The bundle list is pooled
    /// scratch storage ([`Bundles`]) so steady-state splits stay off the
    /// allocator.
    fn mcast_split(&self, targets: &KeyRangeSet) -> (KeyRangeSet, Bundles);

    /// Opportunistically records that `peer` exists (location caching).
    /// Substrates without opportunistic learning keep the default no-op.
    fn learn(&mut self, peer: Peer) {
        let _ = peer;
    }
}

impl RouteTable for crate::state::RoutingState {
    fn me(&self) -> Peer {
        crate::state::RoutingState::me(self)
    }
    fn space(&self) -> KeySpace {
        crate::state::RoutingState::space(self)
    }
    fn max_route_hops(&self) -> u32 {
        self.config().max_route_hops
    }
    fn predecessor(&self) -> Option<Peer> {
        crate::state::RoutingState::predecessor(self)
    }
    fn successor(&self) -> Option<Peer> {
        crate::state::RoutingState::successor(self)
    }
    fn successors(&self) -> &[Peer] {
        crate::state::RoutingState::successors(self)
    }
    fn covers(&self, key: Key) -> bool {
        crate::state::RoutingState::covers(self, key)
    }
    fn next_hop(&mut self, key: Key) -> Option<Peer> {
        crate::state::RoutingState::next_hop(self, key)
    }
    fn mcast_split(&self, targets: &KeyRangeSet) -> (KeyRangeSet, Bundles) {
        crate::state::RoutingState::mcast_split(self, targets)
    }
    fn learn(&mut self, peer: Peer) {
        crate::state::RoutingState::learn(self, peer);
    }
}

//! Run-wide measurement: traffic-class message counters, named counters,
//! and compact histograms.
//!
//! The paper's evaluation reports two kinds of quantities: the **number of
//! one-hop messages sent in the system**, broken down by what the message is
//! for (subscription propagation, publication propagation, notifications,
//! …), and per-node state sizes. [`Metrics`] accumulates the former during a
//! run; the latter is sampled from node state by the harness.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::obs::Observability;

/// A small label identifying what kind of traffic a message belongs to.
///
/// The simulator counts every transmitted message under its class; the
/// experiment harness divides class totals by request counts to obtain the
/// "hops per request" series of the paper's figures.
///
/// Classes are plain `u8` tags so that layered protocols (overlay,
/// pub/sub) can define their own without this crate knowing about them.
/// Well-known classes used across the workspace are defined as associated
/// constants.
///
/// # Examples
///
/// ```
/// use cbps_sim::TrafficClass;
///
/// let class = TrafficClass::SUBSCRIPTION;
/// assert_ne!(class, TrafficClass::PUBLICATION);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Subscription propagation toward rendezvous nodes.
    pub const SUBSCRIPTION: TrafficClass = TrafficClass(0);
    /// Publication (event) propagation toward rendezvous nodes.
    pub const PUBLICATION: TrafficClass = TrafficClass(1);
    /// Notification delivery from rendezvous nodes to subscribers.
    pub const NOTIFICATION: TrafficClass = TrafficClass(2);
    /// Ring-neighbor exchanges of the notification-collecting protocol.
    pub const COLLECT: TrafficClass = TrafficClass(3);
    /// Overlay maintenance (stabilization, finger fixing, join lookups).
    pub const MAINTENANCE: TrafficClass = TrafficClass(4);
    /// Application-state transfer on join/leave and replication.
    pub const STATE_TRANSFER: TrafficClass = TrafficClass(5);
    /// Anything else.
    pub const OTHER: TrafficClass = TrafficClass(255);

    /// A human-readable name for the well-known classes.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::SUBSCRIPTION => "subscription",
            TrafficClass::PUBLICATION => "publication",
            TrafficClass::NOTIFICATION => "notification",
            TrafficClass::COLLECT => "collect",
            TrafficClass::MAINTENANCE => "maintenance",
            TrafficClass::STATE_TRANSFER => "state-transfer",
            TrafficClass::OTHER => "other",
            TrafficClass(n) => {
                // Classes defined by higher layers have no static name.
                let _ = n;
                "custom"
            }
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name(), self.0)
    }
}

/// A compact histogram over non-negative integer samples.
///
/// Stores exact counts per distinct value (the quantities we record — hop
/// counts, key-set sizes, stored-subscription counts — have small supports),
/// so means, maxima and percentiles are exact.
///
/// # Examples
///
/// ```
/// use cbps_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 2, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.mean(), 2.0);
/// assert_eq!(h.max(), Some(3));
/// assert_eq!(h.percentile(50.0), Some(2));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
        self.sum += u128::from(value);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Exact percentile (nearest-rank method); `p` in `[0, 100]`.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&value, &count) in &self.counts {
            seen += count;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (value, count) in other.iter() {
            self.record_n(value, count);
        }
    }
}

/// Accumulated measurements for one simulation run.
///
/// Tracks one-hop message counts per [`TrafficClass`], free-form named
/// counters, and named histograms. All figure series in the experiment
/// harness are derived from a `Metrics` value plus per-node state sampling.
///
/// # Examples
///
/// ```
/// use cbps_sim::{Metrics, TrafficClass};
///
/// let mut m = Metrics::new();
/// m.count_message(TrafficClass::PUBLICATION);
/// m.add("events-published", 1);
/// m.histogram_mut("hops-per-lookup").record(3);
/// assert_eq!(m.messages(TrafficClass::PUBLICATION), 1);
/// assert_eq!(m.counter("events-published"), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    messages: HashMap<TrafficClass, u64>,
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
    obs: Observability,
}

impl Metrics {
    /// Creates an empty metrics sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one transmitted one-hop message of the given class.
    pub fn count_message(&mut self, class: TrafficClass) {
        *self.messages.entry(class).or_insert(0) += 1;
    }

    /// Total one-hop messages recorded for `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages.get(&class).copied().unwrap_or(0)
    }

    /// Total one-hop messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.values().sum()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Mutable access to the named histogram, creating it if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), Histogram::new());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// The named histogram, if any samples were recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all `(class, count)` message entries.
    pub fn message_classes(&self) -> impl Iterator<Item = (TrafficClass, u64)> + '_ {
        self.messages.iter().map(|(&c, &n)| (c, n))
    }

    /// The causal observability sink (trace log + stage-latency registry).
    ///
    /// Disabled by default; enable with
    /// [`obs_mut().set_mode(..)`](crate::Observability::set_mode).
    pub fn obs(&self) -> &Observability {
        &self.obs
    }

    /// Mutable access to the observability sink.
    pub fn obs_mut(&mut self) -> &mut Observability {
        &mut self.obs
    }

    /// A fresh per-shard sink for one sharded run: empty counters, with the
    /// observability mode and origin table forked from this (global) sink.
    pub(crate) fn fork_for_shard(&self) -> Metrics {
        Metrics {
            messages: HashMap::new(),
            counters: HashMap::new(),
            histograms: HashMap::new(),
            obs: self.obs.fork_for_shard(),
        }
    }

    /// Folds per-shard sinks into this one. Counter, message and histogram
    /// merges are commutative; the observability logs are interleaved in
    /// global time order (see [`Observability`] internals), so the folded
    /// totals are independent of shard join order.
    pub(crate) fn absorb_shards(&mut self, parts: &mut [Metrics]) {
        for part in parts.iter() {
            for (&class, &n) in &part.messages {
                *self.messages.entry(class).or_insert(0) += n;
            }
            for (name, &v) in &part.counters {
                self.add(name, v);
            }
            for (name, h) in &part.histograms {
                self.histogram_mut(name).merge(h);
            }
        }
        let mut sinks: Vec<Observability> = parts
            .iter_mut()
            .map(|p| std::mem::take(&mut p.obs))
            .collect();
        self.obs.merge_ordered(&mut sinks);
    }

    /// Resets every counter, message count, histogram and recorded
    /// observability data (the observability *mode* is kept).
    pub fn clear(&mut self) {
        self.messages.clear();
        self.counters.clear();
        self.histograms.clear();
        self.obs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_class_names() {
        assert_eq!(TrafficClass::SUBSCRIPTION.name(), "subscription");
        assert_eq!(TrafficClass(42).name(), "custom");
        assert_eq!(TrafficClass::COLLECT.to_string(), "collect(3)");
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [5, 1, 3, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(3));
        assert_eq!(h.percentile(100.0), Some(8));
    }

    #[test]
    fn histogram_record_n_and_merge() {
        let mut a = Histogram::new();
        a.record_n(2, 3);
        a.record_n(7, 0); // no-op
        let mut b = Histogram::new();
        b.record(4);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.sum(), 10);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(2, 3), (4, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of [0, 100]")]
    fn percentile_range_checked() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.percentile(101.0);
    }

    #[test]
    fn metrics_accumulate() {
        let mut m = Metrics::new();
        m.count_message(TrafficClass::SUBSCRIPTION);
        m.count_message(TrafficClass::SUBSCRIPTION);
        m.count_message(TrafficClass::NOTIFICATION);
        m.add("x", 2);
        m.add("x", 3);
        assert_eq!(m.messages(TrafficClass::SUBSCRIPTION), 2);
        assert_eq!(m.messages(TrafficClass::PUBLICATION), 0);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
        let classes: Vec<_> = m.message_classes().collect();
        assert_eq!(classes.len(), 2);
        m.clear();
        assert_eq!(m.total_messages(), 0);
    }

    /// Folding per-shard sinks must give the same totals no matter which
    /// shard's data arrives first: counters, messages and histograms are
    /// sums/merges, and the observability log is rebuilt in global time
    /// order rather than appended. Regression test for the sharded engine's
    /// metric absorption.
    #[test]
    fn shard_absorption_is_commutative() {
        use crate::obs::{ObsMode, Stage, TraceId};
        use crate::time::SimTime;

        let mut global = Metrics::new();
        global.obs_mut().set_mode(ObsMode::Full);

        let build_shard = |salt: u64| {
            let mut part = global.fork_for_shard();
            part.count_message(TrafficClass::PUBLICATION);
            part.add("matches", 10 + salt);
            part.histogram_mut("hops").record(salt + 1);
            part.histogram_mut("hops").record(salt + 4);
            let trace = TraceId::for_publication(salt as usize, 0);
            // Distinct times per shard: records at identical times tie-break
            // by shard order, which is deterministic but not commutative.
            let at = SimTime::from_micros(100 + salt * 7);
            part.obs_mut()
                .stage(trace, Stage::Publish, TrafficClass::PUBLICATION, 0, at);
            part.obs_mut().hop(
                trace,
                TrafficClass::PUBLICATION,
                1,
                SimTime::from_micros(200 + salt * 7),
            );
            part.obs_mut().sample("queue.depth", 5 + salt);
            part
        };

        let digest = |m: &Metrics| {
            let hops = m.histogram("hops").expect("hops recorded");
            let log: Vec<_> = m
                .obs()
                .log()
                .records()
                .iter()
                .map(|r| (r.trace, r.stage, r.at))
                .collect();
            let depth = m.obs().named_histogram("queue.depth").expect("sampled");
            (
                m.messages(TrafficClass::PUBLICATION),
                m.counter("matches"),
                hops.iter().collect::<Vec<_>>(),
                m.obs()
                    .stage_histogram(TrafficClass::PUBLICATION, Stage::RouteHop)
                    .map(|h| h.iter().collect::<Vec<_>>()),
                log,
                depth.iter().collect::<Vec<_>>(),
            )
        };

        let mut forward = global.clone();
        forward.absorb_shards(&mut [build_shard(0), build_shard(1), build_shard(2)]);
        let mut backward = global.clone();
        backward.absorb_shards(&mut [build_shard(2), build_shard(1), build_shard(0)]);
        assert_eq!(digest(&forward), digest(&backward));
        assert_eq!(forward.messages(TrafficClass::PUBLICATION), 3);
        assert_eq!(forward.counter("matches"), 33);
        // Log is globally time-sorted: shard 0's record (t=100) first.
        let first = forward.obs().log().records().first().expect("non-empty");
        assert_eq!(first.at, crate::time::SimTime::from_micros(100));
    }
}

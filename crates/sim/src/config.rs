//! Simulation configuration: network delay model, loss injection, seed.

use crate::time::SimDuration;
use cbps_rng::Rng;

/// How long a one-hop message takes to travel between two nodes.
///
/// The paper fixes the delay to 50 ms; a uniform jitter model is provided
/// for robustness testing (the figure metrics count messages, not time, so
/// jitter does not change them — it only perturbs event ordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Fixed(SimDuration),
    /// Delay drawn uniformly from `[min, max]` per message.
    Uniform {
        /// Smallest possible delay.
        min: SimDuration,
        /// Largest possible delay.
        max: SimDuration,
    },
}

impl DelayModel {
    /// Samples a delay for one message.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
        }
    }

    /// The smallest delay this model can produce — the conservative
    /// **lookahead** of the sharded engine: no message sent at time `t` can
    /// arrive before `t + min_delay()`, so shards may run `min_delay()`
    /// ahead of each other without risking a causality violation.
    pub fn min_delay(&self) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, .. } => min,
        }
    }
}

impl Default for DelayModel {
    /// The paper's default: a fixed 50 ms per hop.
    fn default() -> Self {
        DelayModel::Fixed(SimDuration::from_millis(50))
    }
}

/// Which event-queue implementation drives a
/// [`Simulator`](crate::Simulator).
///
/// Both produce bit-identical runs — the wheel reproduces the heap's
/// `(time, seq)` pop order exactly (see [`crate::wheel`]) — so this knob
/// exists for A/B benchmarking and the scheduler equivalence suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel: O(1) amortized push/pop. The default.
    #[default]
    Wheel,
    /// Binary min-heap: O(log n) push/pop. The reference implementation.
    Heap,
}

impl SchedulerKind {
    /// Parses `"heap"` or `"wheel"` (as accepted by the CLI tools).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "wheel" => Some(SchedulerKind::Wheel),
            "heap" => Some(SchedulerKind::Heap),
            _ => None,
        }
    }

    /// The name [`SchedulerKind::parse`] accepts for this variant.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        }
    }
}

/// Which subscription-matching engine rendezvous nodes run.
///
/// Both engines produce identical match sets — the counting index is the
/// reference implementation and the sorted index must reproduce it exactly
/// (see the differential suites in `cbps-core`) — so this knob exists for
/// A/B benchmarking, mirroring [`SchedulerKind`]. Defined here because
/// [`NetConfig`] is the single source of deployment-wide knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum MatchEngineKind {
    /// Counting algorithm over per-dimension bucket lists (Fabret et al.).
    /// The default and the byte-identical oracle.
    #[default]
    Counting,
    /// Flat struct-of-arrays table, span-class sorted segments, linear
    /// early-exit scans. Built for 10^5–10^6 subscriptions per node.
    Sorted,
}

impl MatchEngineKind {
    /// Parses `"counting"` or `"sorted"` (as accepted by the CLI tools).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "counting" => Some(MatchEngineKind::Counting),
            "sorted" => Some(MatchEngineKind::Sorted),
            _ => None,
        }
    }

    /// The name [`MatchEngineKind::parse`] accepts for this variant.
    pub fn name(self) -> &'static str {
        match self {
            MatchEngineKind::Counting => "counting",
            MatchEngineKind::Sorted => "sorted",
        }
    }
}

/// Whether the in-flight event slab pool recycles freed slots
/// (see [`crate::pool`]).
///
/// Both modes produce bit-identical runs — recycling only changes *where*
/// in the slab an event payload lives, never the `(time, seq)` pop order —
/// so this knob exists for the pooled-vs-fresh determinism gate and the
/// allocation audit, mirroring [`SchedulerKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Freed slots go on a free list and are reused: steady-state event
    /// scheduling performs zero heap allocations. The default.
    #[default]
    Reuse,
    /// Every insert appends a fresh slot (the slab compacts only when it
    /// goes idle). The verification baseline: any observable difference
    /// from `Reuse` would indicate a recycling bug.
    Fresh,
}

impl PoolMode {
    /// Parses `"reuse"` or `"fresh"` (as accepted by the CLI tools).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reuse" => Some(PoolMode::Reuse),
            "fresh" => Some(PoolMode::Fresh),
            _ => None,
        }
    }

    /// The name [`PoolMode::parse`] accepts for this variant.
    pub fn name(self) -> &'static str {
        match self {
            PoolMode::Reuse => "reuse",
            PoolMode::Fresh => "fresh",
        }
    }
}

/// Top-level configuration for a [`Simulator`](crate::Simulator).
///
/// # Examples
///
/// ```
/// use cbps_sim::{NetConfig, SimDuration};
///
/// let cfg = NetConfig::new(42).with_loss_probability(0.01);
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Seed for the run's deterministic RNG.
    pub seed: u64,
    /// Per-message network delay model.
    pub delay: DelayModel,
    /// Probability in `[0, 1]` that any one-hop message is silently dropped.
    ///
    /// Zero by default; used only by failure-injection tests. Dropped
    /// messages still count as sent in the metrics (the sender paid for
    /// them).
    pub loss_probability: f64,
    /// Event-queue implementation (timing wheel by default).
    pub scheduler: SchedulerKind,
    /// Subscription-matching engine run by rendezvous nodes (counting
    /// index by default). Purely an implementation knob: both engines
    /// deliver identical notification sets.
    pub match_engine: MatchEngineKind,
    /// Number of event-loop shards the node universe is partitioned into.
    ///
    /// `1` (the default) runs the classic single-threaded simulator.
    /// Larger values run one worker thread per shard in bounded epochs of
    /// the delay model's [`DelayModel::min_delay`] (conservative parallel
    /// DES); requires a strictly positive minimum delay.
    pub shards: usize,
    /// Slot-recycling policy of the in-flight event slab pool (reuse by
    /// default). Purely an implementation knob: both modes produce
    /// bit-identical runs.
    pub pool: PoolMode,
}

impl NetConfig {
    /// Configuration with the paper's defaults and the given seed.
    pub fn new(seed: u64) -> Self {
        NetConfig {
            seed,
            delay: DelayModel::default(),
            loss_probability: 0.0,
            scheduler: SchedulerKind::default(),
            match_engine: MatchEngineKind::default(),
            shards: 1,
            pool: PoolMode::default(),
        }
    }

    /// Replaces the delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Replaces the message-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of [0, 1]"
        );
        self.loss_probability = p;
        self
    }

    /// Replaces the event-queue implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the subscription-matching engine.
    pub fn with_match_engine(mut self, engine: MatchEngineKind) -> Self {
        self.match_engine = engine;
        self
    }

    /// Replaces the shard count (`0` is coerced to `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Replaces the event-pool recycling policy.
    pub fn with_pool(mut self, pool: PoolMode) -> Self {
        self.pool = pool;
        self
    }

    /// The conservative lookahead window available to the sharded engine
    /// (the delay model's minimum delay).
    pub fn lookahead(&self) -> SimDuration {
        self.delay.min_delay()
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_constant() {
        let mut rng = Rng::seed_from_u64(1);
        let m = DelayModel::Fixed(SimDuration::from_millis(50));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(50));
        }
    }

    #[test]
    fn uniform_delay_within_bounds() {
        let mut rng = Rng::seed_from_u64(2);
        let min = SimDuration::from_millis(10);
        let max = SimDuration::from_millis(20);
        let m = DelayModel::Uniform { min, max };
        for _ in 0..100 {
            let d = m.sample(&mut rng);
            assert!(d >= min && d <= max, "sampled {d} outside bounds");
        }
    }

    #[test]
    fn default_is_paper_delay() {
        assert_eq!(
            DelayModel::default(),
            DelayModel::Fixed(SimDuration::from_millis(50))
        );
        assert_eq!(NetConfig::default().loss_probability, 0.0);
    }

    #[test]
    fn scheduler_kind_parse_roundtrip() {
        assert_eq!(NetConfig::default().scheduler, SchedulerKind::Wheel);
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("bogus"), None);
    }

    #[test]
    fn match_engine_kind_parse_roundtrip() {
        assert_eq!(NetConfig::default().match_engine, MatchEngineKind::Counting);
        for kind in [MatchEngineKind::Counting, MatchEngineKind::Sorted] {
            assert_eq!(MatchEngineKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MatchEngineKind::parse("bogus"), None);
        let cfg = NetConfig::new(0).with_match_engine(MatchEngineKind::Sorted);
        assert_eq!(cfg.match_engine, MatchEngineKind::Sorted);
    }

    #[test]
    fn pool_mode_parse_roundtrip() {
        assert_eq!(NetConfig::default().pool, PoolMode::Reuse);
        for mode in [PoolMode::Reuse, PoolMode::Fresh] {
            assert_eq!(PoolMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(PoolMode::parse("bogus"), None);
        let cfg = NetConfig::new(0).with_pool(PoolMode::Fresh);
        assert_eq!(cfg.pool, PoolMode::Fresh);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn loss_probability_validated() {
        let _ = NetConfig::new(0).with_loss_probability(1.5);
    }

    #[test]
    fn shards_default_and_lookahead() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.lookahead(), SimDuration::from_millis(50));
        assert_eq!(NetConfig::new(0).with_shards(0).shards, 1);
        assert_eq!(NetConfig::new(0).with_shards(4).shards, 4);
        let jitter = DelayModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(20),
        };
        assert_eq!(jitter.min_delay(), SimDuration::from_millis(10));
    }
}

//! Simulated time.
//!
//! Time in the simulator is a monotone counter of **microseconds** since the
//! start of the run. [`SimTime`] is a point on that axis and [`SimDuration`]
//! a distance between two points. Both are thin wrappers over `u64` so that
//! points and distances cannot be confused (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in microseconds since the start of the run.
///
/// # Examples
///
/// ```
/// use cbps_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(50);
/// assert_eq!(t.as_micros(), 50_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use cbps_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(5), SimDuration::from_millis(5_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time point from microseconds since the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time point from milliseconds since the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time point from seconds since the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This instant expressed in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, truncating below 1 µs.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000_000.0) as u64)
    }

    /// This duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.05).as_millis(), 50);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(4) * 2, SimDuration::from_secs(8));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "subtracted a later SimTime")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }
}

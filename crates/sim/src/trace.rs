//! Optional execution tracing.
//!
//! When enabled, the simulator records one [`TraceEntry`] per upcall
//! (message delivery, timer fire, send failure) plus any notes nodes emit
//! via [`Context::note`](crate::Context::note), in a bounded ring buffer.
//! Tags are `&'static str`, so tracing costs no allocation on the hot
//! path; the buffer evicts oldest-first when full.

use std::collections::VecDeque;

use crate::sim::NodeIdx;
use crate::time::SimTime;

/// What a trace entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message upcall ran on the node.
    Deliver,
    /// A timer upcall ran on the node.
    Timer,
    /// The node was told a send failed (crashed target).
    SendFailed,
    /// A note emitted by node code via `Context::note`.
    Note,
}

/// One recorded simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the upcall ran.
    pub at: SimTime,
    /// The node the upcall ran on.
    pub node: NodeIdx,
    /// Entry category.
    pub kind: TraceKind,
    /// Free label: the note text, or the empty string for automatic
    /// entries.
    pub tag: &'static str,
}

/// Bounded ring buffer of trace entries.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` entries.
    pub(crate) fn new(capacity: usize) -> Self {
        Tracer {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, entry: TraceEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries for one node, oldest first.
    pub fn for_node(&self, node: NodeIdx) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.node == node)
    }

    /// Entries bearing the given tag, oldest first.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.tag == tag)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Folds per-shard tracers into this one in global time order (stable on
    /// ties: lower shard index first), re-applying the ring-buffer bound.
    pub(crate) fn absorb_shards(&mut self, parts: &mut [Tracer]) {
        if self.capacity == 0 {
            return;
        }
        let mut merged: Vec<TraceEntry> = Vec::new();
        for part in parts.iter_mut() {
            merged.extend(part.entries.drain(..));
            self.dropped += part.dropped;
        }
        merged.sort_by_key(|e| e.at);
        for entry in merged {
            self.record(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64, node: NodeIdx, tag: &'static str) -> TraceEntry {
        TraceEntry {
            at: SimTime::from_secs(t),
            node,
            kind: TraceKind::Note,
            tag,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(2);
        t.record(entry(1, 0, "a"));
        t.record(entry(2, 0, "b"));
        t.record(entry(3, 0, "c"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let tags: Vec<&str> = t.entries().map(|e| e.tag).collect();
        assert_eq!(tags, ["b", "c"]);
    }

    #[test]
    fn filters() {
        let mut t = Tracer::new(8);
        t.record(entry(1, 0, "x"));
        t.record(entry(2, 1, "y"));
        t.record(entry(3, 0, "y"));
        assert_eq!(t.for_node(0).count(), 2);
        assert_eq!(t.with_tag("y").count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_capacity_disabled() {
        let mut t = Tracer::new(0);
        t.record(entry(1, 0, "a"));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}

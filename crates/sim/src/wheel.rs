//! A hierarchical timing wheel: the simulator's O(1) event queue.
//!
//! The binary heap that previously drove the simulator costs O(log n) per
//! push/pop, and every operation walks a pointer-chasing sift path through
//! a queue whose near-future head is extremely dense (the paper's workloads
//! deliver almost everything exactly one 50 ms network delay ahead).
//! Calendar queues / timing wheels are the standard fix for discrete-event
//! cores with that shape: bucket events by their timestamp and pop by
//! walking the calendar, so both operations are O(1) amortized.
//!
//! [`TimingWheel`] orders entries by a packed `u128` key — `(time_micros <<
//! 64) | seq` — exactly like the heap it replaces, and reproduces the
//! heap's pop order *bit for bit*. Structure:
//!
//! * **Now lane** — a FIFO for entries pushed at the current drain time
//!   (zero-delay `send_local` deliveries). They are already in key order
//!   because `seq` increases monotonically, so a `VecDeque` suffices.
//! * **Fine wheel** — 16 slots of ~8 ms (2^13 µs) each, covering the
//!   current *chunk* of ~131 ms — beyond the 50 ms default hop delay, so a
//!   typical delivery lands at most one cascade away. A slot may hold
//!   several distinct timestamps; it is sorted once when drained
//!   (calendar-queue style), and its occupancy bitmap is a single `u64`.
//!   The coarse geometry is deliberate: an earlier 2^16 × 1 µs variant
//!   kept one timestamp per slot and never sorted, but scattering pushes
//!   across a 1.5 MB slot array cost more in cache misses than it saved
//!   in comparisons. Batching ~8 ms per slot keeps the wheel in a few
//!   cache lines and amortizes the refill scan over several events.
//! * **Two coarse levels** — 4096 slots each, one fine-chunk (~131 ms) and
//!   one L1-window (~537 s) wide respectively. A slot cascades into the
//!   level below when the wheel *enters* its window, which happens before
//!   any direct push can target that window — preserving per-slot push
//!   order. The L2 horizon is ~25 days.
//! * **Far heap** — a plain binary heap for entries beyond the L2 horizon.
//!   Practically empty in every real workload.
//!
//! Empty-slot skipping uses a two-level occupancy bitmap per wheel level,
//! so advancing across a sparse calendar costs a handful of word scans
//! rather than a slot-by-slot walk.
//!
//! # Determinism
//!
//! Pop order equals ascending key order, which is the `(time, seq)` total
//! order: a drained slot is sorted by key before it is consumed (keys are
//! unique, so an unstable sort is exact); the now lane only ever holds the
//! current timestamp, in `seq` order; cascades from coarser levels always
//! run before any direct push can land in the same window; and stragglers
//! that land behind the wheel's scan position (possible after a `peek`
//! advanced the scan) are merge-inserted into the active batch by key. The
//! simulator's equivalence suite drives heap and wheel on identical seeded
//! workloads and asserts identical event orders.
//!
//! # Examples
//!
//! `seq` is a per-push counter (the simulator's event sequence number),
//! and pops come back in `(time, seq)` order regardless of push order:
//!
//! ```
//! use cbps_sim::TimingWheel;
//!
//! let key = |time_us: u64, seq: u64| ((time_us as u128) << 64) | seq as u128;
//! let mut wheel = TimingWheel::new();
//! wheel.push(key(0, 0), "now");
//! wheel.push(key(50_000, 1), "a");
//! wheel.push(key(50_000, 2), "b");
//! wheel.push(key(10_000, 3), "early");
//! assert_eq!(wheel.pop(), Some((key(0, 0), "now")));
//! assert_eq!(wheel.pop(), Some((key(10_000, 3), "early")));
//! assert_eq!(wheel.pop(), Some((key(50_000, 1), "a")));
//! assert_eq!(wheel.pop(), Some((key(50_000, 2), "b")));
//! assert_eq!(wheel.pop(), None);
//! ```

use std::collections::{BinaryHeap, VecDeque};

/// Fine-slot width: 2^13 µs ≈ 8 ms per slot.
const SLOT_SHIFT: u32 = 13;
/// Fine wheel: 2^4 = 16 slots, so one chunk spans 2^17 µs ≈ 131 ms —
/// beyond the paper's 50 ms hop delay — while the slot array stays small
/// enough to live in cache.
const FINE_BITS: u32 = 4;
const FINE_SLOTS: usize = 1 << FINE_BITS;
const FINE_MASK: u64 = (FINE_SLOTS - 1) as u64;
/// Bits of timestamp consumed by the fine wheel (`time >> CHUNK_SHIFT` is
/// the chunk number).
const CHUNK_SHIFT: u32 = SLOT_SHIFT + FINE_BITS;

/// Coarse levels: 4096 slots each. L1 slots are one chunk wide (window
/// ~537 s); L2 slots are one L1 window wide (window ~25 days).
const LEVEL_BITS: u32 = 12;
const LEVEL_SLOTS: usize = 1 << LEVEL_BITS;
const LEVEL_MASK: u64 = (LEVEL_SLOTS - 1) as u64;

/// Initial per-slot capacity. The refill scan only visits *occupied*
/// slots, so an always-empty slot never receives recycled capacity from
/// the drain path — the first push into it would allocate. As periodic
/// timers drift across the 4096-slot rings that would be a thin but
/// never-ending trickle of allocations; seeding every slot up front
/// (~1 MiB per wheel at typical value sizes) keeps steady-state pushes
/// allocation-free. Growth beyond the seed is recycled by the cascade
/// buffer swaps.
const SLOT_SEED: usize = 4;

/// Time spans covered by one chunk / one L1 window / one L2 window, in µs.
/// Exposed to the unit tests so horizon cases track the real geometry.
#[cfg(test)]
const CHUNK_SPAN: u64 = 1 << CHUNK_SHIFT;
#[cfg(test)]
const L1_SPAN: u64 = CHUNK_SPAN << LEVEL_BITS;
#[cfg(test)]
const L2_SPAN: u64 = L1_SPAN << LEVEL_BITS;

#[inline]
fn time_of(key: u128) -> u64 {
    (key >> 64) as u64
}

/// Two-level occupancy bitmap: bit `i` of `words` marks slot `i` occupied,
/// bit `w` of `summary` marks word `w` non-zero. `next_set` scans the
/// summary so skipping a fully empty region costs a few word reads.
#[derive(Debug)]
struct Occupancy {
    words: Box<[u64]>,
    summary: Box<[u64]>,
}

impl Occupancy {
    fn new(bits: usize) -> Self {
        let words = bits.div_ceil(64);
        Occupancy {
            words: vec![0u64; words].into_boxed_slice(),
            summary: vec![0u64; words.div_ceil(64)].into_boxed_slice(),
        }
    }

    #[inline]
    fn set(&mut self, bit: usize) {
        let w = bit / 64;
        self.words[w] |= 1u64 << (bit % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    #[inline]
    fn clear(&mut self, bit: usize) {
        let w = bit / 64;
        self.words[w] &= !(1u64 << (bit % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    /// Smallest set bit `>= from`, if any.
    fn next_set(&self, from: usize) -> Option<usize> {
        if from >= self.words.len() * 64 {
            return None;
        }
        let w = from / 64;
        let masked = self.words[w] & (!0u64 << (from % 64));
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        let mut sw = (w + 1) / 64;
        let mut mask = !0u64 << ((w + 1) % 64);
        while sw < self.summary.len() {
            let s = self.summary[sw] & mask;
            if s != 0 {
                let wi = sw * 64 + s.trailing_zeros() as usize;
                return Some(wi * 64 + self.words[wi].trailing_zeros() as usize);
            }
            mask = !0;
            sw += 1;
        }
        None
    }
}

/// Far-heap entry: min-key-first under `BinaryHeap`'s max-heap order.
struct FarEntry<V> {
    key: u128,
    value: V,
}

impl<V> PartialEq for FarEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<V> Eq for FarEntry<V> {}
impl<V> PartialOrd for FarEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for FarEntry<V> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// Hierarchical timing-wheel priority queue over packed `(time, seq)` keys.
///
/// Keys are `(time_micros << 64) | seq`; pops return entries in ascending
/// key order. Two preconditions, both upheld by the simulator: `seq` is a
/// counter incremented on every push (so pushes arrive in ascending `seq`
/// order), and a push's timestamp is never earlier than the last popped
/// entry's (the "no scheduling in the past" rule).
pub struct TimingWheel<V> {
    /// FIFO of entries pushed at the current drain time (`seq` order ==
    /// key order).
    now_lane: VecDeque<(u128, V)>,
    /// The slot currently being drained, in *descending* key order so
    /// `pop()` takes from the back. Stragglers are merge-inserted.
    batch: Vec<(u128, V)>,
    fine: Box<[Vec<(u128, V)>]>,
    /// Fine-slot occupancy. 16 slots fit one word, so the whole bitmap
    /// lives in a register — bit `i` set means slot `i` is non-empty.
    fine_occ: u64,
    l1: Box<[Vec<(u128, V)>]>,
    l1_occ: Occupancy,
    l2: Box<[Vec<(u128, V)>]>,
    l2_occ: Occupancy,
    far: BinaryHeap<FarEntry<V>>,
    /// Fine-wheel chunk the scan is in (`time >> CHUNK_SHIFT`).
    chunk: u64,
    /// Next fine slot to examine within the current chunk.
    cursor: usize,
    /// Timestamp of the last popped entry.
    drain_time: u64,
    /// Scratch buffer recycled across cascades so steady-state operation
    /// does not allocate.
    cascade_buf: Vec<(u128, V)>,
    len: usize,
}

impl<V> Default for TimingWheel<V> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<V> std::fmt::Debug for TimingWheel<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("drain_time", &self.drain_time)
            .field("chunk", &self.chunk)
            .finish_non_exhaustive()
    }
}

impl<V> TimingWheel<V> {
    /// Creates an empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimingWheel {
            now_lane: VecDeque::new(),
            batch: Vec::with_capacity(SLOT_SEED),
            fine: (0..FINE_SLOTS)
                .map(|_| Vec::with_capacity(SLOT_SEED))
                .collect(),
            fine_occ: 0,
            l1: (0..LEVEL_SLOTS)
                .map(|_| Vec::with_capacity(SLOT_SEED))
                .collect(),
            l1_occ: Occupancy::new(LEVEL_SLOTS),
            l2: (0..LEVEL_SLOTS)
                .map(|_| Vec::with_capacity(SLOT_SEED))
                .collect(),
            l2_occ: Occupancy::new(LEVEL_SLOTS),
            far: BinaryHeap::new(),
            chunk: 0,
            cursor: 0,
            drain_time: 0,
            cascade_buf: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues an entry. `key`'s timestamp must be `>=` the last popped
    /// entry's timestamp.
    pub fn push(&mut self, key: u128, value: V) {
        let t = time_of(key);
        self.len += 1;
        if t <= self.drain_time {
            debug_assert!(t == self.drain_time, "scheduled into the past");
            self.now_lane.push_back((key, value));
            return;
        }
        self.place(key, value);
    }

    /// Pops the entry with the smallest key.
    pub fn pop(&mut self) -> Option<(u128, V)> {
        // The now lane holds the current drain timestamp, which is `<=`
        // every time in the batch, so comparing full keys picks correctly
        // between a leftover batch entry with smaller `seq` and a later
        // now-lane push.
        let take_now = match (self.now_lane.front(), self.batch.last()) {
            (Some(a), Some(b)) => a.0 < b.0,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let entry = if take_now {
            self.now_lane.pop_front().expect("front was Some")
        } else {
            if self.batch.is_empty() && !self.refill() {
                return None;
            }
            self.batch.pop().expect("refill produced a batch")
        };
        self.len -= 1;
        self.drain_time = time_of(entry.0);
        Some(entry)
    }

    /// Key of the entry the next [`TimingWheel::pop`] would return.
    /// `&mut self` because finding it may advance the wheel's scan
    /// position (the scan never skips or reorders entries).
    pub fn peek_key(&mut self) -> Option<u128> {
        let now_key = self.now_lane.front().map(|e| e.0);
        if self.batch.is_empty() {
            if now_key.is_some() {
                // Everything in the wheel is strictly later than the
                // drain time, which is the now lane's timestamp.
                return now_key;
            }
            if !self.refill() {
                return None;
            }
        }
        let batch_key = self.batch.last().map(|e| e.0);
        match (now_key, batch_key) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Routes a future entry (strictly later than the drain time) into the
    /// right level. Also used to re-seat far-heap entries on a far jump.
    fn place(&mut self, key: u128, value: V) {
        let t = time_of(key);
        let chunk = t >> CHUNK_SHIFT;
        if chunk == self.chunk {
            let idx = ((t >> SLOT_SHIFT) & FINE_MASK) as usize;
            if idx < self.cursor {
                // The scan already passed (or is draining) this slot: merge
                // into the active batch.
                self.batch_insert(key, value);
            } else {
                self.fine[idx].push((key, value));
                self.fine_occ |= 1 << idx;
            }
        } else if chunk < self.chunk {
            // Entire chunk already passed by a peek; same remedy.
            self.batch_insert(key, value);
        } else if chunk >> LEVEL_BITS == self.chunk >> LEVEL_BITS {
            let idx = (chunk & LEVEL_MASK) as usize;
            self.l1[idx].push((key, value));
            self.l1_occ.set(idx);
        } else if chunk >> (2 * LEVEL_BITS) == self.chunk >> (2 * LEVEL_BITS) {
            let idx = ((chunk >> LEVEL_BITS) & LEVEL_MASK) as usize;
            self.l2[idx].push((key, value));
            self.l2_occ.set(idx);
        } else {
            self.far.push(FarEntry { key, value });
        }
    }

    /// Merge-inserts into the active batch, keeping it key-descending.
    fn batch_insert(&mut self, key: u128, value: V) {
        let pos = self.batch.partition_point(|e| e.0 > key);
        self.batch.insert(pos, (key, value));
    }

    /// Loads the next occupied slot into `batch`. Returns `false` when the
    /// wheel (beyond the now lane and batch) is empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        loop {
            // `cursor <= FINE_SLOTS < 64`, so the shift never overflows.
            let pending = self.fine_occ & (!0u64 << self.cursor);
            if pending != 0 {
                self.take_slot(pending.trailing_zeros() as usize);
                return true;
            }
            // Fine wheel exhausted: advance to the next occupied chunk in
            // this L1 window...
            let l1_pos = (self.chunk & LEVEL_MASK) as usize;
            if let Some(s) = self.l1_occ.next_set(l1_pos + 1) {
                self.enter_chunk((self.chunk & !LEVEL_MASK) | s as u64, s);
                continue;
            }
            // ...or the next occupied L1 window in this L2 window...
            let l2_pos = ((self.chunk >> LEVEL_BITS) & LEVEL_MASK) as usize;
            if let Some(s2) = self.l2_occ.next_set(l2_pos + 1) {
                let win = ((self.chunk >> LEVEL_BITS) & !LEVEL_MASK) | s2 as u64;
                self.cascade_l2(s2, win);
                let s = self.l1_occ.next_set(0).expect("cascaded slot was occupied");
                self.enter_chunk((win << LEVEL_BITS) | s as u64, s);
                continue;
            }
            // ...or jump straight to the far heap's minimum. Every lower
            // level is empty here, so re-seating cannot reorder anything.
            let Some(head) = self.far.peek() else {
                return false;
            };
            self.chunk = time_of(head.key) >> CHUNK_SHIFT;
            self.cursor = 0;
            self.drain_far();
        }
    }

    /// Moves fine slot `idx`'s entries into `batch`, sorted key-descending
    /// (the batch drains from the back). A slot usually holds one
    /// timestamp in `seq` order, so the reverse makes it sorted already
    /// and the sort is a cheap verification pass. The previous batch
    /// buffer's capacity is deposited into the slot, so slot storage is
    /// recycled instead of reallocated.
    fn take_slot(&mut self, idx: usize) {
        std::mem::swap(&mut self.batch, &mut self.fine[idx]);
        self.batch.reverse();
        if !self.batch.is_sorted_by(|a, b| a.0 > b.0) {
            self.batch.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        }
        self.fine_occ &= !(1 << idx);
        self.cursor = idx + 1;
    }

    /// Enters `chunk`, cascading its L1 slot into the fine wheel. Per-slot
    /// push order is preserved; [`TimingWheel::take_slot`] sorts on drain.
    fn enter_chunk(&mut self, chunk: u64, l1_slot: usize) {
        self.chunk = chunk;
        self.cursor = 0;
        let mut buf = std::mem::take(&mut self.cascade_buf);
        std::mem::swap(&mut buf, &mut self.l1[l1_slot]);
        self.l1_occ.clear(l1_slot);
        for (key, value) in buf.drain(..) {
            debug_assert_eq!(time_of(key) >> CHUNK_SHIFT, chunk);
            let idx = ((time_of(key) >> SLOT_SHIFT) & FINE_MASK) as usize;
            self.fine[idx].push((key, value));
            self.fine_occ |= 1 << idx;
        }
        self.cascade_buf = buf;
    }

    /// Cascades L2 slot `slot` (covering L1 window `win`) into L1.
    fn cascade_l2(&mut self, slot: usize, win: u64) {
        let mut buf = std::mem::take(&mut self.cascade_buf);
        std::mem::swap(&mut buf, &mut self.l2[slot]);
        self.l2_occ.clear(slot);
        for (key, value) in buf.drain(..) {
            let chunk = time_of(key) >> CHUNK_SHIFT;
            debug_assert_eq!(chunk >> LEVEL_BITS, win);
            let idx = (chunk & LEVEL_MASK) as usize;
            self.l1[idx].push((key, value));
            self.l1_occ.set(idx);
        }
        self.cascade_buf = buf;
    }

    /// Pulls every far-heap entry inside the current L2 window down into
    /// the wheel. The heap pops in key order and all lower levels are
    /// empty, so per-slot order stays push order.
    fn drain_far(&mut self) {
        let l2_win = self.chunk >> (2 * LEVEL_BITS);
        while let Some(head) = self.far.peek() {
            if time_of(head.key) >> (CHUNK_SHIFT + 2 * LEVEL_BITS) != l2_win {
                break;
            }
            let FarEntry { key, value } = self.far.pop().expect("peeked Some");
            self.place(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbps_rng::Rng;

    fn key(t: u64, seq: u64) -> u128 {
        ((t as u128) << 64) | seq as u128
    }

    /// Reference: drive the same pushes through a sorted model and compare
    /// full pop order.
    fn check_against_model(ops: Vec<(u64, u64)>) {
        let mut wheel = TimingWheel::new();
        let mut model: Vec<u128> = Vec::new();
        for &(t, s) in &ops {
            wheel.push(key(t, s), s);
            model.push(key(t, s));
        }
        model.sort_unstable();
        let mut got = Vec::new();
        while let Some((k, _)) = wheel.pop() {
            got.push(k);
        }
        assert_eq!(got, model);
        assert!(wheel.is_empty());
    }

    #[test]
    fn empty_wheel() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_key(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn same_timestamp_fifo() {
        check_against_model((0..100).map(|s| (1234, s)).collect());
    }

    #[test]
    fn ascending_and_descending_pushes() {
        check_against_model((0..50).map(|s| (s * 7, s)).collect());
        check_against_model((0..50).map(|s| ((50 - s) * 7, s)).collect());
    }

    #[test]
    fn multiple_timestamps_share_a_fine_slot() {
        // 2^10 µs per slot: timestamps 100, 700, 300 land in slot 0 out of
        // time order and must come back sorted.
        check_against_model(vec![(100, 0), (700, 1), (300, 2), (100, 3), (1040, 4)]);
    }

    #[test]
    fn cross_chunk_and_window_horizons() {
        // One entry per level: now, fine, L1, L2, far.
        let horizons = [
            0u64,
            50_000,
            CHUNK_SPAN * 3 + 17,
            L1_SPAN * 2 + 999,
            L2_SPAN * 5 + 1,
        ];
        check_against_model(
            horizons
                .iter()
                .enumerate()
                .map(|(s, &t)| (t, s as u64))
                .collect(),
        );
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut rng = Rng::seed_from_u64(0x57ee1);
        let mut wheel = TimingWheel::new();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u128>> =
            std::collections::BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) || heap.is_empty() {
                // Mixed horizons: mostly near-future, occasionally far.
                let delay = match rng.gen_range(0u64..100) {
                    0..=9 => 0,
                    10..=79 => 50_000,
                    80..=94 => rng.gen_range(0u64..200_000),
                    95..=98 => rng.gen_range(0u64..400_000_000),
                    _ => rng.gen_range(0u64..2_000_000_000_000),
                };
                let k = key(now + delay, seq);
                seq += 1;
                wheel.push(k, ());
                heap.push(std::cmp::Reverse(k));
            } else {
                let expect = heap.pop().map(|r| r.0);
                assert_eq!(wheel.peek_key(), expect);
                let got = wheel.pop().map(|e| e.0);
                assert_eq!(got, expect);
                now = (expect.unwrap() >> 64) as u64;
            }
            assert_eq!(wheel.len(), heap.len());
        }
        while let Some(std::cmp::Reverse(k)) = heap.pop() {
            assert_eq!(wheel.pop().map(|e| e.0), Some(k));
        }
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn peek_then_push_between_keeps_order() {
        // A peek advances the scan past empty slots; a later push landing
        // behind the scan position must still pop in key order.
        let mut wheel = TimingWheel::new();
        wheel.push(key(100_000, 0), 0);
        assert_eq!(wheel.peek_key(), Some(key(100_000, 0)));
        // Straggler behind the scan, in an earlier (already passed) chunk.
        wheel.push(key(70_000, 1), 1);
        // Straggler in the same chunk, behind the cursor.
        wheel.push(key(99_999, 2), 2);
        // Same timestamp as the batch head, larger seq.
        wheel.push(key(100_000, 3), 3);
        let order: Vec<u128> = std::iter::from_fn(|| wheel.pop().map(|e| e.0)).collect();
        assert_eq!(
            order,
            vec![
                key(70_000, 1),
                key(99_999, 2),
                key(100_000, 0),
                key(100_000, 3)
            ]
        );
    }

    #[test]
    fn straggler_into_the_draining_slot() {
        // Pop an entry, then push a *later* timestamp that maps into the
        // slot currently being drained: it must merge into the batch.
        let mut wheel = TimingWheel::new();
        wheel.push(key(2048, 0), 0); // slot 2
        wheel.push(key(2050, 1), 1); // slot 2
        assert_eq!(wheel.pop(), Some((key(2048, 0), 0)));
        wheel.push(key(2049, 2), 2); // between drain time and batch head
        assert_eq!(wheel.pop(), Some((key(2049, 2), 2)));
        assert_eq!(wheel.pop(), Some((key(2050, 1), 1)));
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn now_lane_vs_leftover_batch_entries() {
        // Two entries share a timestamp; after popping the first, a
        // zero-delay push at that same timestamp gets a larger seq and
        // must pop *after* the leftover batch entry.
        let mut wheel = TimingWheel::new();
        wheel.push(key(1000, 0), 0);
        wheel.push(key(1000, 1), 1);
        assert_eq!(wheel.pop(), Some((key(1000, 0), 0)));
        wheel.push(key(1000, 2), 2); // now-lane push
        assert_eq!(wheel.pop(), Some((key(1000, 1), 1)));
        assert_eq!(wheel.pop(), Some((key(1000, 2), 2)));
    }

    #[test]
    fn randomized_against_model() {
        // Monotone-now randomized soak across all horizons, including
        // slot-sharing timestamps (the model is a full sort).
        let mut rng = Rng::seed_from_u64(0xCA1E);
        let mut ops = Vec::new();
        for s in 0..5_000u64 {
            let t = match rng.gen_range(0u64..10) {
                0..=5 => rng.gen_range(0u64..200_000),
                6..=7 => rng.gen_range(0u64..CHUNK_SPAN * 8),
                8 => rng.gen_range(0u64..L1_SPAN * 3),
                _ => rng.gen_range(0u64..L2_SPAN * 2),
            };
            ops.push((t, s));
        }
        check_against_model(ops);
    }

    #[test]
    fn occupancy_next_set() {
        let mut occ = Occupancy::new(4096);
        assert_eq!(occ.next_set(0), None);
        occ.set(0);
        occ.set(63);
        occ.set(64);
        occ.set(4_000);
        assert_eq!(occ.next_set(0), Some(0));
        assert_eq!(occ.next_set(1), Some(63));
        assert_eq!(occ.next_set(64), Some(64));
        assert_eq!(occ.next_set(65), Some(4_000));
        occ.clear(4_000);
        assert_eq!(occ.next_set(65), None);
        assert_eq!(occ.next_set(4096 + 5), None);
    }
}

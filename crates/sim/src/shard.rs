//! Sharded conservative parallel DES engine.
//!
//! [`ShardedSimulator`] partitions the node universe into `S` contiguous
//! shards, each with its own event queue ([`EventQueue`]: timing wheel or
//! heap, same as the single-threaded engine), its own `(time, seq)`
//! sequence counter, and its own RNG stream. One worker thread per shard
//! processes events in **bounded epochs**: every epoch starts at the global
//! minimum pending event time `gmin` and extends to `gmin + W` (exclusive),
//! where `W` is the delay model's minimum one-hop delay — the conservative
//! **lookahead** ([`NetConfig::lookahead`]).
//!
//! Why this is safe (the classic conservative-PDES argument): a message
//! sent at time `s ∈ [gmin, gmin + W)` arrives no earlier than `s + W ≥
//! gmin + W`, i.e. always in a *strictly later* epoch. Cross-shard messages
//! can therefore be exchanged at epoch barriers — each worker drains its
//! inbound mailboxes before computing the next epoch — without ever
//! presenting a shard an event earlier than something it already processed.
//! The paper's fixed 50 ms per-hop delay makes `W` large and constant, so
//! epochs are wide and barrier overhead is amortized over many events.
//!
//! Zero-delay `send_local` self-messages never cross shards (they stay on
//! the sending node), so `W > 0` only needs to hold for *network* sends —
//! which the delay model guarantees; the deployment layer rejects sharded
//! configurations whose delay model admits zero-delay hops.
//!
//! # Determinism
//!
//! A run is deterministic for a given `(seed, shard-count)`: inbound
//! mailboxes are drained in source-shard order, so re-sequencing does not
//! depend on thread scheduling. Runs with *different* shard counts produce
//! the same delivered sets and metric tables under the paper's fixed-delay,
//! zero-loss model (per-shard RNGs draw nothing, so event timing is
//! identical); only same-`(node, time)` arrival *ties* from different
//! source shards may process in a different order than the single global
//! sequence — which the protocol layers are insensitive to. Under jitter or
//! loss models the per-shard RNG streams diverge from the single-threaded
//! stream, so cross-shard-count comparisons only hold per shard count.
//!
//! # Driver operations
//!
//! Everything outside `run*` — [`ShardedSimulator::with_node`], injection,
//! crash/revive, metric reads — runs on the caller's thread with no workers
//! alive. Driver-initiated sends are routed straight into the destination
//! shard's queue (safe: their delay is at least the lookahead). Membership
//! changes (crash/revive) mark the queues dirty; the next run start
//! re-routes any cross-shard deliveries whose alive-based destination
//! changed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

use cbps_rng::Rng;

use crate::config::NetConfig;
use crate::metrics::Metrics;
use crate::obs::TraceId;
use crate::pool::EventPool;
use crate::sim::{
    key_time, pack, Action, Context, EventKind, EventQueue, Node, NodeIdx, SimParts, Simulator,
};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEntry, TraceKind, Tracer};

/// Odd multiplier used to derive independent per-shard RNG seeds from the
/// run seed (splitmix64's golden-gamma constant).
const SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A routed event paired with its scheduled time — the currency of the
/// cross-shard mailboxes and the queue rebuild.
type TimedEvent<N> = (SimTime, EventKind<<N as Node>::Msg, <N as Node>::Timer>);

/// One lazily allocated cross-shard mailbox: a pointer-sized empty word
/// until the first sender materializes the mutex-plus-buffer.
type LazySlot<T> = OnceLock<Box<Mutex<Vec<T>>>>;

/// Per-shard state: a contiguous slice of the node universe plus the
/// shard's own queue, clock, sequencer, RNG and perf counters.
struct ShardCore<N: Node> {
    /// Global index of `nodes[0]`.
    start: usize,
    nodes: Vec<N>,
    queue: EventQueue,
    /// Slab pool holding this shard's queued event payloads; the queue
    /// orders 8-byte handles into it (see [`crate::pool`]).
    pool: EventPool<EventKind<N::Msg, N::Timer>>,
    /// The shard's local clock: time of the last event it processed.
    /// Always ≤ the global clock between runs.
    time: SimTime,
    seq: u64,
    rng: Rng,
    events_processed: u64,
    queue_peak: usize,
    /// Reusable action buffer for upcalls (retains capacity across epochs).
    actions: Vec<Action<N::Msg, N::Timer>>,
    /// Reusable per-destination-shard outbound buffers (slab-style: drained
    /// into the shared mailboxes at epoch end, capacity retained).
    outbufs: Vec<Vec<TimedEvent<N>>>,
}

impl<N: Node> ShardCore<N> {
    #[inline]
    fn push_event(&mut self, time: SimTime, kind: EventKind<N::Msg, N::Timer>) {
        let seq = self.seq;
        self.seq += 1;
        let handle = self.pool.insert(kind);
        self.queue.push(pack(time, seq), handle);
    }

    /// Pops the next event, checking its payload out of the pool.
    #[inline]
    fn pop_event(&mut self) -> Option<crate::sim::KeyedEvent<N::Msg, N::Timer>> {
        let (key, handle) = self.queue.pop()?;
        Some((key, self.pool.remove(handle)))
    }

    /// Smallest pending event time in this shard's queue, as microseconds
    /// (`u64::MAX` when empty).
    #[inline]
    fn min_pending_us(&mut self) -> u64 {
        match self.queue.peek_key() {
            Some(key) => key_time(key).as_micros(),
            None => u64::MAX,
        }
    }
}

/// A parallel discrete-event simulator: the sharded counterpart of
/// [`Simulator`], produced by [`ShardedSimulator::from_simulator`].
///
/// The driver-facing surface mirrors [`Simulator`]; `run`/`run_until`
/// execute shards on worker threads in conservative epochs (see the module
/// docs). Metrics, traces and observability fold into the same global sinks
/// a single-threaded run would fill, independent of shard join order.
pub struct ShardedSimulator<N: Node> {
    shards: Vec<ShardCore<N>>,
    /// Global liveness, indexed by global node index. Frozen while workers
    /// run; only driver-level crash/revive mutate it.
    alive: Vec<bool>,
    config: NetConfig,
    /// The global clock (what [`ShardedSimulator::now`] reports).
    time: SimTime,
    /// Nodes per shard (`ceil(n / shards)` at construction).
    chunk: usize,
    lookahead: SimDuration,
    /// The authoritative metrics sink: driver upcalls record here directly;
    /// per-shard run sinks fold in at every run end.
    metrics: Metrics,
    tracer: Tracer,
    /// RNG for driver-level upcalls (continues the seed simulator's
    /// stream).
    driver_rng: Rng,
    /// Reusable action buffer for driver upcalls.
    actions: Vec<Action<N::Msg, N::Timer>>,
    /// Cross-shard mailboxes, indexed `[dst * S + src]`. Only touched while
    /// workers run; empty between runs (buffers retain capacity). Each
    /// slot starts as an empty `OnceLock` — the mutex-plus-buffer is
    /// heap-allocated by the first sender that uses the pair — so the
    /// dense `S x S` matrix costs one pointer-sized word per never-used
    /// pair instead of a full mutex-plus-`Vec`, and only pairs that
    /// actually communicate ever materialize.
    slots: Vec<LazySlot<TimedEvent<N>>>,
    /// Fresh-origin broadcast mailboxes, same indexing (and same lazy
    /// allocation) as `slots`.
    fresh_slots: Vec<LazySlot<(TraceId, SimTime)>>,
    /// Occupancy bitmap over `slots`: bit `src % 64` of word `dst *
    /// occ_words + src / 64` is set when mailbox `(dst, src)` is non-empty.
    /// Senders set the bit after filling the mailbox; the receiver swaps
    /// its words to zero at drain time and locks only the flagged pairs —
    /// so an `S`-shard run does not pay `S²` mutex acquisitions per epoch
    /// when cross-shard traffic is sparse. The epoch barrier between flush
    /// and drain orders the flag against the mailbox contents, so relaxed
    /// atomics suffice.
    occ: Vec<AtomicU64>,
    /// Same, for the fresh-origin mailboxes.
    fresh_occ: Vec<AtomicU64>,
    /// Bitmap words per destination shard (`ceil(S / 64)`).
    occ_words: usize,
    /// Events processed / queue peak inherited from the pre-conversion
    /// single-threaded simulator.
    events_base: u64,
    peak_base: usize,
    /// Set by crash/revive: queued cross-shard deliveries may need
    /// re-routing before the next run.
    membership_dirty: bool,
}

impl<N: Node> std::fmt::Debug for ShardedSimulator<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("shards", &self.shards.len())
            .field("nodes", &self.alive.len())
            .field("time", &self.time)
            .field("lookahead", &self.lookahead)
            .field("events_processed", &self.events_processed())
            .finish_non_exhaustive()
    }
}

impl<N: Node> ShardedSimulator<N> {
    /// Splits a single-threaded simulator into `shards` shards (clamped to
    /// `[1, node-count]`). Queued events are re-routed to their owning
    /// shards in global `(time, seq)` order, so the first sharded run
    /// continues exactly where the single-threaded engine left off.
    ///
    /// # Panics
    ///
    /// Panics if the delay model's minimum delay is zero — the conservative
    /// epoch width would be zero and workers could never make progress.
    pub fn from_simulator(sim: Simulator<N>, shards: usize) -> Self {
        let parts: SimParts<N> = sim.into_parts();
        assert!(
            parts.config.lookahead() > SimDuration::ZERO,
            "sharded simulation requires a positive minimum network delay \
             (the conservative lookahead)"
        );
        let n = parts.nodes.len();
        let s_count = shards.clamp(1, n.max(1));
        let chunk = n.div_ceil(s_count).max(1);
        let mut cores: Vec<ShardCore<N>> = Vec::with_capacity(s_count);
        let mut nodes = parts.nodes;
        // Split back-to-front so each shard's Vec is carved off without
        // shifting the rest.
        let bounds: Vec<usize> = (0..s_count).map(|s| (s * chunk).min(n)).collect();
        for s in (0..s_count).rev() {
            let shard_nodes = nodes.split_off(bounds[s]);
            cores.push(ShardCore {
                start: bounds[s],
                nodes: shard_nodes,
                queue: EventQueue::new(parts.config.scheduler),
                pool: EventPool::new(parts.config.pool),
                time: parts.time,
                seq: 0,
                rng: Rng::seed_from_u64(
                    parts
                        .config
                        .seed
                        .wrapping_add(SEED_GAMMA.wrapping_mul(s as u64 + 1)),
                ),
                events_processed: 0,
                queue_peak: 0,
                actions: Vec::new(),
                outbufs: (0..s_count).map(|_| Vec::new()).collect(),
            });
        }
        cores.reverse();
        let mut this = ShardedSimulator {
            shards: cores,
            alive: parts.alive,
            config: parts.config,
            time: parts.time,
            chunk,
            lookahead: parts.config.lookahead(),
            metrics: parts.metrics,
            tracer: parts.tracer,
            driver_rng: parts.rng,
            actions: Vec::new(),
            slots: (0..s_count * s_count).map(|_| OnceLock::new()).collect(),
            fresh_slots: (0..s_count * s_count).map(|_| OnceLock::new()).collect(),
            occ: (0..s_count * s_count.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            fresh_occ: (0..s_count * s_count.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            occ_words: s_count.div_ceil(64),
            events_base: parts.events_processed,
            peak_base: parts.queue_peak,
            membership_dirty: false,
        };
        // Re-route the inherited queue in global pop order: per-shard
        // relative order (and hence all same-shard ties) is preserved.
        for (key, kind) in parts.events {
            let time = key_time(key);
            let dst = this.route(&kind);
            this.shards[dst].push_event(time, kind);
        }
        this
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, idx: NodeIdx) -> usize {
        (idx / self.chunk).min(self.shards.len() - 1)
    }

    /// The shard an event belongs to: deliveries go to the destination
    /// while it is alive, otherwise to the sender (where the send-failure
    /// upcall runs); timers and injections are owned by their node.
    fn route(&self, kind: &EventKind<N::Msg, N::Timer>) -> usize {
        match *kind {
            EventKind::Deliver { from, to, .. } => {
                if self.alive[to] {
                    self.shard_of(to)
                } else {
                    self.shard_of(from)
                }
            }
            EventKind::Inject { to, .. } => self.shard_of(to),
            EventKind::Timer { node, .. } => self.shard_of(node),
        }
    }

    /// Total nodes ever added (alive or crashed).
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// `true` when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Shared access to a node's state.
    pub fn node(&self, idx: NodeIdx) -> &N {
        let s = self.shard_of(idx);
        &self.shards[s].nodes[idx - self.shards[s].start]
    }

    /// Exclusive access to a node's state.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut N {
        let s = self.shard_of(idx);
        let start = self.shards[s].start;
        &mut self.shards[s].nodes[idx - start]
    }

    /// Iterates over `(index, node)` pairs in ascending global index order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, &N)> {
        self.shards
            .iter()
            .flat_map(|c| c.nodes.iter().enumerate().map(|(i, n)| (c.start + i, n)))
    }

    /// Adds a node (appended to the shard owning the next global index) and
    /// returns its index.
    pub fn add_node(&mut self, node: N) -> NodeIdx {
        let idx = self.alive.len();
        let s = self.shard_of(idx);
        debug_assert_eq!(self.shards[s].start + self.shards[s].nodes.len(), idx);
        self.shards[s].nodes.push(node);
        self.alive.push(true);
        idx
    }

    /// `true` when the node has not been crashed.
    pub fn is_alive(&self, idx: NodeIdx) -> bool {
        self.alive[idx]
    }

    /// Crashes a node (see [`Simulator::crash`]).
    pub fn crash(&mut self, idx: NodeIdx) {
        self.alive[idx] = false;
        self.membership_dirty = true;
    }

    /// Revives a crashed node (see [`Simulator::revive`]).
    pub fn revive(&mut self, idx: NodeIdx) {
        self.alive[idx] = true;
        self.membership_dirty = true;
    }

    /// Current global simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total upcalls processed across all shards (plus any processed before
    /// the conversion). Summation is commutative, so the total is
    /// independent of shard order.
    pub fn events_processed(&self) -> u64 {
        self.events_base + self.shards.iter().map(|c| c.events_processed).sum::<u64>()
    }

    /// Deepest any one shard's queue has been observed (sampled 1-in-64 per
    /// shard, like the single-threaded engine). `max` over shards is
    /// commutative, so the fold is join-order independent.
    pub fn queue_peak(&self) -> usize {
        self.shards
            .iter()
            .map(|c| c.queue_peak)
            .max()
            .unwrap_or(0)
            .max(self.peak_base)
    }

    /// The run's metrics (global sink; shard sinks are folded in at every
    /// run end, so reads between runs see complete totals).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Exclusive access to the run's metrics.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The driver-level deterministic RNG.
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.driver_rng
    }

    /// Enables execution tracing (see [`Simulator::enable_trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::new(capacity);
    }

    /// The recorded trace (folded from shard tracers at every run end).
    pub fn trace(&self) -> &Tracer {
        &self.tracer
    }

    /// Schedules an injected message (see [`Simulator::inject_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `when` is in the past.
    pub fn inject_at(&mut self, when: SimTime, to: NodeIdx, msg: N::Msg) {
        assert!(when >= self.time, "cannot schedule in the past");
        let dst = self.shard_of(to);
        self.shards[dst].push_event(when, EventKind::Inject { to, msg });
    }

    /// Schedules a timer upcall (see [`Simulator::arm_timer_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `when` is in the past.
    pub fn arm_timer_at(&mut self, when: SimTime, node: NodeIdx, timer: N::Timer) {
        assert!(when >= self.time, "cannot schedule in the past");
        let dst = self.shard_of(node);
        self.shards[dst].push_event(when, EventKind::Timer { node, timer });
    }

    /// Runs a closure against a node with a live [`Context`] at the global
    /// clock, then applies its actions (driver-level; no workers running).
    /// Cross-shard sends enqueue directly into the destination shard —
    /// safe, because their delay is at least the lookahead.
    pub fn with_node<R>(
        &mut self,
        idx: NodeIdx,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg, N::Timer>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.actions);
        let result = {
            let s = self.shard_of(idx);
            let start = self.shards[s].start;
            let mut ctx = Context::assemble(
                idx,
                self.time,
                &mut self.driver_rng,
                &mut self.metrics,
                &mut self.tracer,
                &mut actions,
            );
            f(&mut self.shards[s].nodes[idx - start], &mut ctx)
        };
        self.apply_driver_actions(idx, &mut actions);
        self.actions = actions;
        result
    }

    /// Applies actions collected by a driver-level upcall, routing each
    /// event to its owning shard.
    fn apply_driver_actions(
        &mut self,
        origin: NodeIdx,
        actions: &mut Vec<Action<N::Msg, N::Timer>>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if self.config.loss_probability > 0.0
                        && self.driver_rng.f64() < self.config.loss_probability
                    {
                        continue;
                    }
                    let delay = self.config.delay.sample(&mut self.driver_rng);
                    let kind = EventKind::Deliver {
                        from: origin,
                        to,
                        msg,
                    };
                    let dst = self.route(&kind);
                    self.shards[dst].push_event(self.time + delay, kind);
                }
                Action::SendLocal { msg } => {
                    let dst = self.shard_of(origin);
                    self.shards[dst].push_event(
                        self.time,
                        EventKind::Deliver {
                            from: origin,
                            to: origin,
                            msg,
                        },
                    );
                }
                Action::ArmTimer { delay, timer } => {
                    let dst = self.shard_of(origin);
                    self.shards[dst].push_event(
                        self.time + delay,
                        EventKind::Timer {
                            node: origin,
                            timer,
                        },
                    );
                }
            }
        }
    }

    /// Re-routes queued deliveries whose alive-based destination shard
    /// changed since they were enqueued (after crash/revive). Preserves
    /// per-shard relative order for events that stay; moved events append
    /// after them in source-shard order.
    fn rebuild_queues(&mut self) {
        let s_count = self.shards.len();
        let mut kept: Vec<Vec<TimedEvent<N>>> = (0..s_count).map(|_| Vec::new()).collect();
        let mut moved: Vec<Vec<TimedEvent<N>>> = (0..s_count).map(|_| Vec::new()).collect();
        for (s, kept) in kept.iter_mut().enumerate() {
            while let Some((key, kind)) = self.shards[s].pop_event() {
                let time = key_time(key);
                let dst = self.route(&kind);
                if dst == s {
                    kept.push((time, kind));
                } else {
                    moved[dst].push((time, kind));
                }
            }
        }
        let scheduler = self.config.scheduler;
        for (core, (kept, moved)) in self.shards.iter_mut().zip(kept.into_iter().zip(moved)) {
            // Fresh queues: draining advanced each wheel's drain position
            // to its *latest* popped entry, which would reject the earlier
            // events being re-distributed. A new wheel accepts any time.
            core.queue = EventQueue::new(scheduler);
            core.seq = 0;
            for (time, kind) in kept.into_iter().chain(moved) {
                core.push_event(time, kind);
            }
        }
        self.membership_dirty = false;
    }

    /// Smallest pending event time across all shards, in microseconds.
    fn global_min_us(&mut self) -> u64 {
        self.shards
            .iter_mut()
            .map(|c| c.min_pending_us())
            .min()
            .unwrap_or(u64::MAX)
    }
}

impl<N> ShardedSimulator<N>
where
    N: Node + Send,
    N::Msg: Send,
    N::Timer: Send,
{
    /// Runs until every shard's queue is empty.
    pub fn run(&mut self) {
        self.run_epochs(u64::MAX);
        let t = self
            .shards
            .iter()
            .map(|c| c.time)
            .max()
            .unwrap_or(self.time);
        if t > self.time {
            self.time = t;
        }
    }

    /// Processes every event with `time <= until`, then advances the global
    /// clock to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.run_epochs(until.as_micros());
        if until > self.time {
            self.time = until;
        }
    }

    /// The epoch driver: spawns one worker per shard and runs conservative
    /// epochs until no shard holds an event with time ≤ `until_us`.
    fn run_epochs(&mut self, until_us: u64) {
        if self.membership_dirty {
            self.rebuild_queues();
        }
        // Fast path: nothing runnable — skip thread spawns entirely (trace
        // replay calls run_until once per operation; most of those find the
        // next event beyond the target time).
        let gmin = self.global_min_us();
        if gmin == u64::MAX || gmin > until_us {
            return;
        }
        let s_count = self.shards.len();
        let w_us = self.lookahead.as_micros();
        debug_assert!(w_us > 0, "zero lookahead checked at construction");
        let mut part_metrics: Vec<Metrics> = (0..s_count)
            .map(|_| self.metrics.fork_for_shard())
            .collect();
        let mut part_tracers: Vec<Tracer> = (0..s_count)
            .map(|_| Tracer::new(self.tracer.capacity()))
            .collect();
        let mins: Vec<AtomicU64> = (0..s_count).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(s_count);
        {
            let alive = &self.alive;
            let config = &self.config;
            let slots = &self.slots;
            let fresh_slots = &self.fresh_slots;
            let occ = &self.occ;
            let fresh_occ = &self.fresh_occ;
            let occ_words = self.occ_words;
            let mins = &mins;
            let barrier = &barrier;
            let chunk = self.chunk;
            std::thread::scope(|sc| {
                for (my, ((core, metrics), tracer)) in self
                    .shards
                    .iter_mut()
                    .zip(part_metrics.iter_mut())
                    .zip(part_tracers.iter_mut())
                    .enumerate()
                {
                    sc.spawn(move || {
                        shard_worker(ShardWorker {
                            my,
                            s_count,
                            chunk,
                            core,
                            metrics,
                            tracer,
                            alive,
                            config,
                            slots,
                            fresh_slots,
                            occ,
                            fresh_occ,
                            occ_words,
                            mins,
                            barrier,
                            until_us,
                            w_us,
                        });
                    });
                }
            });
        }
        self.metrics.absorb_shards(&mut part_metrics);
        self.tracer.absorb_shards(&mut part_tracers);
    }
}

/// Everything one worker thread needs for one run (borrowed per-shard
/// exclusive state plus the shared epoch-coordination structures).
struct ShardWorker<'a, N: Node> {
    my: usize,
    s_count: usize,
    chunk: usize,
    core: &'a mut ShardCore<N>,
    metrics: &'a mut Metrics,
    tracer: &'a mut Tracer,
    alive: &'a [bool],
    config: &'a NetConfig,
    slots: &'a [LazySlot<TimedEvent<N>>],
    fresh_slots: &'a [LazySlot<(TraceId, SimTime)>],
    occ: &'a [AtomicU64],
    fresh_occ: &'a [AtomicU64],
    occ_words: usize,
    mins: &'a [AtomicU64],
    barrier: &'a Barrier,
    until_us: u64,
    w_us: u64,
}

impl<N: Node> ShardWorker<'_, N> {
    #[inline]
    fn shard_of(&self, idx: NodeIdx) -> usize {
        (idx / self.chunk).min(self.s_count - 1)
    }

    /// Drains everything sibling shards handed this one at the previous
    /// barrier: learned trace origins first (so latency samples in this
    /// epoch anchor correctly), then cross-shard events, in source-shard
    /// order — which makes re-sequencing deterministic regardless of
    /// thread scheduling. Only mailboxes flagged in the occupancy bitmaps
    /// are locked; empty `(dst, src)` pairs cost one atomic word read per
    /// 64 sources.
    fn drain_inbound(&mut self) {
        let base = self.my * self.occ_words;
        for w in 0..self.occ_words {
            let mut bits = self.fresh_occ[base + w].swap(0, Ordering::Relaxed);
            while bits != 0 {
                let src = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut v = self.fresh_slots[self.my * self.s_count + src]
                    .get()
                    .expect("flagged fresh-origin mailbox was initialized by its sender")
                    .lock()
                    .expect("fresh-origin mailbox poisoned");
                for (trace, at) in v.drain(..) {
                    self.metrics.obs_mut().add_origin(trace, at);
                }
            }
        }
        for w in 0..self.occ_words {
            let mut bits = self.occ[base + w].swap(0, Ordering::Relaxed);
            while bits != 0 {
                let src = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut v = self.slots[self.my * self.s_count + src]
                    .get()
                    .expect("flagged event mailbox was initialized by its sender")
                    .lock()
                    .expect("event mailbox poisoned");
                for (time, kind) in v.drain(..) {
                    self.core.push_event(time, kind);
                }
            }
        }
    }

    /// Flushes this epoch's outbound events and fresh origins into sibling
    /// mailboxes (read by them only after the next barrier), flagging each
    /// filled mailbox in the occupancy bitmaps.
    fn flush_outbound(&mut self) {
        let my_word = self.my / 64;
        let my_bit = 1u64 << (self.my % 64);
        for dst in 0..self.s_count {
            if dst == self.my || self.core.outbufs[dst].is_empty() {
                continue;
            }
            let mut v = self.slots[dst * self.s_count + self.my]
                .get_or_init(Default::default)
                .lock()
                .expect("event mailbox poisoned");
            v.extend(self.core.outbufs[dst].drain(..));
            drop(v);
            self.occ[dst * self.occ_words + my_word].fetch_or(my_bit, Ordering::Relaxed);
        }
        let fresh = self.metrics.obs_mut().take_fresh_origins();
        if !fresh.is_empty() {
            for dst in 0..self.s_count {
                if dst == self.my {
                    continue;
                }
                let mut v = self.fresh_slots[dst * self.s_count + self.my]
                    .get_or_init(Default::default)
                    .lock()
                    .expect("fresh-origin mailbox poisoned");
                v.extend(fresh.iter().copied());
                drop(v);
                self.fresh_occ[dst * self.occ_words + my_word].fetch_or(my_bit, Ordering::Relaxed);
            }
        }
    }

    /// Processes one local event; mirrors [`Simulator::step`] exactly
    /// (including the 1-in-64 queue-depth sample).
    fn step_one(&mut self) {
        let Some((key, kind)) = self.core.pop_event() else {
            return;
        };
        let time = key_time(key);
        debug_assert!(time >= self.core.time, "shard queue went backwards");
        self.core.time = time;
        self.core.events_processed += 1;
        if self.core.events_processed & 63 == 0 {
            let depth = self.core.queue.len() + 1;
            if depth > self.core.queue_peak {
                self.core.queue_peak = depth;
            }
            if self.metrics.obs().enabled() {
                self.metrics.obs_mut().sample("queue.depth", depth as u64);
            }
        }
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if self.alive[to] {
                    self.upcall(to, TraceKind::Deliver, |node, ctx| {
                        node.on_message(from, msg, ctx)
                    });
                } else if from != to && self.alive[from] {
                    self.upcall(from, TraceKind::SendFailed, |node, ctx| {
                        node.on_send_failed(to, msg, ctx)
                    });
                }
            }
            EventKind::Inject { to, msg } => {
                if self.alive[to] {
                    self.upcall(to, TraceKind::Deliver, |node, ctx| {
                        node.on_message(to, msg, ctx)
                    });
                }
            }
            EventKind::Timer { node, timer } => {
                if self.alive[node] {
                    self.upcall(node, TraceKind::Timer, |n, ctx| n.on_timer(timer, ctx));
                }
            }
        }
    }

    fn upcall(
        &mut self,
        on: NodeIdx,
        kind: TraceKind,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg, N::Timer>),
    ) {
        debug_assert_eq!(self.shard_of(on), self.my, "cross-shard upcall");
        self.tracer.record(TraceEntry {
            at: self.core.time,
            node: on,
            kind,
            tag: "",
        });
        let mut actions = std::mem::take(&mut self.core.actions);
        {
            let mut ctx = Context::assemble(
                on,
                self.core.time,
                &mut self.core.rng,
                self.metrics,
                self.tracer,
                &mut actions,
            );
            f(&mut self.core.nodes[on - self.core.start], &mut ctx);
        }
        self.apply_actions(on, &mut actions);
        self.core.actions = actions;
    }

    /// Applies one upcall's actions: intra-shard events go straight into
    /// the local queue; cross-shard deliveries buffer for the barrier
    /// exchange (they cannot be needed before the next epoch — see the
    /// module docs).
    fn apply_actions(&mut self, origin: NodeIdx, actions: &mut Vec<Action<N::Msg, N::Timer>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if self.config.loss_probability > 0.0
                        && self.core.rng.f64() < self.config.loss_probability
                    {
                        continue;
                    }
                    let delay = self.config.delay.sample(&mut self.core.rng);
                    let dst = if self.alive[to] {
                        self.shard_of(to)
                    } else {
                        self.shard_of(origin)
                    };
                    let kind = EventKind::Deliver {
                        from: origin,
                        to,
                        msg,
                    };
                    let at = self.core.time + delay;
                    if dst == self.my {
                        self.core.push_event(at, kind);
                    } else {
                        self.core.outbufs[dst].push((at, kind));
                    }
                }
                Action::SendLocal { msg } => {
                    // Zero-delay, but always same-node, hence same-shard.
                    self.core.push_event(
                        self.core.time,
                        EventKind::Deliver {
                            from: origin,
                            to: origin,
                            msg,
                        },
                    );
                }
                Action::ArmTimer { delay, timer } => {
                    self.core.push_event(
                        self.core.time + delay,
                        EventKind::Timer {
                            node: origin,
                            timer,
                        },
                    );
                }
            }
        }
    }
}

/// One worker's epoch loop. Two barriers per epoch:
///
/// 1. after draining inbound mailboxes and publishing the local minimum
///    pending time (so the epoch window `[gmin, gmin + W)` is computed from
///    complete information), and
/// 2. after processing the window and flushing outbound mailboxes (so no
///    shard starts draining while another is still writing).
///
/// All workers compute the same `gmin` from the same published minima, so
/// they agree on every epoch boundary — and on termination, when `gmin`
/// exceeds the run target.
fn shard_worker<N: Node>(mut w: ShardWorker<'_, N>) {
    loop {
        w.drain_inbound();
        let lmin = w.core.min_pending_us();
        w.mins[w.my].store(lmin, Ordering::Relaxed);
        w.barrier.wait();
        let gmin = w
            .mins
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");
        if gmin == u64::MAX || gmin > w.until_us {
            // Unanimous: every worker sees the same gmin and exits here,
            // keeping barrier phases aligned.
            return;
        }
        // Epoch window [gmin, gmin + W), clipped to the run target.
        let cap_us = gmin.saturating_add(w.w_us);
        while let Some(key) = w.core.queue.peek_key() {
            let t_us = key_time(key).as_micros();
            if t_us >= cap_us || t_us > w.until_us {
                break;
            }
            w.step_one();
        }
        w.flush_outbound();
        w.barrier.wait();
    }
}

/// The engine behind a deployment: the classic single-threaded simulator
/// (`--shards 1`, byte-identical to the pre-sharding behaviour) or the
/// epoch-parallel sharded engine. Constructed by the deployment builder
/// from [`NetConfig::shards`].
pub enum Engine<N: Node> {
    /// One global event loop ([`Simulator`]).
    Single(Simulator<N>),
    /// One event loop per shard ([`ShardedSimulator`]).
    Sharded(ShardedSimulator<N>),
}

impl<N: Node> std::fmt::Debug for Engine<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Single(s) => f.debug_tuple("Single").field(s).finish(),
            Engine::Sharded(s) => f.debug_tuple("Sharded").field(s).finish(),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $sim:ident => $body:expr) => {
        match $self {
            Engine::Single($sim) => $body,
            Engine::Sharded($sim) => $body,
        }
    };
}

impl<N: Node> Engine<N> {
    /// Wraps a built single-threaded simulator, sharding it when `shards >
    /// 1`.
    pub fn from_simulator(sim: Simulator<N>, shards: usize) -> Self {
        if shards > 1 {
            Engine::Sharded(ShardedSimulator::from_simulator(sim, shards))
        } else {
            Engine::Single(sim)
        }
    }

    /// Number of shards (1 for the single-threaded engine).
    pub fn shard_count(&self) -> usize {
        match self {
            Engine::Single(_) => 1,
            Engine::Sharded(s) => s.shard_count(),
        }
    }

    /// Number of nodes ever added.
    pub fn len(&self) -> usize {
        dispatch!(self, s => s.len())
    }

    /// `true` when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        dispatch!(self, s => s.is_empty())
    }

    /// Shared access to a node's state.
    pub fn node(&self, idx: NodeIdx) -> &N {
        dispatch!(self, s => s.node(idx))
    }

    /// Exclusive access to a node's state.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut N {
        dispatch!(self, s => s.node_mut(idx))
    }

    /// Iterates over `(index, node)` pairs in ascending index order.
    pub fn nodes(&self) -> Box<dyn Iterator<Item = (NodeIdx, &N)> + '_> {
        match self {
            Engine::Single(s) => Box::new(s.nodes()),
            Engine::Sharded(s) => Box::new(s.nodes()),
        }
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self, node: N) -> NodeIdx {
        dispatch!(self, s => s.add_node(node))
    }

    /// `true` when the node has not been crashed.
    pub fn is_alive(&self, idx: NodeIdx) -> bool {
        dispatch!(self, s => s.is_alive(idx))
    }

    /// Crashes a node.
    pub fn crash(&mut self, idx: NodeIdx) {
        dispatch!(self, s => s.crash(idx))
    }

    /// Revives a crashed node.
    pub fn revive(&mut self, idx: NodeIdx) {
        dispatch!(self, s => s.revive(idx))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        dispatch!(self, s => s.now())
    }

    /// Total upcalls processed.
    pub fn events_processed(&self) -> u64 {
        dispatch!(self, s => s.events_processed())
    }

    /// Deepest observed event-queue depth (sampled).
    pub fn queue_peak(&self) -> usize {
        dispatch!(self, s => s.queue_peak())
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        dispatch!(self, s => s.metrics())
    }

    /// Exclusive access to the run's metrics.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        dispatch!(self, s => s.metrics_mut())
    }

    /// The driver-level deterministic RNG.
    pub fn rng_mut(&mut self) -> &mut Rng {
        dispatch!(self, s => s.rng_mut())
    }

    /// Enables execution tracing.
    pub fn enable_trace(&mut self, capacity: usize) {
        dispatch!(self, s => s.enable_trace(capacity))
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Tracer {
        dispatch!(self, s => s.trace())
    }

    /// Schedules an injected message (no network hop).
    pub fn inject_at(&mut self, when: SimTime, to: NodeIdx, msg: N::Msg) {
        dispatch!(self, s => s.inject_at(when, to, msg))
    }

    /// Schedules a timer upcall.
    pub fn arm_timer_at(&mut self, when: SimTime, node: NodeIdx, timer: N::Timer) {
        dispatch!(self, s => s.arm_timer_at(when, node, timer))
    }

    /// Runs a closure against a node with a live [`Context`].
    pub fn with_node<R>(
        &mut self,
        idx: NodeIdx,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg, N::Timer>) -> R,
    ) -> R {
        dispatch!(self, s => s.with_node(idx, f))
    }
}

impl<N> Engine<N>
where
    N: Node + Send,
    N::Msg: Send,
    N::Timer: Send,
{
    /// Runs until every queue is empty.
    pub fn run(&mut self) {
        dispatch!(self, s => s.run())
    }

    /// Processes every event with `time <= until`, then advances the clock
    /// to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        dispatch!(self, s => s.run_until(until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TrafficClass;

    /// A node that forwards a hop-counted token to a fixed next node.
    struct Relay {
        next: NodeIdx,
        deliveries: u32,
        timer_fires: u32,
        times: Vec<SimTime>,
    }

    impl Relay {
        fn new(next: NodeIdx) -> Self {
            Relay {
                next,
                deliveries: 0,
                timer_fires: 0,
                times: Vec::new(),
            }
        }
    }

    impl Node for Relay {
        type Msg = u32;
        type Timer = u8;

        fn on_message(&mut self, _from: NodeIdx, ttl: u32, ctx: &mut Context<'_, u32, u8>) {
            self.deliveries += 1;
            self.times.push(ctx.now());
            if ttl > 0 {
                ctx.send(self.next, TrafficClass::OTHER, ttl - 1);
            }
        }

        fn on_timer(&mut self, _t: u8, ctx: &mut Context<'_, u32, u8>) {
            self.timer_fires += 1;
            let _ = ctx;
        }
    }

    /// A ring of `n` relays, each forwarding to `(i + 1) % n`.
    fn ring(n: usize, seed: u64) -> Simulator<Relay> {
        let mut sim = Simulator::new(NetConfig::new(seed));
        for i in 0..n {
            sim.add_node(Relay::new((i + 1) % n));
        }
        sim
    }

    fn fingerprint(s: &ShardedSimulator<Relay>) -> Vec<(usize, u32, u32, Vec<SimTime>)> {
        s.nodes()
            .map(|(i, n)| (i, n.deliveries, n.timer_fires, n.times.clone()))
            .collect()
    }

    fn single_fingerprint(s: &Simulator<Relay>) -> Vec<(usize, u32, u32, Vec<SimTime>)> {
        s.nodes()
            .map(|(i, n)| (i, n.deliveries, n.timer_fires, n.times.clone()))
            .collect()
    }

    #[test]
    fn sharded_matches_single_threaded_ring() {
        let token_hops = 400u32;
        let mut single = ring(8, 1);
        single.inject_at(SimTime::ZERO, 0, token_hops);
        single.run();
        for shards in [2usize, 3, 8] {
            let mut sim = ring(8, 1);
            sim.inject_at(SimTime::ZERO, 0, token_hops);
            let mut sharded = ShardedSimulator::from_simulator(sim, shards);
            sharded.run();
            assert_eq!(
                fingerprint(&sharded),
                single_fingerprint(&single),
                "{shards} shards"
            );
            assert_eq!(sharded.events_processed(), single.events_processed());
            assert_eq!(
                sharded.metrics().messages(TrafficClass::OTHER),
                single.metrics().messages(TrafficClass::OTHER)
            );
            assert_eq!(sharded.now(), single.now());
        }
    }

    /// `queue_peak` must fold per-shard peaks with `max`, not `+`: depth is
    /// an instantaneous gauge, so summing shards would fabricate a deeper
    /// queue than any worker ever saw, and the fold must be independent of
    /// shard order. The peak recorded before the conversion to a sharded
    /// engine survives as a floor. Regression test for the metric fold.
    #[test]
    fn queue_peak_folds_with_max_across_shards() {
        // Part 1: the peak recorded before the conversion survives as a
        // floor, and is the answer before any epoch has run.
        let mut warm = ring(8, 1);
        for i in 0..8 {
            warm.inject_at(SimTime::ZERO, i, 200);
        }
        warm.run_until(SimTime::from_secs(2));
        let base = warm.queue_peak();
        assert!(base > 0, "single-threaded warm-up must sample a peak");
        let sh = ShardedSimulator::from_simulator(warm, 4);
        assert_eq!(sh.queue_peak(), base);

        // Part 2: with no pre-conversion floor, the fold over per-shard
        // peaks must be `max`, not `+`. 64 circulating tokens keep every
        // shard's queue deep enough that the two folds differ.
        let mut sim = ring(8, 1);
        for i in 0..8 {
            for _ in 0..8 {
                sim.inject_at(SimTime::ZERO, i, 100);
            }
        }
        let mut sh = ShardedSimulator::from_simulator(sim, 4);
        sh.run();
        let per_shard: Vec<usize> = sh.shards.iter().map(|c| c.queue_peak).collect();
        let sampled = per_shard.iter().filter(|&&p| p > 0).count();
        assert!(
            sampled >= 2,
            "workload too small to distinguish max from sum: {per_shard:?}"
        );
        let max_fold = per_shard.iter().copied().max().unwrap_or(0);
        let sum_fold = per_shard.iter().sum::<usize>();
        assert_eq!(sh.queue_peak(), max_fold);
        assert_ne!(
            sum_fold, max_fold,
            "per-shard peaks {per_shard:?} cannot tell max from sum"
        );
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = ring(4, 0);
        sim.inject_at(SimTime::ZERO, 0, 100);
        let mut sh = ShardedSimulator::from_simulator(sim, 2);
        // 50 ms per hop: by t = 1 s, hops 0..=20 have been delivered.
        sh.run_until(SimTime::from_secs(1));
        assert_eq!(sh.now(), SimTime::from_secs(1));
        let delivered: u32 = sh.nodes().map(|(_, n)| n.deliveries).sum();
        assert_eq!(delivered, 21);
        sh.run();
        let delivered: u32 = sh.nodes().map(|(_, n)| n.deliveries).sum();
        assert_eq!(delivered, 101);
    }

    #[test]
    fn event_exactly_at_barrier_boundary() {
        // A timer armed exactly at an epoch boundary (k * 50 ms) must fire
        // exactly once: epoch windows are half-open [gmin, gmin + W).
        let mut sim = ring(4, 0);
        sim.inject_at(SimTime::ZERO, 0, 10); // drives epochs at 50 ms steps
        sim.arm_timer_at(SimTime::from_millis(50), 3, 0); // on another shard
        sim.arm_timer_at(SimTime::from_millis(100), 3, 0);
        let mut single = ring(4, 0);
        single.inject_at(SimTime::ZERO, 0, 10);
        single.arm_timer_at(SimTime::from_millis(50), 3, 0);
        single.arm_timer_at(SimTime::from_millis(100), 3, 0);
        single.run();
        let mut sh = ShardedSimulator::from_simulator(sim, 4);
        sh.run();
        assert_eq!(fingerprint(&sh), single_fingerprint(&single));
        assert_eq!(sh.node(3).timer_fires, 2);
    }

    #[test]
    fn long_horizon_timer_crosses_many_epochs() {
        // One timer an hour out: epoch skipping must jump there directly
        // (gmin advances past empty windows) and still fire exactly once.
        let mut sim = ring(4, 0);
        sim.inject_at(SimTime::ZERO, 0, 4);
        sim.arm_timer_at(SimTime::from_secs(3600), 2, 0);
        let mut sh = ShardedSimulator::from_simulator(sim, 2);
        sh.run();
        assert_eq!(sh.node(2).timer_fires, 1);
        assert_eq!(sh.now(), SimTime::from_secs(3600));
        // Well under 3600 s / 50 ms = 72k epochs of work was done.
        assert_eq!(sh.events_processed(), 6);
    }

    /// A node that retries toward a backup when a send fails.
    struct Retrier {
        target: NodeIdx,
        backup: NodeIdx,
        failures: Vec<NodeIdx>,
        got: u32,
    }

    impl Node for Retrier {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, _f: NodeIdx, _m: u32, _ctx: &mut Context<'_, u32, ()>) {
            self.got += 1;
        }
        fn on_timer(&mut self, _t: (), ctx: &mut Context<'_, u32, ()>) {
            let target = self.target;
            ctx.send(target, TrafficClass::OTHER, 1);
        }
        fn on_send_failed(&mut self, to: NodeIdx, msg: u32, ctx: &mut Context<'_, u32, ()>) {
            self.failures.push(to);
            let backup = self.backup;
            ctx.send(backup, TrafficClass::OTHER, msg);
        }
    }

    #[test]
    fn cross_shard_send_to_crashed_node_fails_at_sender() {
        // Node 0 (shard 0) fires a timer that sends to node 3 (shard 1),
        // which is crashed: the failure upcall must run on node 0's shard
        // and the retry toward node 2 (shard 1) must deliver.
        let mut sim: Simulator<Retrier> = Simulator::new(NetConfig::new(0));
        for i in 0..4usize {
            sim.add_node(Retrier {
                target: 3,
                backup: 2,
                failures: vec![],
                got: 0,
            });
            let _ = i;
        }
        sim.arm_timer_at(SimTime::from_millis(10), 0, ());
        sim.crash(3);
        let mut sh = ShardedSimulator::from_simulator(sim, 2);
        sh.run();
        assert_eq!(sh.node(0).failures, vec![3]);
        assert_eq!(sh.node(2).got, 1);
        assert_eq!(sh.node(3).got, 0);
    }

    #[test]
    fn crash_between_runs_reroutes_queued_deliveries() {
        // An in-flight cross-shard delivery to a node that crashes before
        // the next run must be re-routed so the failure surfaces at the
        // sender's shard.
        let mut sim: Simulator<Retrier> = Simulator::new(NetConfig::new(0));
        for _ in 0..4usize {
            sim.add_node(Retrier {
                target: 3,
                backup: 2,
                failures: vec![],
                got: 0,
            });
        }
        sim.arm_timer_at(SimTime::from_millis(10), 0, ());
        let mut sh = ShardedSimulator::from_simulator(sim, 2);
        // Run just past the timer: the send to node 3 is now in flight.
        sh.run_until(SimTime::from_millis(20));
        sh.crash(3); // driver-level crash while the delivery is queued
        sh.run();
        assert_eq!(sh.node(0).failures, vec![3]);
        assert_eq!(sh.node(2).got, 1, "retry toward backup delivered");
    }

    /// Rebuilding after churn drains every shard queue, which advances a
    /// timing wheel's drain position to its *latest* pending entry — so
    /// re-pushing the earlier entries must go through a fresh queue, not
    /// the drained one (whose past-check would reject them). Regression
    /// test: two pending times in one shard across a crash-triggered
    /// rebuild used to panic with "scheduled into the past".
    #[test]
    fn rebuild_after_crash_keeps_multiple_pending_times() {
        let mut sim = ring(4, 0);
        sim.arm_timer_at(SimTime::from_millis(100), 0, 0);
        sim.arm_timer_at(SimTime::from_millis(200), 0, 1);
        sim.arm_timer_at(SimTime::from_millis(150), 2, 0);
        let mut sh = ShardedSimulator::from_simulator(sim, 2);
        sh.crash(3); // marks membership dirty; node 3 holds no events
        sh.run();
        assert_eq!(sh.node(0).timer_fires, 2);
        assert_eq!(sh.node(2).timer_fires, 1);
        assert_eq!(sh.now(), SimTime::from_millis(200));
    }

    #[test]
    fn zero_delay_local_sends_stay_in_epoch() {
        /// Chains `left` zero-delay self-messages, then reports.
        struct SelfChain {
            left: u32,
            done_at: Option<SimTime>,
        }
        impl Node for SelfChain {
            type Msg = ();
            type Timer = ();
            fn on_message(&mut self, _f: NodeIdx, _m: (), ctx: &mut Context<'_, (), ()>) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send_local(());
                } else {
                    self.done_at = Some(ctx.now());
                }
            }
            fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, (), ()>) {}
        }
        let mut sim: Simulator<SelfChain> = Simulator::new(NetConfig::new(0));
        for _ in 0..4usize {
            sim.add_node(SelfChain {
                left: 100,
                done_at: None,
            });
        }
        sim.inject_at(SimTime::from_millis(75), 1, ());
        let mut sh = ShardedSimulator::from_simulator(sim, 4);
        sh.run();
        // All 100 zero-delay hops completed at the injection instant — none
        // leaked past an epoch boundary.
        assert_eq!(sh.node(1).done_at, Some(SimTime::from_millis(75)));
    }

    #[test]
    fn driver_ops_between_runs_reach_other_shards() {
        let sim = ring(6, 0);
        let mut sh = ShardedSimulator::from_simulator(sim, 3);
        sh.run_until(SimTime::from_secs(1));
        // with_node on shard 0 sending cross-shard to node 5 (shard 2).
        sh.with_node(0, |_, ctx| ctx.send(5, TrafficClass::OTHER, 0));
        sh.run();
        assert_eq!(sh.node(5).deliveries, 1);
        assert_eq!(sh.node(5).times, vec![SimTime::from_millis(1050)]);
    }

    #[test]
    fn shard_count_clamped_and_single_shard_works() {
        let mut sim = ring(3, 0);
        sim.inject_at(SimTime::ZERO, 0, 5);
        let mut sh = ShardedSimulator::from_simulator(sim, 64);
        assert_eq!(sh.shard_count(), 3);
        sh.run();
        let delivered: u32 = sh.nodes().map(|(_, n)| n.deliveries).sum();
        assert_eq!(delivered, 6);
    }

    #[test]
    fn join_appends_to_owning_shard() {
        let sim = ring(5, 0);
        let mut sh = ShardedSimulator::from_simulator(sim, 4);
        let idx = sh.add_node(Relay::new(0));
        assert_eq!(idx, 5);
        assert_eq!(sh.len(), 6);
        // The new node is reachable: global indexing stayed consistent.
        sh.with_node(0, |_, ctx| ctx.send(idx, TrafficClass::OTHER, 0));
        sh.run();
        assert_eq!(sh.node(idx).deliveries, 1);
        let indices: Vec<usize> = sh.nodes().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "positive minimum network delay")]
    fn zero_lookahead_rejected() {
        let sim: Simulator<Relay> = Simulator::new(
            NetConfig::new(0).with_delay(crate::config::DelayModel::Fixed(SimDuration::ZERO)),
        );
        let _ = ShardedSimulator::from_simulator(sim, 2);
    }
}

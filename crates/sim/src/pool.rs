//! Generation-checked slab pool for in-flight events.
//!
//! The event queues (binary heap or timing wheel) move their entries many
//! times between schedule and fire: heap sift-ups, wheel cascades, slot
//! sorts. Storing fat event payloads inline (a routed envelope easily
//! exceeds a hundred bytes) makes every one of those moves a large memcpy.
//! The pool fixes the payload in place instead: events live in a slab, the
//! queues order 8-byte copyable [`Handle`]s, and the payload moves exactly
//! twice — into the slab at schedule time, out of it at pop time.
//!
//! Freed slots are recycled through a free list, so steady-state
//! scheduling performs **zero heap allocations**: slab and free list reach
//! their high-water capacity during warm-up and the allocator is never
//! consulted again. A per-slot generation counter turns any stale-handle
//! use into an immediate panic instead of silently aliasing another
//! event's payload.
//!
//! [`PoolMode::Fresh`] disables slot reuse — every insert appends — which
//! is semantically identical by construction, so an A/B run pair
//! (`reuse` vs `fresh`) verifies that recycling never changes simulation
//! results.

use crate::config::PoolMode;

/// A ticket for one pooled event: slab slot plus the generation the slot
/// had when the event was inserted. 8 bytes, `Copy` — this is what the
/// event queues actually order and move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Handle {
    slot: u32,
    gen: u32,
}

struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// The slab: indexed by [`Handle::slot`], recycled through `free`.
pub(crate) struct EventPool<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    mode: PoolMode,
    live: usize,
}

impl<T> EventPool<T> {
    pub(crate) fn new(mode: PoolMode) -> Self {
        EventPool {
            entries: Vec::new(),
            free: Vec::new(),
            mode,
            live: 0,
        }
    }

    /// Number of events currently checked in.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Slots the slab has ever grown to (capacity planning / audit).
    #[cfg(test)]
    pub(crate) fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Checks `val` in and returns its ticket.
    #[inline]
    pub(crate) fn insert(&mut self, val: T) -> Handle {
        self.live += 1;
        if self.mode == PoolMode::Reuse {
            if let Some(slot) = self.free.pop() {
                let e = &mut self.entries[slot as usize];
                debug_assert!(e.val.is_none(), "free list pointed at a live slot");
                e.val = Some(val);
                return Handle { slot, gen: e.gen };
            }
        }
        let slot = u32::try_from(self.entries.len()).expect("event slab exceeds u32 slots");
        self.entries.push(Entry {
            gen: 0,
            val: Some(val),
        });
        Handle { slot, gen: 0 }
    }

    /// Checks the event behind `h` out, retiring the slot's generation.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale: its slot was already vacated, or vacated and
    /// reissued to a different event.
    #[inline]
    pub(crate) fn remove(&mut self, h: Handle) -> T {
        let e = &mut self.entries[h.slot as usize];
        assert_eq!(e.gen, h.gen, "stale event handle");
        let val = e.val.take().expect("event slot already vacated");
        e.gen = e.gen.wrapping_add(1);
        self.live -= 1;
        match self.mode {
            PoolMode::Reuse => self.free.push(h.slot),
            // Fresh mode appends forever; release the slab (allocation
            // included) whenever it goes idle, so verification runs don't
            // retain every event ever scheduled and the mode stays a true
            // always-allocate control for the allocation audit. No handles
            // are outstanding at live == 0.
            PoolMode::Fresh => {
                if self.live == 0 {
                    self.entries = Vec::new();
                }
            }
        }
        val
    }
}

impl<T> std::fmt::Debug for EventPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventPool")
            .field("live", &self.live)
            .field("slots", &self.entries.len())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_recycles_slots_without_growing() {
        let mut pool: EventPool<u64> = EventPool::new(PoolMode::Reuse);
        let h = pool.insert(1);
        assert_eq!(pool.remove(h), 1);
        for i in 0..100 {
            let h = pool.insert(i);
            assert_eq!(h.slot, 0, "single-slot workload must stay in slot 0");
            assert_eq!(pool.remove(h), i);
        }
        assert_eq!(pool.slots(), 1);
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn fresh_never_reuses_slots() {
        let mut pool: EventPool<u64> = EventPool::new(PoolMode::Fresh);
        let a = pool.insert(1);
        let b = pool.insert(2);
        assert_eq!(pool.remove(a), 1);
        let c = pool.insert(3);
        assert_ne!(c.slot, a.slot, "fresh mode must not recycle");
        assert_eq!(pool.remove(b), 2);
        assert_eq!(pool.remove(c), 3);
        // Idle compaction: the slab resets once nothing is checked in.
        assert_eq!(pool.slots(), 0);
        let d = pool.insert(4);
        assert_eq!(d.slot, 0);
        assert_eq!(pool.remove(d), 4);
    }

    #[test]
    #[should_panic(expected = "stale event handle")]
    fn stale_handle_detected_after_reissue() {
        let mut pool: EventPool<u64> = EventPool::new(PoolMode::Reuse);
        let h = pool.insert(1);
        pool.remove(h);
        let _again = pool.insert(2); // same slot, new generation
        pool.remove(h);
    }

    #[test]
    #[should_panic(expected = "stale event handle")]
    fn double_remove_detected() {
        let mut pool: EventPool<u64> = EventPool::new(PoolMode::Reuse);
        let h = pool.insert(1);
        pool.remove(h);
        pool.remove(h);
    }
}

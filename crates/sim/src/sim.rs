//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns a set of nodes implementing the [`Node`] trait and a
//! time-ordered event queue. Nodes react to message deliveries and timer
//! expirations through a [`Context`] that lets them send further messages
//! and arm timers. Execution is single-threaded and fully deterministic for
//! a given seed and call sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cbps_rng::Rng;

use crate::config::{NetConfig, SchedulerKind};
use crate::metrics::{Metrics, TrafficClass};
use crate::obs::{Stage, TraceId};
use crate::pool::{EventPool, Handle};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEntry, TraceKind, Tracer};
use crate::wheel::TimingWheel;

/// Dense index of a node within a [`Simulator`].
pub type NodeIdx = usize;

/// A simulated protocol participant.
///
/// Implementors define their wire message type and timer token type, and
/// react to deliveries and timer expirations. All outward effects go through
/// the [`Context`].
pub trait Node {
    /// Wire message type exchanged between nodes.
    type Msg;
    /// Token identifying an armed timer when it fires.
    type Timer;

    /// Called when a message sent by `from` arrives at this node.
    fn on_message(
        &mut self,
        from: NodeIdx,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    );

    /// Called when a timer armed by this node expires.
    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self::Msg, Self::Timer>);

    /// Called when a message this node sent could not be handed to `to`
    /// because `to` has crashed (modelling a refused connection — detected
    /// one network delay after the send). Randomly *lost* messages do not
    /// trigger this. Default: drop silently.
    fn on_send_failed(
        &mut self,
        to: NodeIdx,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
    ) {
        let _ = (to, msg, ctx);
    }
}

/// Handle passed to node upcalls for interacting with the simulated world.
///
/// Collects the sends and timer arms performed during one upcall; the
/// simulator turns them into queue entries when the upcall returns.
#[derive(Debug)]
pub struct Context<'a, M, T> {
    node: NodeIdx,
    time: SimTime,
    rng: &'a mut Rng,
    metrics: &'a mut Metrics,
    tracer: &'a mut Tracer,
    actions: &'a mut Vec<Action<M, T>>,
}

#[derive(Debug)]
pub(crate) enum Action<M, T> {
    Send { to: NodeIdx, msg: M },
    SendLocal { msg: M },
    ArmTimer { delay: SimDuration, timer: T },
}

impl<'a, M, T> Context<'a, M, T> {
    /// Assembles a context for one upcall (shared with the sharded engine,
    /// which drives upcalls from per-shard state).
    pub(crate) fn assemble(
        node: NodeIdx,
        time: SimTime,
        rng: &'a mut Rng,
        metrics: &'a mut Metrics,
        tracer: &'a mut Tracer,
        actions: &'a mut Vec<Action<M, T>>,
    ) -> Self {
        Context {
            node,
            time,
            rng,
            metrics,
            tracer,
            actions,
        }
    }

    /// Index of the node this upcall runs on.
    pub fn self_idx(&self) -> NodeIdx {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The run's deterministic random number generator.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// The run's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Sends `msg` to node `to` as one network hop of the given traffic
    /// class. The message is counted in the metrics immediately and arrives
    /// after the configured network delay (unless lost).
    pub fn send(&mut self, to: NodeIdx, class: TrafficClass, msg: M) {
        self.metrics.count_message(class);
        self.actions.push(Action::Send { to, msg });
    }

    /// Hands `msg` back to this same node with zero delay and **without**
    /// counting a network hop: the node is talking to itself (e.g. an
    /// overlay delivering a payload whose rendezvous is the caller).
    pub fn send_local(&mut self, msg: M) {
        self.actions.push(Action::SendLocal { msg });
    }

    /// Arms a one-shot timer on this node, firing after `delay`.
    pub fn arm_timer(&mut self, delay: SimDuration, timer: T) {
        self.actions.push(Action::ArmTimer { delay, timer });
    }

    /// Emits a trace note (no-op unless tracing is enabled via
    /// [`Simulator::enable_trace`]). Tags are static strings so tracing
    /// never allocates on the hot path.
    pub fn note(&mut self, tag: &'static str) {
        self.tracer.record(TraceEntry {
            at: self.time,
            node: self.node,
            kind: TraceKind::Note,
            tag,
        });
    }

    /// Records that `trace` reached `stage` on this node, now. No-op when
    /// observability is disabled (a single branch).
    #[inline]
    pub fn stage(&mut self, trace: TraceId, stage: Stage, class: TrafficClass) {
        let (node, at) = (self.node, self.time);
        self.metrics.obs_mut().stage(trace, stage, class, node, at);
    }

    /// Records one overlay routing hop taken by `trace` through this node.
    /// No-op when observability is disabled.
    #[inline]
    pub fn route_hop(&mut self, trace: TraceId, class: TrafficClass) {
        let (node, at) = (self.node, self.time);
        self.metrics.obs_mut().hop(trace, class, node, at);
    }
}

#[derive(Debug)]
pub(crate) enum EventKind<M, T> {
    Deliver {
        from: NodeIdx,
        to: NodeIdx,
        msg: M,
    },
    Timer {
        node: NodeIdx,
        timer: T,
    },
    /// External injection: delivered as a message from the node to itself
    /// without a network hop (used by workload drivers).
    Inject {
        to: NodeIdx,
        msg: M,
    },
}

/// `(time << 64) | seq` packed into one word so queue ordering resolves
/// with a single branch-free integer comparison instead of a
/// lexicographic pair compare.
#[inline]
pub(crate) fn pack(time: SimTime, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

#[inline]
pub(crate) fn key_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

pub(crate) struct Scheduled {
    key: u128,
    handle: Handle,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other.key.cmp(&self.key)
    }
}

/// The pluggable event queue: a binary heap (the original, O(log n)
/// reference) or a hierarchical timing wheel (O(1) amortized; see
/// [`crate::wheel`]). Both pop in exactly the same `(time, seq)` order,
/// so a run is bit-identical under either — [`SchedulerKind`] in
/// [`NetConfig`] selects one for A/B comparison.
///
/// The queue orders 8-byte pool [`Handle`]s, not event payloads: payloads
/// sit still in the owning engine's [`EventPool`] while their tickets are
/// sifted and cascaded (see [`crate::pool`]).
pub(crate) enum EventQueue {
    Heap(BinaryHeap<Scheduled>),
    Wheel(Box<TimingWheel<Handle>>),
}

impl EventQueue {
    pub(crate) fn new(kind: SchedulerKind) -> Self {
        match kind {
            // Pre-sized so steady-state simulation almost never regrows
            // the heap's backing buffer mid-run.
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(4096)),
            SchedulerKind::Wheel => EventQueue::Wheel(Box::default()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, key: u128, handle: Handle) {
        match self {
            EventQueue::Heap(q) => q.push(Scheduled { key, handle }),
            EventQueue::Wheel(w) => w.push(key, handle),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u128, Handle)> {
        match self {
            EventQueue::Heap(q) => q.pop().map(|s| (s.key, s.handle)),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    #[inline]
    pub(crate) fn peek_key(&mut self) -> Option<u128> {
        match self {
            EventQueue::Heap(q) => q.peek().map(|s| s.key),
            EventQueue::Wheel(w) => w.peek_key(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(q) => q.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }
}

/// A queued event paired with its packed `(time, seq)` key.
pub(crate) type KeyedEvent<M, T> = (u128, EventKind<M, T>);

/// Raw decomposition of a [`Simulator`] consumed by the sharded engine.
pub(crate) struct SimParts<N: Node> {
    pub(crate) nodes: Vec<N>,
    pub(crate) alive: Vec<bool>,
    /// Queued events in `(time, seq)` pop order.
    pub(crate) events: Vec<KeyedEvent<N::Msg, N::Timer>>,
    pub(crate) config: NetConfig,
    pub(crate) time: SimTime,
    pub(crate) rng: Rng,
    pub(crate) metrics: Metrics,
    pub(crate) tracer: Tracer,
    pub(crate) events_processed: u64,
    pub(crate) queue_peak: usize,
}

/// A deterministic discrete-event simulator over a fixed node universe.
///
/// # Examples
///
/// A two-node ping-pong:
///
/// ```
/// use cbps_sim::{Context, NetConfig, Node, NodeIdx, Simulator, TrafficClass};
///
/// struct Ping {
///     got: u32,
/// }
///
/// impl Node for Ping {
///     type Msg = u32;
///     type Timer = ();
///     fn on_message(&mut self, from: NodeIdx, msg: u32, ctx: &mut Context<'_, u32, ()>) {
///         self.got += 1;
///         if msg > 0 {
///             ctx.send(from, TrafficClass::OTHER, msg - 1);
///         }
///     }
///     fn on_timer(&mut self, _: (), _: &mut Context<'_, u32, ()>) {}
/// }
///
/// let mut sim = Simulator::new(NetConfig::new(7));
/// let a = sim.add_node(Ping { got: 0 });
/// let b = sim.add_node(Ping { got: 0 });
/// // a sends 2 to b; each receiver decrements and bounces the ball back.
/// sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 2));
/// sim.run();
/// assert_eq!(sim.node(b).got, 2);
/// assert_eq!(sim.node(a).got, 1);
/// assert_eq!(sim.metrics().messages(TrafficClass::OTHER), 3);
/// ```
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    alive: Vec<bool>,
    queue: EventQueue,
    pool: EventPool<EventKind<N::Msg, N::Timer>>,
    time: SimTime,
    seq: u64,
    config: NetConfig,
    rng: Rng,
    metrics: Metrics,
    tracer: Tracer,
    actions: Vec<Action<N::Msg, N::Timer>>,
    events_processed: u64,
    queue_peak: usize,
}

impl<N: Node> std::fmt::Debug for Simulator<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("time", &self.time)
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator with no nodes.
    pub fn new(config: NetConfig) -> Self {
        Simulator {
            nodes: Vec::new(),
            alive: Vec::new(),
            queue: EventQueue::new(config.scheduler),
            pool: EventPool::new(config.pool),
            time: SimTime::ZERO,
            seq: 0,
            config,
            rng: Rng::seed_from_u64(config.seed),
            metrics: Metrics::new(),
            tracer: Tracer::new(0),
            actions: Vec::new(),
            events_processed: 0,
            queue_peak: 0,
        }
    }

    /// Enables execution tracing, retaining the most recent `capacity`
    /// entries (one per upcall plus explicit [`Context::note`]s).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::new(capacity);
    }

    /// The recorded trace (empty unless enabled).
    pub fn trace(&self) -> &Tracer {
        &self.tracer
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self, node: N) -> NodeIdx {
        self.nodes.push(node);
        self.alive.push(true);
        self.nodes.len() - 1
    }

    /// Number of nodes ever added (alive or crashed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &N {
        &self.nodes[idx]
    }

    /// Exclusive access to a node's state (for inspection and test setup;
    /// protocol actions should go through [`Simulator::with_node`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut N {
        &mut self.nodes[idx]
    }

    /// Iterates over `(index, node)` pairs, including crashed nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, &N)> {
        self.nodes.iter().enumerate()
    }

    /// `true` when the node has not been crashed.
    pub fn is_alive(&self, idx: NodeIdx) -> bool {
        self.alive[idx]
    }

    /// Crashes a node: all queued deliveries and timers addressed to it are
    /// silently discarded from now on. Its last state stays inspectable.
    pub fn crash(&mut self, idx: NodeIdx) {
        self.alive[idx] = false;
    }

    /// Marks a crashed node alive again (modelling a restart; the node's
    /// state is whatever it was at crash time — recovery logic is the
    /// application's business).
    pub fn revive(&mut self, idx: NodeIdx) {
        self.alive[idx] = true;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total upcalls processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The deepest the event queue has been observed (a capacity-planning
    /// and perf-baseline statistic; see `bench --json`). Sampled once per
    /// 64 processed events, so it is a lower bound on the true peak.
    pub fn queue_peak(&self) -> usize {
        self.queue_peak
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Exclusive access to the run's metrics.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The run's deterministic RNG (e.g. for workload sampling that should
    /// share the run's seed).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `msg` to be handed to node `to` at absolute time `when`,
    /// as if the node called itself. No network hop is counted: this is how
    /// workload drivers inject operations.
    ///
    /// # Panics
    ///
    /// Panics if `when` is in the past.
    pub fn inject_at(&mut self, when: SimTime, to: NodeIdx, msg: N::Msg) {
        assert!(when >= self.time, "cannot schedule in the past");
        self.push_event(when, EventKind::Inject { to, msg });
    }

    /// Schedules a timer upcall on `node` at absolute time `when`.
    ///
    /// # Panics
    ///
    /// Panics if `when` is in the past.
    pub fn arm_timer_at(&mut self, when: SimTime, node: NodeIdx, timer: N::Timer) {
        assert!(when >= self.time, "cannot schedule in the past");
        self.push_event(when, EventKind::Timer { node, timer });
    }

    /// Runs a closure against a node with a live [`Context`], then applies
    /// the actions it performed. This is how synchronous API calls (e.g. "a
    /// subscriber issues a subscription now") enter the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn with_node<R>(
        &mut self,
        idx: NodeIdx,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg, N::Timer>) -> R,
    ) -> R {
        let mut actions = std::mem::take(&mut self.actions);
        let result = {
            let mut ctx = Context {
                node: idx,
                time: self.time,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                actions: &mut actions,
            };
            f(&mut self.nodes[idx], &mut ctx)
        };
        self.apply_actions(idx, &mut actions);
        self.actions = actions;
        result
    }

    /// Processes a single queued event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((key, handle)) = self.queue.pop() else {
            return false;
        };
        let kind = self.pool.remove(handle);
        let time = key_time(key);
        debug_assert!(time >= self.time, "event queue went backwards");
        self.time = time;
        self.events_processed += 1;
        // Queue depth is tracked sparsely (1 in 64 events): `queue_peak`
        // is a sampled statistic and the same sample feeds the
        // observability registry when it is on. Keeping the tracking out
        // of `push_event` leaves the steady-state push branch-lean.
        if self.events_processed & 63 == 0 {
            let depth = self.queue.len() + 1;
            if depth > self.queue_peak {
                self.queue_peak = depth;
            }
            if self.metrics.obs().enabled() {
                self.metrics.obs_mut().sample("queue.depth", depth as u64);
            }
        }
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if self.alive[to] {
                    self.upcall_message(from, to, msg);
                } else if from != to && self.alive[from] {
                    self.upcall_send_failed(from, to, msg);
                }
            }
            EventKind::Inject { to, msg } => {
                if self.alive[to] {
                    self.upcall_message(to, to, msg);
                }
            }
            EventKind::Timer { node, timer } => {
                if self.alive[node] {
                    self.upcall_timer(node, timer);
                }
            }
        }
        true
    }

    fn upcall_message(&mut self, from: NodeIdx, to: NodeIdx, msg: N::Msg) {
        self.tracer.record(TraceEntry {
            at: self.time,
            node: to,
            kind: TraceKind::Deliver,
            tag: "",
        });
        let mut actions = std::mem::take(&mut self.actions);
        {
            let mut ctx = Context {
                node: to,
                time: self.time,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                actions: &mut actions,
            };
            self.nodes[to].on_message(from, msg, &mut ctx);
        }
        self.apply_actions(to, &mut actions);
        self.actions = actions;
    }

    fn upcall_send_failed(&mut self, sender: NodeIdx, to: NodeIdx, msg: N::Msg) {
        self.tracer.record(TraceEntry {
            at: self.time,
            node: sender,
            kind: TraceKind::SendFailed,
            tag: "",
        });
        let mut actions = std::mem::take(&mut self.actions);
        {
            let mut ctx = Context {
                node: sender,
                time: self.time,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                actions: &mut actions,
            };
            self.nodes[sender].on_send_failed(to, msg, &mut ctx);
        }
        self.apply_actions(sender, &mut actions);
        self.actions = actions;
    }

    fn upcall_timer(&mut self, node: NodeIdx, timer: N::Timer) {
        self.tracer.record(TraceEntry {
            at: self.time,
            node,
            kind: TraceKind::Timer,
            tag: "",
        });
        let mut actions = std::mem::take(&mut self.actions);
        {
            let mut ctx = Context {
                node,
                time: self.time,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                actions: &mut actions,
            };
            self.nodes[node].on_timer(timer, &mut ctx);
        }
        self.apply_actions(node, &mut actions);
        self.actions = actions;
    }

    #[inline]
    fn push_event(&mut self, time: SimTime, kind: EventKind<N::Msg, N::Timer>) {
        let seq = self.seq;
        self.seq += 1;
        let handle = self.pool.insert(kind);
        self.queue.push(pack(time, seq), handle);
    }

    fn apply_actions(&mut self, origin: NodeIdx, actions: &mut Vec<Action<N::Msg, N::Timer>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    // Loss is decided at send time; lost messages were
                    // already counted by Context::send.
                    if self.config.loss_probability > 0.0
                        && self.rng.f64() < self.config.loss_probability
                    {
                        continue;
                    }
                    let delay = self.config.delay.sample(&mut self.rng);
                    self.push_event(
                        self.time + delay,
                        EventKind::Deliver {
                            from: origin,
                            to,
                            msg,
                        },
                    );
                }
                Action::SendLocal { msg } => {
                    self.push_event(
                        self.time,
                        EventKind::Deliver {
                            from: origin,
                            to: origin,
                            msg,
                        },
                    );
                }
                Action::ArmTimer { delay, timer } => {
                    self.push_event(
                        self.time + delay,
                        EventKind::Timer {
                            node: origin,
                            timer,
                        },
                    );
                }
            }
        }
    }

    /// Decomposes the simulator into its raw parts so the sharded engine
    /// can redistribute them (queued events are drained in `(time, seq)`
    /// order, preserving determinism when they are re-sequenced per shard).
    pub(crate) fn into_parts(mut self) -> SimParts<N> {
        let mut events = Vec::with_capacity(self.queue.len());
        while let Some((key, handle)) = self.queue.pop() {
            events.push((key, self.pool.remove(handle)));
        }
        SimParts {
            nodes: self.nodes,
            alive: self.alive,
            events,
            config: self.config,
            time: self.time,
            rng: self.rng,
            metrics: self.metrics,
            tracer: self.tracer,
            events_processed: self.events_processed,
            queue_peak: self.queue_peak,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the event queue is empty or `limit` further events have
    /// been processed; returns the number of events processed.
    pub fn run_capped(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Processes every event with `time <= until`, then advances the clock
    /// to exactly `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(key) = self.queue.peek_key() {
            if key_time(key) > until {
                break;
            }
            self.step();
        }
        if until > self.time {
            self.time = until;
        }
    }
}

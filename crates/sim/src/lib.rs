//! # cbps-sim — deterministic discrete-event simulation engine
//!
//! The substrate underneath the CBPS reproduction of *"Content-Based
//! Publish-Subscribe over Structured Overlay Networks"* (ICDCS 2005). The
//! paper evaluates its architecture on a Chord simulator; this crate is the
//! corresponding event-driven engine, written from scratch:
//!
//! * [`Simulator`] — a single-threaded, seed-deterministic event loop over a
//!   fixed universe of [`Node`]s;
//! * [`Context`] — the handle through which nodes send one-hop messages
//!   (with a configurable [`DelayModel`], default 50 ms as in the paper) and
//!   arm timers;
//! * [`Metrics`] — per-[`TrafficClass`] one-hop message counters, named
//!   counters and exact [`Histogram`]s, from which every figure series of
//!   the paper is derived;
//! * crash/revive and message-loss injection for fault-tolerance tests.
//!
//! # Examples
//!
//! ```
//! use cbps_sim::{Context, NetConfig, Node, NodeIdx, SimTime, Simulator, TrafficClass};
//!
//! /// A node that forwards every received token to a fixed next hop until
//! /// the token's TTL runs out.
//! struct Relay {
//!     next: NodeIdx,
//!     delivered: u32,
//! }
//!
//! impl Node for Relay {
//!     type Msg = u8; // remaining TTL
//!     type Timer = ();
//!
//!     fn on_message(&mut self, _from: NodeIdx, ttl: u8, ctx: &mut Context<'_, u8, ()>) {
//!         self.delivered += 1;
//!         if ttl > 0 {
//!             ctx.send(self.next, TrafficClass::OTHER, ttl - 1);
//!         }
//!     }
//!
//!     fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, u8, ()>) {}
//! }
//!
//! let mut sim = Simulator::new(NetConfig::new(1));
//! let a = sim.add_node(Relay { next: 1, delivered: 0 });
//! let b = sim.add_node(Relay { next: 0, delivered: 0 });
//! sim.inject_at(SimTime::ZERO, a, 4);
//! sim.run();
//! assert_eq!(sim.node(a).delivered + sim.node(b).delivered, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod metrics;
mod obs;
mod pool;
mod shard;
mod sim;
mod time;
mod trace;
pub mod wheel;

pub use config::{DelayModel, MatchEngineKind, NetConfig, PoolMode, SchedulerKind};
pub use metrics::{Histogram, Metrics, TrafficClass};
pub use obs::{
    LogHistogram, ObsMode, ObsSummary, Observability, Stage, StageRecord, TraceId, TraceLog,
};
pub use shard::{Engine, ShardedSimulator};
pub use sim::{Context, Node, NodeIdx, Simulator};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceKind, Tracer};
pub use wheel::TimingWheel;

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that counts deliveries and timer fires, echoing messages back
    /// while their hop budget lasts.
    struct Echo {
        peer: NodeIdx,
        deliveries: u32,
        timer_fires: u32,
        delivery_times: Vec<SimTime>,
    }

    impl Echo {
        fn new(peer: NodeIdx) -> Self {
            Echo {
                peer,
                deliveries: 0,
                timer_fires: 0,
                delivery_times: Vec::new(),
            }
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Tick {
        Once,
        Rearm(u32),
    }

    impl Node for Echo {
        type Msg = u32;
        type Timer = Tick;

        fn on_message(&mut self, _from: NodeIdx, msg: u32, ctx: &mut Context<'_, u32, Tick>) {
            self.deliveries += 1;
            self.delivery_times.push(ctx.now());
            if msg > 0 {
                ctx.send(self.peer, TrafficClass::OTHER, msg - 1);
            }
        }

        fn on_timer(&mut self, timer: Tick, ctx: &mut Context<'_, u32, Tick>) {
            self.timer_fires += 1;
            if let Tick::Rearm(left) = timer {
                if left > 0 {
                    ctx.arm_timer(SimDuration::from_secs(1), Tick::Rearm(left - 1));
                }
            }
        }
    }

    fn two_node_sim(seed: u64) -> (Simulator<Echo>, NodeIdx, NodeIdx) {
        let mut sim = Simulator::new(NetConfig::new(seed));
        let a = sim.add_node(Echo::new(1));
        let b = sim.add_node(Echo::new(0));
        (sim, a, b)
    }

    #[test]
    fn messages_take_configured_delay() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 0));
        sim.run();
        assert_eq!(sim.node(b).delivery_times, vec![SimTime::from_millis(50)]);
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn bounce_chain_counts_messages_and_hops() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 5));
        sim.run();
        // 6 one-hop messages total (TTL 5..0), alternating deliveries.
        assert_eq!(sim.metrics().messages(TrafficClass::OTHER), 6);
        assert_eq!(sim.node(a).deliveries + sim.node(b).deliveries, 6);
        assert_eq!(sim.now(), SimTime::from_millis(300));
    }

    #[test]
    fn inject_has_no_network_hop() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.inject_at(SimTime::from_secs(3), a, 0);
        sim.run();
        assert_eq!(sim.node(a).delivery_times, vec![SimTime::from_secs(3)]);
        assert_eq!(sim.metrics().total_messages(), 0);
    }

    #[test]
    fn timers_fire_in_order_and_rearm() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.arm_timer_at(SimTime::from_secs(1), a, Tick::Rearm(2));
        sim.run();
        assert_eq!(sim.node(a).timer_fires, 3);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.arm_timer_at(SimTime::from_secs(1), a, Tick::Once);
        sim.arm_timer_at(SimTime::from_secs(5), a, Tick::Once);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.node(a).timer_fires, 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run();
        assert_eq!(sim.node(a).timer_fires, 2);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 3));
        sim.crash(b);
        sim.run();
        assert_eq!(sim.node(b).deliveries, 0);
        // The send was still counted: the sender paid for the hop.
        assert_eq!(sim.metrics().messages(TrafficClass::OTHER), 1);
        assert!(!sim.is_alive(b));
        sim.revive(b);
        assert!(sim.is_alive(b));
    }

    #[test]
    fn crashed_node_timers_dropped() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.arm_timer_at(SimTime::from_secs(1), a, Tick::Once);
        sim.crash(a);
        sim.run();
        assert_eq!(sim.node(a).timer_fires, 0);
    }

    #[test]
    fn message_loss_drops_but_counts() {
        let mut sim: Simulator<Echo> = Simulator::new(NetConfig::new(0).with_loss_probability(1.0));
        let a = sim.add_node(Echo::new(1));
        let b = sim.add_node(Echo::new(0));
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 9));
        sim.run();
        assert_eq!(sim.node(b).deliveries, 0);
        assert_eq!(sim.metrics().messages(TrafficClass::OTHER), 1);
        let _ = a;
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim: Simulator<Echo> =
                Simulator::new(NetConfig::new(seed).with_delay(DelayModel::Uniform {
                    min: SimDuration::from_millis(10),
                    max: SimDuration::from_millis(90),
                }));
            let a = sim.add_node(Echo::new(1));
            let b = sim.add_node(Echo::new(0));
            sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 20));
            sim.run();
            (sim.now(), sim.node(a).delivery_times.clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn run_capped_limits_events() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 100));
        let n = sim.run_capped(10);
        assert_eq!(n, 10);
        assert!(sim.step());
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.inject_at(SimTime::from_secs(1), a, 0);
        sim.inject_at(SimTime::from_secs(1), a, 0);
        sim.arm_timer_at(SimTime::from_secs(1), a, Tick::Once);
        sim.run();
        assert_eq!(sim.node(a).deliveries, 2);
        assert_eq!(sim.node(a).timer_fires, 1);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn send_local_is_immediate_and_uncounted() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send_local(0));
        sim.run();
        assert_eq!(sim.node(a).deliveries, 1);
        assert_eq!(sim.node(a).delivery_times, vec![SimTime::ZERO]);
        assert_eq!(sim.metrics().total_messages(), 0);
    }

    /// A node that records failed sends and retries once toward another
    /// target.
    struct Retrier {
        backup: NodeIdx,
        failures: Vec<NodeIdx>,
    }

    impl Node for Retrier {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, _f: NodeIdx, _m: u32, _ctx: &mut Context<'_, u32, ()>) {}
        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, u32, ()>) {}
        fn on_send_failed(&mut self, to: NodeIdx, msg: u32, ctx: &mut Context<'_, u32, ()>) {
            self.failures.push(to);
            ctx.send(self.backup, TrafficClass::OTHER, msg);
        }
    }

    #[test]
    fn send_failed_fires_for_crashed_targets_and_allows_retry() {
        let mut sim: Simulator<Retrier> = Simulator::new(NetConfig::new(0));
        let a = sim.add_node(Retrier {
            backup: 2,
            failures: vec![],
        });
        let b = sim.add_node(Retrier {
            backup: 0,
            failures: vec![],
        });
        let c = sim.add_node(Retrier {
            backup: 0,
            failures: vec![],
        });
        sim.crash(b);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 7));
        sim.run();
        // The failure surfaced at the sender, which retried toward c.
        assert_eq!(sim.node(a).failures, vec![b]);
        assert!(sim.is_alive(c));
        // Both the failed and the retry transmissions were paid for.
        assert_eq!(sim.metrics().messages(TrafficClass::OTHER), 2);
    }

    #[test]
    fn send_failed_not_fired_when_sender_also_dead() {
        let mut sim: Simulator<Retrier> = Simulator::new(NetConfig::new(0));
        let a = sim.add_node(Retrier {
            backup: 1,
            failures: vec![],
        });
        let b = sim.add_node(Retrier {
            backup: 0,
            failures: vec![],
        });
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 7));
        sim.crash(a);
        sim.crash(b);
        sim.run();
        assert!(sim.node(a).failures.is_empty());
    }

    #[test]
    fn randomly_lost_messages_do_not_trigger_send_failed() {
        let mut sim: Simulator<Retrier> =
            Simulator::new(NetConfig::new(0).with_loss_probability(1.0));
        let a = sim.add_node(Retrier {
            backup: 1,
            failures: vec![],
        });
        let b = sim.add_node(Retrier {
            backup: 0,
            failures: vec![],
        });
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 7));
        sim.run();
        assert!(sim.node(a).failures.is_empty(), "loss must be silent");
    }

    #[test]
    fn tracing_records_upcalls_and_notes() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.enable_trace(16);
        sim.with_node(a, |_, ctx| {
            ctx.note("kickoff");
            ctx.send(b, TrafficClass::OTHER, 1);
        });
        sim.arm_timer_at(SimTime::from_secs(5), a, Tick::Once);
        sim.run();
        let trace = sim.trace();
        assert_eq!(trace.with_tag("kickoff").count(), 1);
        // b's delivery, a's bounce delivery, a's timer.
        assert_eq!(
            trace
                .entries()
                .filter(|e| e.kind == TraceKind::Deliver)
                .count(),
            2
        );
        assert_eq!(
            trace
                .entries()
                .filter(|e| e.kind == TraceKind::Timer)
                .count(),
            1
        );
        assert_eq!(trace.for_node(b).count(), 1);
        // Entries are in time order.
        let times: Vec<_> = trace.entries().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let (mut sim, a, b) = two_node_sim(0);
        sim.with_node(a, |_, ctx| ctx.send(b, TrafficClass::OTHER, 3));
        sim.run();
        assert!(sim.trace().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn inject_in_past_panics() {
        let (mut sim, a, _b) = two_node_sim(0);
        sim.arm_timer_at(SimTime::from_secs(10), a, Tick::Once);
        sim.run();
        sim.inject_at(SimTime::from_secs(1), a, 0);
    }
}

//! Causal observability: trace identifiers, stage records, and log-bucketed
//! latency histograms.
//!
//! The paper's evaluation reduces protocol behaviour to per-class hop
//! *averages*; this module is the substrate for richer questions — "where
//! does a notification spend its time?" and "what is the p99, not the
//! mean?". Three pieces cooperate:
//!
//! * [`TraceId`] — a copyable identifier minted once per application
//!   operation (subscribe or publish) and carried through every overlay
//!   message and pub/sub payload that the operation causes;
//! * [`TraceLog`] — a bounded, per-run log of [`StageRecord`]s, each
//!   stamping *(trace, stage, class, node, sim-time)*, from which a
//!   delivered notification can be explained hop-by-hop;
//! * [`Observability`] — the per-run container embedded in
//!   [`Metrics`](crate::Metrics): the trace log plus a registry of
//!   [`LogHistogram`]s keyed by `(TrafficClass, Stage)` recording
//!   **since-origin** latency in microseconds, and free-form named
//!   histograms (rendezvous fan-out, store sizes, queue depths).
//!
//! # Overhead policy
//!
//! Everything here is observation-only: recording never alters simulation
//! behaviour, so experiment tables are byte-identical whether observability
//! is on or off. With [`ObsMode::Off`] (the default) every recording entry
//! point reduces to a single branch; no allocation, no hashing. With
//! tracing on, the histograms are allocation-free per sample (fixed bucket
//! arrays) and the trace log drops — rather than grows — past its capacity.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::metrics::TrafficClass;
use crate::sim::NodeIdx;
use crate::time::SimTime;

/// Identifier tying every message and stage record back to the application
/// operation (one `subscribe` or one `publish`) that caused it.
///
/// Packed as `tag(2) | node(30) | seq(32)`: the tag distinguishes
/// subscription from publication traces, `node` is the originating node and
/// `seq` a per-node sequence number — the same composition the pub/sub
/// layer uses for `SubId`/`EventId`, so ids and traces line up naturally.
///
/// [`TraceId::NONE`] marks untraced traffic (overlay maintenance, state
/// transfer, batched envelopes aggregating several traces).
///
/// # Examples
///
/// ```
/// use cbps_sim::TraceId;
///
/// let t = TraceId::for_publication(3, 7);
/// assert!(!t.is_none());
/// assert_eq!(t.node(), Some(3));
/// assert_ne!(t, TraceId::for_subscription(3, 7));
/// assert!(TraceId::NONE.is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The null trace: carried by untraced traffic, never recorded.
    pub const NONE: TraceId = TraceId(0);

    const TAG_SUB: u64 = 1;
    const TAG_PUB: u64 = 2;
    const NODE_BITS: u32 = 30;
    const SEQ_BITS: u32 = 32;

    fn from_parts(tag: u64, node: usize, seq: u32) -> TraceId {
        let node = (node as u64) & ((1 << Self::NODE_BITS) - 1);
        TraceId((tag << (Self::NODE_BITS + Self::SEQ_BITS)) | (node << Self::SEQ_BITS) | seq as u64)
    }

    /// A trace for the `seq`-th subscription issued by `node`.
    pub fn for_subscription(node: usize, seq: u32) -> TraceId {
        TraceId::from_parts(Self::TAG_SUB, node, seq)
    }

    /// A trace for the `seq`-th publication issued by `node`.
    pub fn for_publication(node: usize, seq: u32) -> TraceId {
        TraceId::from_parts(Self::TAG_PUB, node, seq)
    }

    /// `true` for [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// `true` for subscription traces.
    pub fn is_subscription(self) -> bool {
        self.0 >> (Self::NODE_BITS + Self::SEQ_BITS) == Self::TAG_SUB
    }

    /// `true` for publication traces.
    pub fn is_publication(self) -> bool {
        self.0 >> (Self::NODE_BITS + Self::SEQ_BITS) == Self::TAG_PUB
    }

    /// The originating node, or `None` for the null trace.
    pub fn node(self) -> Option<usize> {
        if self.is_none() {
            None
        } else {
            Some(((self.0 >> Self::SEQ_BITS) & ((1 << Self::NODE_BITS) - 1)) as usize)
        }
    }

    /// The per-node operation sequence number.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }

    /// The raw packed value (stable within a run; useful as a log key).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A point in the life of a traced operation.
///
/// The stage taxonomy follows the paper's pipeline: an operation is issued
/// ([`Publish`](Stage::Publish) / [`Subscribe`](Stage::Subscribe)), routed
/// hop-by-hop over the overlay ([`RouteHop`](Stage::RouteHop)), lands on
/// rendezvous nodes (subscriptions are [`Store`](Stage::Store)d, events are
/// matched at [`RendezvousMatch`](Stage::RendezvousMatch)), may sit in a
/// notification buffer ([`BufferWait`](Stage::BufferWait)) or ride the ring
/// between collecting agents ([`CollectHop`](Stage::CollectHop)), is sent
/// toward the subscriber ([`NotifyRoute`](Stage::NotifyRoute)), and finally
/// arrives ([`Deliver`](Stage::Deliver)).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// An event was published by the application.
    Publish,
    /// A subscription was issued by the application.
    Subscribe,
    /// One overlay routing hop was taken by a traced message.
    RouteHop,
    /// A subscription was installed at a rendezvous node.
    Store,
    /// An event reached a rendezvous node and was matched against the store.
    RendezvousMatch,
    /// A matched notification left the rendezvous buffer (records how long
    /// it waited).
    BufferWait,
    /// A collect item moved one step along the ring toward its agent node.
    CollectHop,
    /// A notification was sent toward its subscriber.
    NotifyRoute,
    /// A notification arrived at its subscriber.
    Deliver,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Publish,
        Stage::Subscribe,
        Stage::RouteHop,
        Stage::Store,
        Stage::RendezvousMatch,
        Stage::BufferWait,
        Stage::CollectHop,
        Stage::NotifyRoute,
        Stage::Deliver,
    ];

    /// Stable kebab-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Publish => "publish",
            Stage::Subscribe => "subscribe",
            Stage::RouteHop => "route-hop",
            Stage::Store => "store",
            Stage::RendezvousMatch => "rendezvous-match",
            Stage::BufferWait => "buffer-wait",
            Stage::CollectHop => "collect-hop",
            Stage::NotifyRoute => "notify-route",
            Stage::Deliver => "deliver",
        }
    }
}

/// One timestamped step in the life of a traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageRecord {
    /// The operation this step belongs to.
    pub trace: TraceId,
    /// Which pipeline stage ran.
    pub stage: Stage,
    /// Traffic class of the message involved.
    pub class: TrafficClass,
    /// The node the stage ran on.
    pub node: NodeIdx,
    /// Simulated time of the step.
    pub at: SimTime,
}

/// How much the observability layer records.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsMode {
    /// Record nothing; every entry point is a single branch.
    #[default]
    Off,
    /// Record stage latencies and the stage log, but keep per-hop routing
    /// out of the log (hops still feed the latency registry).
    Stages,
    /// Everything, including one log record per overlay routing hop —
    /// enough to explain a delivery hop-by-hop.
    Full,
}

impl ObsMode {
    /// `true` unless [`ObsMode::Off`].
    pub fn enabled(self) -> bool {
        !matches!(self, ObsMode::Off)
    }

    /// Stable name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Stages => "stages",
            ObsMode::Full => "full",
        }
    }
}

/// Number of linear sub-buckets per power-of-two bucket (HDR-style).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Bucket count covering the whole `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A log-bucketed histogram: power-of-two buckets, each split into
/// 32 linear sub-buckets, HDR style.
///
/// Values below 32 are exact; larger values land in a bucket whose width is
/// at most 1/32 (≈3%) of the value. Recording is allocation-free — the
/// bucket array is allocated once at construction — which is what lets the
/// observability layer sample every stage of every message without touching
/// the allocator on the hot path. The exact [`Histogram`](crate::Histogram)
/// remains the right tool for small-support series (hop counts) where
/// tables must be exact.
///
/// # Examples
///
/// ```
/// use cbps_sim::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 1000);
/// assert_eq!(h.max(), Some(1000));
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((480..=520).contains(&p50), "p50 within 3%: {p50}");
/// ```
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            value as usize
        } else {
            // `exp` is the distance from the top linear bucket's exponent.
            let exp = 63 - value.leading_zeros() - SUB_BITS;
            let sub = (value >> exp) & (SUB_BUCKETS - 1);
            ((exp as usize + 1) << SUB_BITS) + sub as usize
        }
    }

    /// The smallest value mapping to bucket `index` (inverse of
    /// [`bucket_index`](Self::bucket_index) on bucket lower bounds).
    fn bucket_low(index: usize) -> u64 {
        let i = index as u64;
        if i < SUB_BUCKETS {
            i
        } else {
            let exp = (i >> SUB_BITS) - 1;
            let sub = i & (SUB_BUCKETS - 1);
            (SUB_BUCKETS + sub) << exp
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Percentile by the nearest-rank method; `p` in `[0, 100]`.
    ///
    /// Returns the lower bound of the bucket holding the ranked sample —
    /// exact for values below 32, within ≈3% above — clamped to the exact
    /// observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Self::bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates over non-empty buckets as `(bucket_lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), c))
    }

    /// Merges another histogram into this one (bucket-wise; exact
    /// min/max/sum are preserved).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Bounded per-run log of [`StageRecord`]s.
///
/// The log keeps the **earliest** records when full (dropping new ones and
/// counting them in [`dropped`](TraceLog::dropped)): early chains stay
/// complete, which is what the causality tests and `explain` need.
#[derive(Clone, Debug)]
pub struct TraceLog {
    records: Vec<StageRecord>,
    capacity: usize,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(TraceLog::DEFAULT_CAPACITY)
    }
}

impl TraceLog {
    /// Default record capacity (1 Mi records ≈ 40 MB).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates an empty log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, rec: StageRecord) {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(rec);
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// All retained records, in recording order (which is sim-time order).
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The stage chain of one trace, in recording (sim-time) order.
    pub fn chain(&self, trace: TraceId) -> Vec<StageRecord> {
        self.records
            .iter()
            .filter(|r| r.trace == trace)
            .copied()
            .collect()
    }

    fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    fn merge(&mut self, other: &TraceLog) {
        for rec in &other.records {
            self.record(*rec);
        }
        self.dropped += other.dropped;
    }
}

/// Summary statistics of one histogram, ready for reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObsSummary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl ObsSummary {
    /// Summarizes a histogram; `None` when it is empty.
    pub fn of(h: &LogHistogram) -> Option<ObsSummary> {
        if h.is_empty() {
            return None;
        }
        Some(ObsSummary {
            count: h.len(),
            mean: h.mean(),
            p50: h.percentile(50.0).unwrap_or(0),
            p90: h.percentile(90.0).unwrap_or(0),
            p99: h.percentile(99.0).unwrap_or(0),
            max: h.max().unwrap_or(0),
        })
    }
}

/// Per-run observability state: mode, trace log, stage-latency registry and
/// named histograms. Embedded in [`Metrics`](crate::Metrics) so every layer
/// that can count a message can also record a stage.
///
/// # Examples
///
/// ```
/// use cbps_sim::{ObsMode, Observability, Stage, TraceId, TrafficClass};
/// use cbps_sim::SimTime;
///
/// let mut obs = Observability::new();
/// obs.set_mode(ObsMode::Stages);
/// let t = TraceId::for_publication(0, 1);
/// obs.stage(t, Stage::Publish, TrafficClass::PUBLICATION, 0, SimTime::ZERO);
/// obs.stage(t, Stage::Deliver, TrafficClass::NOTIFICATION, 4, SimTime::from_millis(150));
/// let chain = obs.log().chain(t);
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain[0].stage, Stage::Publish);
/// let h = obs.stage_histogram(TrafficClass::NOTIFICATION, Stage::Deliver).unwrap();
/// assert_eq!(h.max(), Some(150_000)); // µs since the publish origin
/// ```
#[derive(Clone, Debug, Default)]
pub struct Observability {
    mode: ObsMode,
    log: TraceLog,
    latency: HashMap<(TrafficClass, Stage), LogHistogram>,
    named: HashMap<String, LogHistogram>,
    origins: HashMap<TraceId, SimTime>,
    /// When set (sharded-engine sinks only), origins first seen by this sink
    /// are queued in `fresh_origins` so the epoch driver can broadcast them
    /// to sibling shards at the next barrier.
    track_fresh: bool,
    fresh_origins: Vec<(TraceId, SimTime)>,
}

impl Observability {
    /// Creates a disabled observability sink.
    pub fn new() -> Self {
        Observability::default()
    }

    /// Current mode.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Sets the recording mode. Existing data is kept.
    pub fn set_mode(&mut self, mode: ObsMode) {
        self.mode = mode;
    }

    /// `true` unless the mode is [`ObsMode::Off`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// Records that `trace` reached `stage` on `node` at time `at`.
    ///
    /// The first record of a trace fixes its **origin**; every stage's
    /// latency histogram sample is `at - origin` in microseconds, so
    /// percentiles decompose end-to-end latency by stage without needing a
    /// linear predecessor (mcast fan-out makes stage chains trees, not
    /// lines). No-op when disabled or for [`TraceId::NONE`].
    #[inline]
    pub fn stage(
        &mut self,
        trace: TraceId,
        stage: Stage,
        class: TrafficClass,
        node: NodeIdx,
        at: SimTime,
    ) {
        if !self.mode.enabled() || trace.is_none() {
            return;
        }
        self.stage_slow(trace, stage, class, node, at, true);
    }

    /// Records one overlay routing hop for `trace`. Feeds the latency
    /// registry always; feeds the log only in [`ObsMode::Full`].
    #[inline]
    pub fn hop(&mut self, trace: TraceId, class: TrafficClass, node: NodeIdx, at: SimTime) {
        if !self.mode.enabled() || trace.is_none() {
            return;
        }
        let log = matches!(self.mode, ObsMode::Full);
        self.stage_slow(trace, Stage::RouteHop, class, node, at, log);
    }

    fn stage_slow(
        &mut self,
        trace: TraceId,
        stage: Stage,
        class: TrafficClass,
        node: NodeIdx,
        at: SimTime,
        log: bool,
    ) {
        let origin = match self.origins.entry(trace) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                e.insert(at);
                if self.track_fresh {
                    self.fresh_origins.push((trace, at));
                }
                at
            }
        };
        let micros = at.saturating_since(origin).as_micros();
        self.latency
            .entry((class, stage))
            .or_default()
            .record(micros);
        if log {
            self.log.record(StageRecord {
                trace,
                stage,
                class,
                node,
                at,
            });
        }
    }

    /// Records a sample under a free-form series name (fan-out sizes, queue
    /// depths, store sizes). No-op when disabled.
    #[inline]
    pub fn sample(&mut self, name: &str, value: u64) {
        if !self.mode.enabled() {
            return;
        }
        if let Some(h) = self.named.get_mut(name) {
            h.record(value);
        } else {
            let mut h = LogHistogram::new();
            h.record(value);
            self.named.insert(name.to_owned(), h);
        }
    }

    /// The stage log.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// The since-origin latency histogram for one `(class, stage)` cell.
    pub fn stage_histogram(&self, class: TrafficClass, stage: Stage) -> Option<&LogHistogram> {
        self.latency.get(&(class, stage))
    }

    /// Iterates over every non-empty `(class, stage)` latency histogram.
    pub fn stage_histograms(
        &self,
    ) -> impl Iterator<Item = (TrafficClass, Stage, &LogHistogram)> + '_ {
        self.latency.iter().map(|(&(c, s), h)| (c, s, h))
    }

    /// The named histogram, if any samples were recorded under it.
    pub fn named_histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.named.get(name)
    }

    /// Iterates over every named histogram.
    pub fn named_histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> + '_ {
        self.named.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// When the given trace was first observed, if ever.
    pub fn origin(&self, trace: TraceId) -> Option<SimTime> {
        self.origins.get(&trace).copied()
    }

    /// Merges the data of another sink into this one (mode is unchanged;
    /// origins from `other` are kept where absent here).
    pub fn merge(&mut self, other: &Observability) {
        for (key, h) in &other.latency {
            self.latency.entry(*key).or_default().merge(h);
        }
        for (name, h) in &other.named {
            if let Some(mine) = self.named.get_mut(name) {
                mine.merge(h);
            } else {
                self.named.insert(name.clone(), h.clone());
            }
        }
        self.log.merge(&other.log);
        for (&t, &at) in &other.origins {
            self.origins.entry(t).or_insert(at);
        }
    }

    /// Drops all recorded data, keeping the mode.
    pub fn clear(&mut self) {
        self.log.clear();
        self.latency.clear();
        self.named.clear();
        self.origins.clear();
        self.fresh_origins.clear();
    }

    /// A fresh sink for one shard of a sharded run: same mode and log
    /// capacity, origins copied from this (global) sink so since-origin
    /// latencies stay anchored to the true operation start, and fresh-origin
    /// tracking enabled so barriers can propagate in-run origins.
    pub(crate) fn fork_for_shard(&self) -> Observability {
        Observability {
            mode: self.mode,
            log: TraceLog::new(self.log.capacity()),
            latency: HashMap::new(),
            named: HashMap::new(),
            origins: self.origins.clone(),
            track_fresh: true,
            fresh_origins: Vec::new(),
        }
    }

    /// Drains the origins first seen by this sink since the last call.
    pub(crate) fn take_fresh_origins(&mut self) -> Vec<(TraceId, SimTime)> {
        std::mem::take(&mut self.fresh_origins)
    }

    /// Installs an origin learned from a sibling shard (first writer wins,
    /// matching the single-threaded first-record-fixes-origin rule).
    pub(crate) fn add_origin(&mut self, trace: TraceId, at: SimTime) {
        self.origins.entry(trace).or_insert(at);
    }

    /// Merges per-shard sinks into this one with the trace log rebuilt in
    /// global `(time, shard)` order, so the merged log is independent of
    /// which shard's data arrives first. Histogram and origin merges are
    /// commutative already; the log append in [`Observability::merge`] is
    /// not, hence this entry point for the sharded engine.
    pub(crate) fn merge_ordered(&mut self, parts: &mut [Observability]) {
        for part in parts.iter() {
            for (key, h) in &part.latency {
                self.latency.entry(*key).or_default().merge(h);
            }
            for (name, h) in &part.named {
                if let Some(mine) = self.named.get_mut(name) {
                    mine.merge(h);
                } else {
                    self.named.insert(name.clone(), h.clone());
                }
            }
            for (&t, &at) in &part.origins {
                self.origins.entry(t).or_insert(at);
            }
        }
        // Per-shard logs are each time-ordered; a stable sort keyed on time
        // alone interleaves them with shard index breaking ties, which is
        // deterministic for any shard count.
        let mut merged: Vec<StageRecord> =
            Vec::with_capacity(parts.iter().map(|p| p.log.records.len()).sum());
        for part in parts.iter_mut() {
            merged.append(&mut part.log.records);
        }
        merged.sort_by_key(|r| r.at);
        let mut dropped: u64 = parts.iter().map(|p| p.log.dropped).sum();
        for rec in merged {
            if self.log.records.len() >= self.log.capacity {
                dropped += 1;
            } else {
                self.log.records.push(rec);
            }
        }
        self.log.dropped += dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_packing() {
        let t = TraceId::for_subscription(17, 42);
        assert!(t.is_subscription());
        assert!(!t.is_publication());
        assert_eq!(t.node(), Some(17));
        assert_eq!(t.seq(), 42);
        let p = TraceId::for_publication(17, 42);
        assert!(p.is_publication());
        assert_ne!(t.raw(), p.raw());
        assert_eq!(TraceId::NONE.node(), None);
        assert!(!TraceId::NONE.is_subscription());
    }

    #[test]
    fn bucket_boundaries_exact_below_sub_buckets() {
        for v in 0..SUB_BUCKETS {
            let i = LogHistogram::bucket_index(v);
            assert_eq!(i as u64, v);
            assert_eq!(LogHistogram::bucket_low(i), v);
        }
    }

    #[test]
    fn bucket_low_is_bucket_floor() {
        // The lower bound of a value's bucket maps back to the same bucket
        // and never exceeds the value.
        for v in [
            32u64,
            33,
            63,
            64,
            65,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let i = LogHistogram::bucket_index(v);
            let low = LogHistogram::bucket_low(i);
            assert!(low <= v, "low {low} > v {v}");
            assert_eq!(LogHistogram::bucket_index(low), i, "floor of {v}");
            // Relative error bound: bucket width ≤ low / 32.
            assert!(v - low <= low / SUB_BUCKETS + 1, "{v} vs {low}");
        }
    }

    #[test]
    fn log_histogram_exact_small_values() {
        let mut h = LogHistogram::new();
        for v in [5u64, 1, 3, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(3));
        assert_eq!(h.percentile(100.0), Some(8));
    }

    #[test]
    fn log_histogram_percentile_error_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p).unwrap() as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / 32.0, "p{p}: got {got}, exact {exact}");
        }
        assert_eq!(h.max(), Some(100_000));
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new();
        a.record_n(10, 4);
        let mut b = LogHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
        assert_eq!(a.sum(), 1_000_040);
        let empty = LogHistogram::new();
        a.merge(&empty);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut obs = Observability::new();
        let t = TraceId::for_publication(0, 1);
        obs.stage(
            t,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            0,
            SimTime::ZERO,
        );
        obs.hop(t, TrafficClass::PUBLICATION, 1, SimTime::from_millis(50));
        obs.sample("x", 3);
        assert!(obs.log().is_empty());
        assert_eq!(obs.stage_histograms().count(), 0);
        assert_eq!(obs.named_histograms().count(), 0);
    }

    #[test]
    fn none_trace_not_recorded() {
        let mut obs = Observability::new();
        obs.set_mode(ObsMode::Full);
        obs.stage(
            TraceId::NONE,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            0,
            SimTime::ZERO,
        );
        assert!(obs.log().is_empty());
    }

    #[test]
    fn since_origin_latency() {
        let mut obs = Observability::new();
        obs.set_mode(ObsMode::Stages);
        let t = TraceId::for_publication(2, 9);
        obs.stage(
            t,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            2,
            SimTime::from_secs(1),
        );
        obs.stage(
            t,
            Stage::RendezvousMatch,
            TrafficClass::PUBLICATION,
            5,
            SimTime::from_millis(1100),
        );
        let h = obs
            .stage_histogram(TrafficClass::PUBLICATION, Stage::RendezvousMatch)
            .unwrap();
        assert_eq!(h.max(), Some(100_000));
        let pub_h = obs
            .stage_histogram(TrafficClass::PUBLICATION, Stage::Publish)
            .unwrap();
        assert_eq!(pub_h.max(), Some(0));
        assert_eq!(obs.origin(t), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn hops_logged_only_in_full_mode() {
        for (mode, logged) in [(ObsMode::Stages, 0), (ObsMode::Full, 1)] {
            let mut obs = Observability::new();
            obs.set_mode(mode);
            let t = TraceId::for_publication(0, 1);
            obs.hop(t, TrafficClass::PUBLICATION, 3, SimTime::from_millis(50));
            assert_eq!(obs.log().len(), logged, "{mode:?}");
            assert!(obs
                .stage_histogram(TrafficClass::PUBLICATION, Stage::RouteHop)
                .is_some());
        }
    }

    #[test]
    fn trace_log_bounded_keeps_earliest() {
        let mut log = TraceLog::new(2);
        let t = TraceId::for_publication(0, 1);
        for i in 0..4 {
            log.record(StageRecord {
                trace: t,
                stage: Stage::RouteHop,
                class: TrafficClass::PUBLICATION,
                node: i,
                at: SimTime::from_secs(i as u64),
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.records()[0].node, 0);
    }

    #[test]
    fn merge_combines_registries_and_logs() {
        let mut a = Observability::new();
        a.set_mode(ObsMode::Stages);
        let t = TraceId::for_publication(0, 1);
        a.stage(
            t,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            0,
            SimTime::ZERO,
        );
        a.sample("fanout", 3);

        let mut b = Observability::new();
        b.set_mode(ObsMode::Stages);
        let u = TraceId::for_publication(1, 1);
        b.stage(
            u,
            Stage::Publish,
            TrafficClass::PUBLICATION,
            1,
            SimTime::ZERO,
        );
        b.sample("fanout", 5);
        b.sample("depth", 7);

        a.merge(&b);
        let h = a
            .stage_histogram(TrafficClass::PUBLICATION, Stage::Publish)
            .unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(a.named_histogram("fanout").unwrap().len(), 2);
        assert_eq!(a.named_histogram("depth").unwrap().len(), 1);
        assert_eq!(a.log().len(), 2);
    }

    #[test]
    fn clear_keeps_mode() {
        let mut obs = Observability::new();
        obs.set_mode(ObsMode::Full);
        let t = TraceId::for_subscription(0, 1);
        obs.stage(
            t,
            Stage::Subscribe,
            TrafficClass::SUBSCRIPTION,
            0,
            SimTime::ZERO,
        );
        obs.clear();
        assert!(obs.log().is_empty());
        assert_eq!(obs.stage_histograms().count(), 0);
        assert_eq!(obs.mode(), ObsMode::Full);
    }

    #[test]
    fn summary_of_histogram() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        let s = ObsSummary::of(&h).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
        assert!(ObsSummary::of(&LogHistogram::new()).is_none());
    }
}

//! Heap-vs-wheel scheduler equivalence.
//!
//! The timing wheel claims to reproduce the binary heap's `(time, seq)`
//! pop order *exactly*, so any workload must execute bit-identically under
//! both schedulers: the same upcalls in the same order at the same times,
//! the same RNG draw sequence (event order drives RNG consumption, so one
//! transposed pop desyncs everything downstream), the same metrics, and
//! the same sampled queue statistics. These tests run seeded storm
//! workloads — zero-delay local cascades, same-timestamp bursts, timer
//! storms, crash/revive mid-run, `run_until` boundaries that stop between
//! events, and long-horizon timers that land in every wheel level — under
//! both schedulers and compare full execution fingerprints.

use cbps_sim::{
    Context, NetConfig, Node, NodeIdx, SchedulerKind, SimDuration, SimTime, Simulator, TraceEntry,
    TrafficClass,
};

/// A message that fans out until its TTL runs dry.
#[derive(Clone, Debug)]
struct Ping {
    ttl: u8,
    val: u64,
}

/// Node that turns every upcall into a deterministic-but-messy mix of
/// sends, local cascades, and timer storms. All decisions come from the
/// simulator's RNG, so a single out-of-order event desyncs the run.
struct StormNode {
    n: usize,
    checksum: u64,
    upcalls: u64,
}

impl StormNode {
    fn new(n: usize) -> Self {
        StormNode {
            n,
            checksum: 0,
            upcalls: 0,
        }
    }

    fn fold(&mut self, now: SimTime, a: u64, b: u64) {
        self.upcalls += 1;
        self.checksum = self
            .checksum
            .rotate_left(9)
            .wrapping_add(now.as_micros())
            .wrapping_add(a.wrapping_mul(0x9e37_79b9))
            .wrapping_add(b);
    }
}

impl Node for StormNode {
    type Msg = Ping;
    type Timer = u64;

    fn on_message(&mut self, from: NodeIdx, msg: Ping, ctx: &mut Context<'_, Ping, u64>) {
        self.fold(ctx.now(), from as u64, msg.val);
        if msg.ttl == 0 {
            return;
        }
        let next = Ping {
            ttl: msg.ttl - 1,
            val: msg.val.wrapping_add(1),
        };
        match ctx.rng().gen_range(0..6u32) {
            0 | 1 => {
                // Network hop to a pseudo-random peer.
                let to = (from + msg.val as usize) % self.n;
                ctx.send(to, TrafficClass::OTHER, next);
            }
            2 => {
                // Zero-delay local cascade: a same-timestamp burst.
                ctx.note("local-burst");
                for i in 0..3u64 {
                    ctx.send_local(Ping {
                        ttl: msg.ttl - 1,
                        val: msg.val.wrapping_add(i),
                    });
                }
            }
            3 => {
                // Timer storm: several timers expiring at the same instant.
                for i in 0..4u64 {
                    ctx.arm_timer(SimDuration::from_millis(250), msg.val.wrapping_add(i));
                }
            }
            4 => {
                // Long-horizon timers: past the fine wheel (>131 ms), past
                // the L1 window (>537 s), and into L2 territory.
                let secs = [1u64, 30, 400, 3_600][ctx.rng().gen_range(0..4usize)];
                ctx.arm_timer(SimDuration::from_secs(secs), msg.val);
            }
            _ => {
                // Fan out two hops at once.
                let a = (from + 1) % self.n;
                let b = (from + msg.val as usize + 1) % self.n;
                ctx.send(a, TrafficClass::OTHER, next.clone());
                ctx.send(b, TrafficClass::OTHER, next);
            }
        }
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Context<'_, Ping, u64>) {
        self.fold(ctx.now(), u64::MAX, timer);
        ctx.metrics().add("timers.fired", 1);
        if timer.is_multiple_of(3) {
            let to = timer as usize % self.n;
            ctx.send(to, TrafficClass::OTHER, Ping { ttl: 2, val: timer });
        }
    }

    fn on_send_failed(&mut self, to: NodeIdx, msg: Ping, ctx: &mut Context<'_, Ping, u64>) {
        self.fold(ctx.now(), to as u64, msg.val);
        ctx.note("send-failed");
    }
}

/// Everything observable about one run. Equality means the two schedulers
/// executed the same history.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    queue_peak: usize,
    end_time: SimTime,
    messages: u64,
    timers_fired: u64,
    checksums: Vec<u64>,
    upcalls: Vec<u64>,
    trace: Vec<TraceEntry>,
}

fn fingerprint(sim: &Simulator<StormNode>) -> Fingerprint {
    Fingerprint {
        events: sim.events_processed(),
        queue_peak: sim.queue_peak(),
        end_time: sim.now(),
        messages: sim.metrics().messages(TrafficClass::OTHER),
        timers_fired: sim.metrics().counter("timers.fired"),
        checksums: sim.nodes().map(|(_, n)| n.checksum).collect(),
        upcalls: sim.nodes().map(|(_, n)| n.upcalls).collect(),
        trace: sim.trace().entries().copied().collect(),
    }
}

const NODES: usize = 16;

fn build(kind: SchedulerKind, seed: u64) -> Simulator<StormNode> {
    let mut sim = Simulator::new(NetConfig::new(seed).with_scheduler(kind));
    sim.enable_trace(1 << 20);
    for _ in 0..NODES {
        sim.add_node(StormNode::new(NODES));
    }
    sim
}

/// Seeds a same-timestamp burst (many messages injected at the exact same
/// instant) plus staggered follow-ups.
fn seed_workload(sim: &mut Simulator<StormNode>) {
    for i in 0..48u64 {
        sim.inject_at(
            SimTime::ZERO,
            (i as usize) % NODES,
            Ping { ttl: 10, val: i },
        );
    }
    for i in 0..16u64 {
        sim.inject_at(
            SimTime::from_millis(10 * i),
            (3 * i as usize) % NODES,
            Ping {
                ttl: 8,
                val: 1_000 + i,
            },
        );
    }
}

#[test]
fn storm_runs_identically_under_both_schedulers() {
    for seed in [1u64, 7, 0xC0FFEE] {
        let mut fps = Vec::new();
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut sim = build(kind, seed);
            seed_workload(&mut sim);
            sim.run();
            fps.push(fingerprint(&sim));
        }
        assert!(
            fps[0] == fps[1],
            "seed {seed}: heap and wheel runs diverged:\n\
             heap:  events={} peak={} end={}\n\
             wheel: events={} peak={} end={}",
            fps[0].events,
            fps[0].queue_peak,
            fps[0].end_time,
            fps[1].events,
            fps[1].queue_peak,
            fps[1].end_time,
        );
        assert!(fps[0].events > 1_000, "storm too small to be meaningful");
    }
}

#[test]
fn run_until_boundaries_and_crash_revive_are_identical() {
    let mut fps = Vec::new();
    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let mut sim = build(kind, 42);
        seed_workload(&mut sim);
        // Stop mid-flight at boundaries that fall between events, inside
        // the same-timestamp burst window, and exactly on a hop boundary.
        sim.run_until(SimTime::from_millis(50));
        sim.run_until(SimTime::from_micros(50_001));
        sim.crash(2);
        sim.crash(5);
        sim.run_until(SimTime::from_secs(2));
        sim.revive(2);
        // Re-seed the revived node so both halves keep exercising it.
        let t = sim.now() + SimDuration::from_millis(1);
        sim.inject_at(t, 2, Ping { ttl: 9, val: 9_999 });
        sim.run_until(SimTime::from_secs(500));
        sim.run();
        fps.push(fingerprint(&sim));
    }
    assert_eq!(fps[0], fps[1]);
    // Crashed node 5 stayed down: sends to it must have failed somewhere.
    assert!(
        fps[0].trace.iter().any(|e| e.tag == "send-failed"),
        "expected at least one failed send after the crash"
    );
}

#[test]
fn long_horizon_timers_cross_every_wheel_level() {
    let mut fps = Vec::new();
    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let mut sim = build(kind, 1234);
        // Timers far beyond the fine wheel: L1 (~537 s window), L2
        // (~25 d window), and the far heap beyond that — plus a dense
        // cluster sharing one expiry instant.
        sim.arm_timer_at(SimTime::from_secs(100), 0, 3);
        sim.arm_timer_at(SimTime::from_secs(1_000), 1, 6);
        sim.arm_timer_at(SimTime::from_secs(200_000), 2, 9);
        sim.arm_timer_at(SimTime::from_secs(2_000_000), 3, 12);
        for i in 0..8u64 {
            sim.arm_timer_at(SimTime::from_secs(50), (i % 4) as usize, 100 + i);
        }
        sim.inject_at(SimTime::ZERO, 0, Ping { ttl: 6, val: 5 });
        sim.run();
        fps.push(fingerprint(&sim));
    }
    assert_eq!(fps[0], fps[1]);
    assert!(
        fps[0].end_time >= SimTime::from_secs(2_000_000),
        "far-future timer never fired"
    );
    assert!(fps[0].timers_fired >= 12);
}

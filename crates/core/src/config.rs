//! Configuration of the CB-pub/sub layer.

use std::sync::Arc;

use cbps_overlay::KeySpace;
use cbps_sim::SimDuration;

use crate::mapping::{AkMapping, EventKeyChoice, MappingKind};
use crate::rendezvous::{RendezvousMode, RendezvousParams, RendezvousPolicy};
use crate::space::EventSpace;

/// Which overlay primitive propagates subscriptions and publications to
/// their rendezvous keys (§4.3.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// One routed `send()` per target key — the basic architecture's only
    /// option, and the "unicast" series of the figures.
    Unicast,
    /// The native `m-cast()` primitive (Figure 4).
    #[default]
    MCast,
    /// The conservative successor walk per contiguous key range (§4.3.1's
    /// low-bandwidth / high-dilation baseline).
    Walk,
}

/// How rendezvous nodes dispatch notifications (§4.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NotifyMode {
    /// Send a notification message per match, immediately.
    #[default]
    Immediate,
    /// Accumulate matches and send one batch per subscriber per period.
    Buffered {
        /// The buffering period.
        period: SimDuration,
    },
    /// Buffering plus ring-neighbor collection: matches flow along the
    /// ring to the middle node of the subscription's rendezvous range,
    /// which alone contacts the subscriber.
    Collecting {
        /// The buffering/exchange period.
        period: SimDuration,
    },
}

/// Full configuration of a pub/sub deployment, shared by every node.
///
/// # Examples
///
/// ```
/// use cbps::{MappingKind, NotifyMode, Primitive, PubSubConfig};
/// use cbps_sim::SimDuration;
///
/// let cfg = PubSubConfig::paper_default()
///     .with_mapping(MappingKind::SelectiveAttribute)
///     .with_primitive(Primitive::Unicast)
///     .with_notify_mode(NotifyMode::Buffered { period: SimDuration::from_secs(5) });
/// assert_eq!(cfg.mapping.kind(), MappingKind::SelectiveAttribute);
/// ```
#[derive(Clone, Debug)]
pub struct PubSubConfig {
    /// The event space Ω.
    pub space: EventSpace,
    /// The configured ak-mapping (`SK`/`EK`).
    pub mapping: AkMapping,
    /// Propagation primitive for subscriptions and publications.
    pub primitive: Primitive,
    /// Notification dispatch policy.
    pub notify_mode: NotifyMode,
    /// Number of ring successors each stored subscription is replicated to
    /// (0 disables replication). Must not exceed the overlay's
    /// successor-list length to be effective.
    pub replication: usize,
    /// Expiration applied to subscriptions issued without an explicit TTL
    /// (`None` = never expire).
    pub default_ttl: Option<SimDuration>,
    /// Lease-refresh mode: subscribers re-issue each TTL-bearing
    /// subscription when half its lease has elapsed, keeping rendezvous
    /// state soft — the classic complement to expiry-based cleanup (the
    /// paper uses expiration to "simulate possible requests for
    /// unsubscriptions"; refresh turns that into a lease protocol).
    pub lease_refresh: bool,
    /// Subscription covering at rendezvous nodes: subscriptions covered by
    /// (or covering) already-stored ones share one physical matching-engine
    /// entry. On by default — it changes memory and matching cost only,
    /// never the delivered sets (see [`SubscriptionStore`]).
    ///
    /// [`SubscriptionStore`]: crate::SubscriptionStore
    pub covering: bool,
    /// The dynamic rendezvous layer wrapping the mapping (the
    /// `--rendezvous static|adaptive` knob). [`RendezvousMode::Static`]
    /// — the default — bypasses it entirely, keeping every static-mode
    /// run byte-identical to earlier releases; `Adaptive` splits hot
    /// rendezvous arcs online without changing delivered sets (see
    /// [`RendezvousPolicy`]).
    pub rendezvous: RendezvousPolicy,
}

impl PubSubConfig {
    /// The paper's evaluation setup: the 4-attribute space over
    /// `0..=10^6`, a `2^13` key space, Key Space-Split mapping, `m-cast`,
    /// immediate notifications, no replication, no expiry.
    pub fn paper_default() -> Self {
        let space = EventSpace::paper_default();
        let mapping = AkMapping::new(MappingKind::default(), &space, KeySpace::new(13));
        PubSubConfig {
            space,
            mapping,
            primitive: Primitive::default(),
            notify_mode: NotifyMode::default(),
            replication: 0,
            default_ttl: None,
            lease_refresh: false,
            covering: true,
            rendezvous: RendezvousPolicy::default(),
        }
    }

    /// Rebuilds the configuration around a different event space (keeps the
    /// mapping kind, key space, discretization and event-key choice).
    pub fn with_space(mut self, space: EventSpace) -> Self {
        let kind = self.mapping.kind();
        let keys = self.mapping.key_space();
        let w = self.mapping.discretization();
        self.mapping = AkMapping::new(kind, &space, keys).with_discretization(w);
        self.space = space;
        self
    }

    /// Replaces the mapping kind (preserving key space and discretization).
    pub fn with_mapping(mut self, kind: MappingKind) -> Self {
        let keys = self.mapping.key_space();
        let w = self.mapping.discretization();
        self.mapping = AkMapping::new(kind, &self.space, keys).with_discretization(w);
        self
    }

    /// Replaces the key space (preserving everything else).
    pub fn with_key_space(mut self, keys: KeySpace) -> Self {
        let kind = self.mapping.kind();
        let w = self.mapping.discretization();
        self.mapping = AkMapping::new(kind, &self.space, keys).with_discretization(w);
        self
    }

    /// Sets the discretization interval width (§4.3.3).
    pub fn with_discretization(mut self, width: u64) -> Self {
        self.mapping = self.mapping.with_discretization(width);
        self
    }

    /// Sets how Attribute-Split maps events to a dimension.
    pub fn with_ek_choice(mut self, choice: EventKeyChoice) -> Self {
        self.mapping = self.mapping.with_ek_choice(choice);
        self
    }

    /// Sets the "nearly static" per-dimension key rotations (§4.2
    /// discussion): every node of one deployment epoch must share them.
    pub fn with_rotations(mut self, rotations: Vec<u64>) -> Self {
        self.mapping = self.mapping.with_rotations(rotations);
        self
    }

    /// Replaces the propagation primitive.
    pub fn with_primitive(mut self, primitive: Primitive) -> Self {
        self.primitive = primitive;
        self
    }

    /// Replaces the notification dispatch policy.
    pub fn with_notify_mode(mut self, mode: NotifyMode) -> Self {
        self.notify_mode = mode;
        self
    }

    /// Sets the replication factor.
    pub fn with_replication(mut self, replicas: usize) -> Self {
        self.replication = replicas;
        self
    }

    /// Sets the default subscription TTL.
    pub fn with_default_ttl(mut self, ttl: Option<SimDuration>) -> Self {
        self.default_ttl = ttl;
        self
    }

    /// Enables or disables lease refresh of TTL-bearing subscriptions.
    pub fn with_lease_refresh(mut self, on: bool) -> Self {
        self.lease_refresh = on;
        self
    }

    /// Enables or disables subscription covering at rendezvous nodes.
    pub fn with_covering(mut self, on: bool) -> Self {
        self.covering = on;
        self
    }

    /// Sets the rendezvous mode (static = the paper's stateless mapping,
    /// adaptive = online hotspot splitting) with default tuning.
    pub fn with_rendezvous(mut self, mode: RendezvousMode) -> Self {
        self.rendezvous = RendezvousPolicy::new(mode);
        self
    }

    /// Sets the rendezvous mode with explicit tuning parameters.
    pub fn with_rendezvous_params(
        mut self,
        mode: RendezvousMode,
        params: RendezvousParams,
    ) -> Self {
        self.rendezvous = RendezvousPolicy::new(mode).with_params(params);
        self
    }

    /// Wraps the configuration for sharing across nodes.
    pub fn into_shared(self) -> Arc<PubSubConfig> {
        Arc::new(self)
    }
}

impl Default for PubSubConfig {
    fn default() -> Self {
        PubSubConfig::paper_default()
    }
}

/// The ring key space a deployment of `nodes` nodes should run on.
///
/// The paper's 2^13 space is kept for every node count it can hold (all
/// recorded baselines stay byte-identical); beyond 8192 nodes the space
/// widens to the next power of two with at least 4 keys per node, keeping
/// consistent-hashing collision retries rare while staying well under the
/// 64-bit ring limit.
///
/// # Examples
///
/// ```
/// use cbps::deployment_key_space;
///
/// assert_eq!(deployment_key_space(500).bits(), 13);
/// assert_eq!(deployment_key_space(8192).bits(), 13);
/// assert_eq!(deployment_key_space(100_000).bits(), 19);
/// assert_eq!(deployment_key_space(1_000_000).bits(), 22);
/// ```
pub fn deployment_key_space(nodes: usize) -> KeySpace {
    if nodes <= 1 << 13 {
        return KeySpace::new(13);
    }
    let bits = 64 - ((nodes as u64) * 4 - 1).leading_zeros();
    KeySpace::new(bits.min(63))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = PubSubConfig::paper_default();
        assert_eq!(cfg.space.dims(), 4);
        assert_eq!(cfg.mapping.key_space().bits(), 13);
        assert_eq!(cfg.primitive, Primitive::MCast);
        assert_eq!(cfg.notify_mode, NotifyMode::Immediate);
        assert_eq!(cfg.replication, 0);
    }

    #[test]
    fn builders_preserve_orthogonal_settings() {
        let cfg = PubSubConfig::paper_default()
            .with_discretization(100)
            .with_mapping(MappingKind::AttributeSplit)
            .with_key_space(KeySpace::new(10));
        assert_eq!(cfg.mapping.discretization(), 100);
        assert_eq!(cfg.mapping.kind(), MappingKind::AttributeSplit);
        assert_eq!(cfg.mapping.key_space().bits(), 10);
    }

    #[test]
    fn notify_modes_compare() {
        let b = NotifyMode::Buffered {
            period: SimDuration::from_secs(5),
        };
        assert_ne!(b, NotifyMode::Immediate);
        assert_eq!(
            b,
            NotifyMode::Buffered {
                period: SimDuration::from_secs(5)
            }
        );
    }
}

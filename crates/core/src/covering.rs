//! Subscription covering (aggregation) for the store.
//!
//! When subscription σ *covers* σ′ — on every dimension σ is a wildcard or
//! a range enclosing σ′'s (see
//! [`Subscription::covers`](crate::Subscription::covers)) — any event
//! matching σ′ also matches σ, so a rendezvous node only needs σ in its
//! matching engine to *detect* events relevant to either. The table below
//! groups logical subscriptions under one physical representative per
//! group, so a node holding 10^6 logical subscriptions on a skewed
//! workload keeps far fewer physical index entries.
//!
//! **Delivered sets are unchanged.** The representative is only a
//! candidate filter: when its cover matches an event, members whose shape
//! equals the cover are emitted directly, all others are re-verified
//! against their own constraints. A representative may be *broader* than
//! every live member (its creator unsubscribed first) — that costs a
//! verification, never a wrong delivery. All per-id bookkeeping
//! (`len`/`peak`/expiry/refresh) stays in the store's logical `meta` map,
//! untouched by grouping.
//!
//! Detection is exact for "covered by an existing representative": a
//! representative covering σ must match σ's *lower-corner event* (σ's
//! lower bound on its constrained dimensions, 0 elsewhere — a cover is a
//! wildcard wherever σ is), so one engine query plus a `covers` check per
//! candidate finds it. The reverse direction — σ covering existing groups
//! — is a bounded best-effort probe over a `(first dimension, lower
//! bound)` ordering; missing an absorption only costs memory, never
//! correctness.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::engine::{AnyMatchEngine, MatchEngine};
use crate::event::Event;
use crate::store::StoredSub;
use crate::subscription::{SubId, Subscription};
use cbps_overlay::InlineVec;

/// Cap on reverse-absorption candidates examined per insert.
const PROBE_CAP: usize = 64;

/// One member of a covering group. The flag records whether the member's
/// shape equals the group's cover, letting matching skip re-verification.
type Member = (SubId, bool);

/// A physical index entry and the logical subscriptions it represents.
#[derive(Clone, Debug)]
struct Group {
    cover: Subscription,
    members: InlineVec<Member, 4>,
}

/// The covering layer: maps logical subscription ids onto shared physical
/// engine entries. Physical ids are minted from a private counter and
/// never leave the store.
#[derive(Clone, Debug)]
pub(crate) struct CoveringTable {
    groups: HashMap<SubId, Group>,
    /// Logical id → (physical id, position in the member list). Positions
    /// are fixed up on `swap_remove`, mirroring the counting index's
    /// bucket-position records, so un-covering is O(1).
    member_of: HashMap<SubId, (SubId, u32)>,
    /// Exact-duplicate fast path: shape → (physical id, member refcount).
    by_shape: HashMap<Subscription, (SubId, u32)>,
    /// Reverse-absorption probe order: (first constrained dimension of the
    /// cover, its lower bound there, physical id).
    probe: BTreeSet<(u32, u64, SubId)>,
    next_phys: u64,
    scratch: Vec<SubId>,
}

impl CoveringTable {
    pub(crate) fn new() -> Self {
        CoveringTable {
            groups: HashMap::new(),
            member_of: HashMap::new(),
            by_shape: HashMap::new(),
            probe: BTreeSet::new(),
            next_phys: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of physical engine entries (== live groups).
    pub(crate) fn physical_len(&self) -> usize {
        self.groups.len()
    }

    /// Registers a *fresh* logical subscription, inserting a physical
    /// entry into `engine` only when no existing group can represent it.
    pub(crate) fn insert(&mut self, engine: &mut AnyMatchEngine, id: SubId, sub: &Subscription) {
        if let Some(&(phys, _)) = self.by_shape.get(sub) {
            self.join(phys, id, sub);
            return;
        }
        // Covered by an existing representative? Every true cover matches
        // the lower-corner event, so an engine query over it enumerates all
        // candidates; `find_match` stops at the first one that actually
        // covers. Which covering group is picked when several qualify is
        // engine-specific (but deterministic) — group membership never
        // affects covers, the probe order, or delivered sets, so any
        // covering group is equally correct.
        let corner = Event::new_unchecked(
            sub.constraints()
                .iter()
                .map(|c| c.map_or(0, |c| c.lo()))
                .collect(),
        );
        let groups = &self.groups;
        let cover = engine.find_match(&corner, &mut |phys| groups[&phys].cover.covers(sub));
        if let Some(phys) = cover {
            self.join(phys, id, sub);
            return;
        }
        // Does σ cover an existing group? Best-effort: probe groups whose
        // cover's first constrained dimension matches σ's and whose lower
        // bound there falls inside σ's range, capped at PROBE_CAP.
        let first = sub
            .first_constrained()
            .expect("subscriptions constrain at least one dimension");
        let c = sub
            .constraint(first)
            .expect("first_constrained is constrained");
        let absorbed = self
            .probe
            .range((first as u32, c.lo(), SubId(0))..=(first as u32, c.hi(), SubId(u64::MAX)))
            .take(PROBE_CAP)
            .map(|&(_, _, phys)| phys)
            .find(|phys| sub.covers(&self.groups[phys].cover));
        if let Some(phys) = absorbed {
            self.widen(engine, phys, sub);
            self.join(phys, id, sub);
            return;
        }
        // New group with σ as its own representative.
        let phys = SubId(self.next_phys);
        self.next_phys += 1;
        engine.insert(phys, sub.clone());
        self.probe.insert((first as u32, c.lo(), phys));
        let mut members = InlineVec::new();
        members.push((id, true));
        self.groups.insert(
            phys,
            Group {
                cover: sub.clone(),
                members,
            },
        );
        self.member_of.insert(id, (phys, 0));
        self.by_shape.insert(sub.clone(), (phys, 1));
    }

    /// Registers a batch of fresh logical subscriptions at once.
    ///
    /// Equivalent to calling [`CoveringTable::insert`] for each item in
    /// order — the groups, covers, probe entries and by-shape map come out
    /// identical — but the expensive half of the decision procedure (the
    /// lower-corner engine query) runs once per *distinct shape* instead of
    /// once per item. Duplicate shapes are grouped up front by sorting on a
    /// shape digest; every non-first occurrence attaches to its shape's
    /// group with O(1) work, exactly as the sequential `by_shape` fast
    /// path would. The maps sized by the logical population are reserved
    /// up front, so the build never pays an incremental rehash of a
    /// million-entry table.
    ///
    /// The equivalence holds because duplicates never change the engine,
    /// probe set, or group covers: replaying only each shape's first
    /// occurrence, in original order, puts the table through the same
    /// sequence of decision states as a one-at-a-time build.
    pub(crate) fn insert_bulk(
        &mut self,
        engine: &mut AnyMatchEngine,
        items: &[(SubId, &Subscription)],
    ) {
        self.member_of.reserve(items.len());
        self.by_shape.reserve(items.len());
        // Sort item indices by shape digest, ties broken by position, so
        // equal shapes form runs led by their first occurrence. Runs split
        // on full shape inequality, so a digest collision yields two runs
        // whose later head simply takes the `by_shape` fast path —
        // correctness never rests on the digest.
        let mut order: Vec<(u64, u32)> = items
            .iter()
            .enumerate()
            .map(|(i, (_, sub))| {
                (
                    shape_digest(sub),
                    u32::try_from(i).expect("bulk batches exceed u32 items"),
                )
            })
            .collect();
        order.sort_unstable();
        let mut runs: Vec<(u32, u32)> = Vec::new(); // (start, end) into `order`
        let mut start = 0;
        while start < order.len() {
            let (digest, head) = order[start];
            let head_sub = items[head as usize].1;
            let mut end = start + 1;
            while end < order.len()
                && order[end].0 == digest
                && items[order[end].1 as usize].1 == head_sub
            {
                end += 1;
            }
            runs.push((start as u32, end as u32));
            start = end;
        }
        // Replay one head per distinct shape in first-occurrence order,
        // then attach that shape's duplicates to wherever the head landed.
        runs.sort_unstable_by_key(|&(start, _)| order[start as usize].1);
        for &(start, end) in &runs {
            let (head_id, head_sub) = items[order[start as usize].1 as usize];
            self.insert(engine, head_id, head_sub);
            if end - start > 1 {
                let phys = self.member_of[&head_id].0;
                for &(_, i) in &order[start as usize + 1..end as usize] {
                    let (id, sub) = items[i as usize];
                    self.join(phys, id, sub);
                }
            }
        }
    }

    /// Removes a logical subscription; drops the group's physical entry
    /// when its last member leaves.
    pub(crate) fn remove(&mut self, engine: &mut AnyMatchEngine, id: SubId, sub: &Subscription) {
        let (phys, pos) = self
            .member_of
            .remove(&id)
            .expect("every stored id is a member");
        let g = self
            .groups
            .get_mut(&phys)
            .expect("members imply a live group");
        let pos = pos as usize;
        g.members.swap_remove(pos);
        if pos < g.members.len() {
            let moved = g.members.as_slice()[pos].0;
            self.member_of
                .get_mut(&moved)
                .expect("member bookkeeping")
                .1 = pos as u32;
        }
        if let Some(entry) = self.by_shape.get_mut(sub) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.by_shape.remove(sub);
            }
        }
        if g.members.is_empty() {
            let g = self.groups.remove(&phys).expect("fetched above");
            let first = g
                .cover
                .first_constrained()
                .expect("covers are valid shapes");
            let lo = g.cover.constraint(first).expect("constrained").lo();
            self.probe.remove(&(first as u32, lo, phys));
            engine.remove(phys);
        }
    }

    /// Grows the physical-hit scratch to its steady-state bound (every
    /// group matching at once) so [`CoveringTable::matches_into`] never
    /// reallocates afterwards.
    pub(crate) fn warm(&mut self) {
        let need = self.groups.len();
        if self.scratch.capacity() < need {
            self.scratch.reserve(need - self.scratch.len());
        }
    }

    /// Expands the engine's physical hits into the exact logical match
    /// set, re-verifying members narrower than their representative.
    pub(crate) fn matches_into(
        &mut self,
        engine: &mut AnyMatchEngine,
        meta: &HashMap<SubId, Arc<StoredSub>>,
        event: &Event,
        out: &mut Vec<SubId>,
    ) {
        let mut hits = std::mem::take(&mut self.scratch);
        engine.matches_into(event, &mut hits);
        out.clear();
        for phys in &hits {
            for &(id, exact) in self.groups[phys].members.as_slice() {
                if exact || meta[&id].sub.matches(event) {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        hits.clear();
        self.scratch = hits;
    }

    /// Adds `id` to an existing group.
    fn join(&mut self, phys: SubId, id: SubId, sub: &Subscription) {
        let g = self.groups.get_mut(&phys).expect("joining a live group");
        let exact = *sub == g.cover;
        let pos = g.members.len() as u32;
        g.members.push((id, exact));
        self.member_of.insert(id, (phys, pos));
        match self.by_shape.get_mut(sub) {
            Some(entry) => {
                debug_assert_eq!(entry.0, phys, "one group per shape");
                entry.1 += 1;
            }
            None => {
                self.by_shape.insert(sub.clone(), (phys, 1));
            }
        }
    }

    /// Replaces a group's representative with the broader `cover`.
    fn widen(&mut self, engine: &mut AnyMatchEngine, phys: SubId, cover: &Subscription) {
        let g = self.groups.get_mut(&phys).expect("widening a live group");
        let old_first = g
            .cover
            .first_constrained()
            .expect("covers are valid shapes");
        let old_lo = g.cover.constraint(old_first).expect("constrained").lo();
        self.probe.remove(&(old_first as u32, old_lo, phys));
        // Members exactly matching the old cover are strictly narrower
        // than the new one: they need re-verification from now on.
        for m in g.members.as_mut_slice() {
            m.1 = false;
        }
        engine.remove(phys);
        engine.insert(phys, cover.clone());
        let first = cover.first_constrained().expect("covers are valid shapes");
        self.probe.insert((
            first as u32,
            cover.constraint(first).expect("constrained").lo(),
            phys,
        ));
        g.cover = cover.clone();
    }
}

/// FNV-1a digest of a subscription's shape for duplicate grouping: equal
/// shapes always digest equally, so sorting by digest makes duplicates
/// adjacent. (Distinct shapes colliding is tolerated by the caller.)
fn shape_digest(sub: &Subscription) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in sub.constraints() {
        let (tag, lo, hi) = c.map_or((0, 0, 0), |c| (1, c.lo(), c.hi()));
        for word in [tag, lo, hi] {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

//! Subscriptions: conjunctions of range constraints over event attributes
//! (§3.2). Disjunctions are expressed as separate subscriptions.

use std::fmt;

use crate::error::PubSubError;
use crate::event::Event;
use crate::space::EventSpace;

/// Globally unique subscription identifier: subscriber node index in the
/// high bits, per-subscriber sequence number in the low bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(pub u64);

impl SubId {
    /// Composes an id from the subscriber's node index and its sequence
    /// number.
    pub fn compose(node: usize, seq: u32) -> Self {
        SubId(((node as u64) << 32) | u64::from(seq))
    }

    /// The subscriber node index encoded in this id.
    pub fn node(self) -> usize {
        (self.0 >> 32) as usize
    }
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.node(), self.0 & 0xFFFF_FFFF)
    }
}

/// An inclusive range constraint `lo <= a_i <= hi` on one attribute.
///
/// Equality constraints are ranges with `lo == hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    lo: u64,
    hi: u64,
}

impl Constraint {
    /// The inclusive range `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::EmptyConstraint`] when `lo > hi`.
    pub fn range(lo: u64, hi: u64) -> Result<Self, PubSubError> {
        if lo > hi {
            return Err(PubSubError::EmptyConstraint { lo, hi });
        }
        Ok(Constraint { lo, hi })
    }

    /// The equality constraint `a_i == v`.
    pub fn eq(v: u64) -> Self {
        Constraint { lo: v, hi: v }
    }

    /// Lower bound (inclusive).
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// Number of values the constraint admits, `r_i`.
    pub fn span(self) -> u64 {
        self.hi - self.lo + 1
    }

    /// `true` iff `v` satisfies the constraint.
    pub fn admits(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "= {}", self.lo)
        } else {
            write!(f, "∈ [{}, {}]", self.lo, self.hi)
        }
    }
}

/// A subscription σ: a conjunction of per-attribute constraints. Attributes
/// without a constraint are wildcards (the "partially defined
/// subscriptions" of §4.2).
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, Event, EventSpace, Subscription};
///
/// let space = EventSpace::new(vec![
///     AttributeDef::new("price", 1000),
///     AttributeDef::new("qty", 100),
/// ]);
/// // price < 200 (i.e. in [0, 199]), qty unconstrained.
/// let sub = Subscription::builder(&space).range("price", 0, 199)?.build()?;
/// assert!(sub.matches(&Event::new(&space, vec![150, 7])?));
/// assert!(!sub.matches(&Event::new(&space, vec![500, 7])?));
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Subscription {
    /// One slot per dimension; `None` = wildcard.
    constraints: Vec<Option<Constraint>>,
}

impl Subscription {
    /// Starts building a subscription over `space`.
    pub fn builder(space: &EventSpace) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            space,
            constraints: vec![None; space.dims()],
            error: None,
        }
    }

    /// Creates a subscription directly from per-dimension constraint slots.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DimensionMismatch`] when the slot count
    /// differs from the space's dimensionality,
    /// [`PubSubError::ValueOutOfDomain`] when a bound exceeds its domain,
    /// and [`PubSubError::UnconstrainedSubscription`] when every slot is a
    /// wildcard.
    pub fn from_constraints(
        space: &EventSpace,
        constraints: Vec<Option<Constraint>>,
    ) -> Result<Self, PubSubError> {
        if constraints.len() != space.dims() {
            return Err(PubSubError::DimensionMismatch {
                expected: space.dims(),
                got: constraints.len(),
            });
        }
        for (i, c) in constraints.iter().enumerate() {
            if let Some(c) = c {
                if !space.valid_value(i, c.hi()) {
                    return Err(PubSubError::ValueOutOfDomain {
                        attr: space.attr(i).name().to_owned(),
                        value: c.hi(),
                        size: space.attr(i).size(),
                    });
                }
            }
        }
        if constraints.iter().all(Option::is_none) {
            return Err(PubSubError::UnconstrainedSubscription);
        }
        Ok(Subscription { constraints })
    }

    /// The constraint slots, one per dimension (`None` = wildcard).
    pub fn constraints(&self) -> &[Option<Constraint>] {
        &self.constraints
    }

    /// The constraint on dimension `i`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn constraint(&self, i: usize) -> Option<Constraint> {
        self.constraints[i]
    }

    /// Number of dimensions of the underlying space.
    pub fn dims(&self) -> usize {
        self.constraints.len()
    }

    /// Number of constrained dimensions.
    pub fn constrained_count(&self) -> usize {
        self.constraints.iter().flatten().count()
    }

    /// `true` iff the event satisfies every constraint (`e ∈ σ`, §3.2).
    pub fn matches(&self, event: &Event) -> bool {
        debug_assert_eq!(event.dims(), self.constraints.len());
        self.constraints
            .iter()
            .zip(event.values())
            .all(|(c, &v)| c.is_none_or(|c| c.admits(v)))
    }

    /// The lowest constrained dimension index. `None` only for the
    /// fully-wildcard shape, which [`Subscription::from_constraints`]
    /// rejects — so always `Some` for constructed subscriptions.
    pub fn first_constrained(&self) -> Option<usize> {
        self.constraints.iter().position(Option::is_some)
    }

    /// `true` iff every event matched by `other` is also matched by
    /// `self` (`other ⊆ self`): on each dimension, `self` is either a
    /// wildcard or a range enclosing `other`'s. This is the covering
    /// relation the store's subscription-aggregation layer uses to share
    /// one physical index entry among several logical subscriptions.
    pub fn covers(&self, other: &Subscription) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.constraints
            .iter()
            .zip(&other.constraints)
            .all(|(c, o)| match (c, o) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(c), Some(o)) => c.lo() <= o.lo() && o.hi() <= c.hi(),
            })
    }

    /// The dimension of the most selective constraint: the constrained `i`
    /// minimizing `r_i / |Ω_i|` (§4.2, Mapping 3). Ties break to the lowest
    /// index. Returns `None` for a fully-wildcard subscription.
    pub fn most_selective(&self, space: &EventSpace) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, c) in self.constraints.iter().enumerate() {
            let Some(c) = c else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let cb = self.constraints[b].expect("best is constrained");
                    // r_i/|Ω_i| < r_b/|Ω_b| ⇔ r_i·|Ω_b| < r_b·|Ω_i| exactly.
                    let lhs = u128::from(c.span()) * u128::from(space.attr(b).size());
                    let rhs = u128::from(cb.span()) * u128::from(space.attr(i).size());
                    if lhs < rhs {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// The selectivity `r_i / |Ω_i|` of dimension `i` (1.0 for wildcards).
    pub fn selectivity(&self, space: &EventSpace, i: usize) -> f64 {
        match self.constraints[i] {
            None => 1.0,
            Some(c) => c.span() as f64 / space.attr(i).size() as f64,
        }
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{{")?;
        let mut first = true;
        for (i, c) in self.constraints.iter().enumerate() {
            if let Some(c) = c {
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                write!(f, "a{i} {c}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Incremental construction of a [`Subscription`] by attribute name.
#[derive(Debug)]
pub struct SubscriptionBuilder<'a> {
    space: &'a EventSpace,
    constraints: Vec<Option<Constraint>>,
    error: Option<PubSubError>,
}

impl<'a> SubscriptionBuilder<'a> {
    /// Adds the range constraint `lo <= name <= hi`.
    ///
    /// # Errors
    ///
    /// Defers [`PubSubError::UnknownAttribute`], range and domain errors to
    /// [`SubscriptionBuilder::build`].
    pub fn range(mut self, name: &str, lo: u64, hi: u64) -> Result<Self, PubSubError> {
        self.apply(name, Constraint::range(lo, hi)?);
        Ok(self)
    }

    /// Adds the equality constraint `name == v`.
    pub fn eq(mut self, name: &str, v: u64) -> Self {
        self.apply(name, Constraint::eq(v));
        self
    }

    /// Adds a range constraint with real-valued bounds on a float-scaled
    /// attribute (see [`crate::AttributeDef::with_float_range`]). Bounds
    /// are quantized monotonically, so the constraint admits every value
    /// whose quantization falls inside the quantized range — exact up to
    /// one quantization cell.
    ///
    /// # Panics
    ///
    /// Panics if the attribute exists but has no float scale, or a bound
    /// is NaN (domain errors are deferred to [`SubscriptionBuilder::build`]).
    pub fn range_f64(mut self, name: &str, lo: f64, hi: f64) -> Result<Self, PubSubError> {
        match self.space.attr_index(name) {
            Some(i) => {
                let def = self.space.attr(i);
                let qlo = def.quantize_f64(lo);
                let qhi = def.quantize_f64(hi);
                self.constraints[i] = Some(Constraint::range(qlo, qhi)?);
            }
            None => {
                self.error.get_or_insert(PubSubError::UnknownAttribute {
                    name: name.to_owned(),
                });
            }
        }
        Ok(self)
    }

    /// Adds an equality constraint on the hash of a string value.
    pub fn eq_str(mut self, name: &str, v: &str) -> Self {
        match self.space.attr_index(name) {
            Some(i) => {
                let value = self.space.value_of_str(i, v);
                self.constraints[i] = Some(Constraint::eq(value));
            }
            None => {
                self.error.get_or_insert(PubSubError::UnknownAttribute {
                    name: name.to_owned(),
                });
            }
        }
        self
    }

    fn apply(&mut self, name: &str, c: Constraint) {
        match self.space.attr_index(name) {
            Some(i) => self.constraints[i] = Some(c),
            None => {
                self.error.get_or_insert(PubSubError::UnknownAttribute {
                    name: name.to_owned(),
                });
            }
        }
    }

    /// Finishes the subscription.
    ///
    /// # Errors
    ///
    /// Returns the first deferred error, or the validation errors of
    /// [`Subscription::from_constraints`].
    pub fn build(self) -> Result<Subscription, PubSubError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Subscription::from_constraints(self.space, self.constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;

    fn space() -> EventSpace {
        EventSpace::new(vec![
            AttributeDef::new("a", 100),
            AttributeDef::new("b", 1000),
            AttributeDef::new("c", 10),
        ])
    }

    #[test]
    fn constraint_basics() {
        let c = Constraint::range(3, 7).unwrap();
        assert_eq!(c.span(), 5);
        assert!(c.admits(3) && c.admits(7));
        assert!(!c.admits(2) && !c.admits(8));
        assert_eq!(Constraint::eq(4).span(), 1);
        assert_eq!(Constraint::eq(4).to_string(), "= 4");
        assert_eq!(c.to_string(), "∈ [3, 7]");
        assert!(Constraint::range(7, 3).is_err());
    }

    #[test]
    fn matching_with_wildcards() {
        let s = space();
        let sub = Subscription::builder(&s)
            .range("a", 10, 20)
            .unwrap()
            .eq("c", 5)
            .build()
            .unwrap();
        assert_eq!(sub.constrained_count(), 2);
        assert!(sub.matches(&Event::new_unchecked(vec![15, 999, 5])));
        assert!(!sub.matches(&Event::new_unchecked(vec![15, 999, 6])));
        assert!(!sub.matches(&Event::new_unchecked(vec![9, 0, 5])));
    }

    #[test]
    fn most_selective_uses_relative_width() {
        let s = space();
        // a: 50/100 = 0.5; b: 100/1000 = 0.1; c: wildcard.
        let sub = Subscription::builder(&s)
            .range("a", 0, 49)
            .unwrap()
            .range("b", 0, 99)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(sub.most_selective(&s), Some(1));
        // Equality on the small attribute c: 1/10 = 0.1 ties with b → lowest
        // index wins (b is dimension 1, c is dimension 2).
        let sub2 = Subscription::builder(&s)
            .range("b", 0, 99)
            .unwrap()
            .eq("c", 3)
            .build()
            .unwrap();
        assert_eq!(sub2.most_selective(&s), Some(1));
        // A strictly tighter c wins.
        let sub3 = Subscription::builder(&s)
            .range("b", 0, 199)
            .unwrap()
            .eq("c", 3)
            .build()
            .unwrap();
        assert_eq!(sub3.most_selective(&s), Some(2));
    }

    #[test]
    fn covering_relation() {
        let s = space();
        let wide = Subscription::builder(&s)
            .range("a", 10, 50)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&s)
            .range("a", 20, 30)
            .unwrap()
            .eq("c", 5)
            .build()
            .unwrap();
        // A wildcard dimension covers any constraint; a constrained one
        // never covers a wildcard.
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
        let shifted = Subscription::builder(&s)
            .range("a", 5, 30)
            .unwrap()
            .build()
            .unwrap();
        assert!(!wide.covers(&shifted));
        assert_eq!(wide.first_constrained(), Some(0));
        let late = Subscription::builder(&s).eq("c", 1).build().unwrap();
        assert_eq!(late.first_constrained(), Some(2));
    }

    #[test]
    fn unknown_attribute_deferred_to_build() {
        let s = space();
        let err = Subscription::builder(&s).eq("zz", 1).build().unwrap_err();
        assert_eq!(err, PubSubError::UnknownAttribute { name: "zz".into() });
    }

    #[test]
    fn out_of_domain_bound_rejected() {
        let s = space();
        let err = Subscription::builder(&s)
            .range("c", 0, 10)
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, PubSubError::ValueOutOfDomain { .. }));
    }

    #[test]
    fn fully_wildcard_rejected() {
        let s = space();
        let err = Subscription::from_constraints(&s, vec![None, None, None]).unwrap_err();
        assert_eq!(err, PubSubError::UnconstrainedSubscription);
    }

    #[test]
    fn string_equality() {
        let s = EventSpace::new(vec![AttributeDef::new("topic", 1 << 20)]);
        let sub = Subscription::builder(&s)
            .eq_str("topic", "alerts")
            .build()
            .unwrap();
        let v = s.value_of_str(0, "alerts");
        assert!(sub.matches(&Event::new_unchecked(vec![v])));
    }

    #[test]
    fn display_lists_constraints() {
        let s = space();
        let sub = Subscription::builder(&s)
            .range("a", 1, 2)
            .unwrap()
            .eq("c", 9)
            .build()
            .unwrap();
        assert_eq!(sub.to_string(), "σ{a0 ∈ [1, 2] ∧ a2 = 9}");
    }

    #[test]
    fn float_range_constraints_match_quantized_events() {
        let s = EventSpace::new(vec![
            AttributeDef::new("temp", 10_000).with_float_range(-40.0, 60.0),
            AttributeDef::new("room", 64),
        ]);
        let sub = Subscription::builder(&s)
            .range_f64("temp", 20.0, 25.0)
            .unwrap()
            .eq("room", 7)
            .build()
            .unwrap();
        let inside = Event::new_unchecked(vec![s.attr(0).quantize_f64(22.5), 7]);
        let below = Event::new_unchecked(vec![s.attr(0).quantize_f64(19.0), 7]);
        let above = Event::new_unchecked(vec![s.attr(0).quantize_f64(26.0), 7]);
        assert!(sub.matches(&inside));
        assert!(!sub.matches(&below));
        assert!(!sub.matches(&above));
    }

    #[test]
    fn sub_id_composition() {
        let id = SubId::compose(3, 9);
        assert_eq!(id.node(), 3);
        assert_eq!(id.to_string(), "s3.9");
    }
}

//! The pluggable matching-engine API.
//!
//! Rendezvous matching is the hot path of the whole system (§3.2), so the
//! store is generic over *how* matching is implemented: the classic
//! counting index ([`MatchIndex`]) is the reference, the flat sorted table
//! ([`SortedIndex`]) is the large-store specialist, and both are selected
//! at deployment time through
//! [`MatchEngineKind`](cbps_sim::MatchEngineKind) — the same knob pattern
//! as the heap-vs-wheel scheduler. Engines must produce identical match
//! sets; the differential suites enforce it.

use cbps_sim::MatchEngineKind;

use crate::event::Event;
use crate::index::MatchIndex;
use crate::sorted::SortedIndex;
use crate::space::EventSpace;
use crate::subscription::{SubId, Subscription};

/// The matching operations every engine provides.
///
/// `matches_into` is the one true entry point — buffer-reusing and
/// allocation-free at steady state. [`MatchEngine::matches`] is a
/// convenience wrapper for tests and examples.
pub trait MatchEngine {
    /// Inserts a subscription under `id`. Returns `false` (and leaves the
    /// engine unchanged) when `id` is already present.
    fn insert(&mut self, id: SubId, sub: Subscription) -> bool;

    /// Removes the subscription under `id`, returning it if present.
    fn remove(&mut self, id: SubId) -> Option<Subscription>;

    /// Writes all subscriptions matched by `event` into `out` (cleared
    /// first), in ascending id order.
    fn matches_into(&mut self, event: &Event, out: &mut Vec<SubId>);

    /// Number of indexed subscriptions.
    fn len(&self) -> usize;

    /// Returns some subscription matching `event` that satisfies `pred`,
    /// or `None` when there is none.
    ///
    /// Which of several acceptable subscriptions is returned is
    /// engine-specific but deterministic for a given operation history.
    /// Engines with a lazily scannable layout override this to stop at the
    /// first acceptable candidate instead of enumerating the full match
    /// set; the default falls back to [`MatchEngine::matches_into`]. The
    /// covering table's group search is the intended caller.
    fn find_match(&mut self, event: &Event, pred: &mut dyn FnMut(SubId) -> bool) -> Option<SubId> {
        let mut out = Vec::new();
        self.matches_into(event, &mut out);
        out.into_iter().find(|&id| pred(id))
    }

    /// `true` when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocating convenience form of [`MatchEngine::matches_into`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cbps::{AttributeDef, Event, EventSpace, MatchEngine, MatchIndex, SubId, Subscription};
    ///
    /// let space = EventSpace::new(vec![AttributeDef::new("x", 100)]);
    /// let mut engine = MatchIndex::new(&space);
    /// let sub = Subscription::builder(&space).range("x", 10, 20)?.build()?;
    /// engine.insert(SubId(1), sub);
    /// assert_eq!(engine.matches(&Event::new(&space, vec![15])?), vec![SubId(1)]);
    /// assert!(engine.matches(&Event::new(&space, vec![25])?).is_empty());
    /// # Ok::<(), cbps::PubSubError>(())
    /// ```
    fn matches(&mut self, event: &Event) -> Vec<SubId> {
        let mut out = Vec::new();
        self.matches_into(event, &mut out);
        out
    }
}

impl MatchEngine for MatchIndex {
    fn insert(&mut self, id: SubId, sub: Subscription) -> bool {
        MatchIndex::insert(self, id, sub)
    }

    fn remove(&mut self, id: SubId) -> Option<Subscription> {
        MatchIndex::remove(self, id)
    }

    fn matches_into(&mut self, event: &Event, out: &mut Vec<SubId>) {
        MatchIndex::matches_into(self, event, out)
    }

    fn len(&self) -> usize {
        MatchIndex::len(self)
    }
}

impl MatchEngine for SortedIndex {
    fn insert(&mut self, id: SubId, sub: Subscription) -> bool {
        SortedIndex::insert(self, id, sub)
    }

    fn remove(&mut self, id: SubId) -> Option<Subscription> {
        SortedIndex::remove(self, id)
    }

    fn matches_into(&mut self, event: &Event, out: &mut Vec<SubId>) {
        SortedIndex::matches_into(self, event, out)
    }

    fn len(&self) -> usize {
        SortedIndex::len(self)
    }
}

/// Runtime-selected engine, one variant per [`MatchEngineKind`].
#[derive(Clone, Debug)]
pub enum AnyMatchEngine {
    /// The counting index (reference implementation).
    Counting(MatchIndex),
    /// The flat sorted table.
    Sorted(SortedIndex),
}

impl AnyMatchEngine {
    /// Creates an empty engine of the given kind over `space`.
    pub fn new(kind: MatchEngineKind, space: &EventSpace) -> Self {
        match kind {
            MatchEngineKind::Sorted => AnyMatchEngine::Sorted(SortedIndex::new(space)),
            _ => AnyMatchEngine::Counting(MatchIndex::new(space)),
        }
    }

    /// The kind this engine was created as.
    pub fn kind(&self) -> MatchEngineKind {
        match self {
            AnyMatchEngine::Counting(_) => MatchEngineKind::Counting,
            AnyMatchEngine::Sorted(_) => MatchEngineKind::Sorted,
        }
    }

    /// Grows engine-internal scratch to its steady-state size so matching
    /// never reallocates afterwards. The sorted engine keeps no per-match
    /// scratch; the counting engine's is bounded by its slot count.
    pub fn warm(&mut self) {
        match self {
            AnyMatchEngine::Counting(e) => e.warm(),
            AnyMatchEngine::Sorted(_) => {}
        }
    }
}

impl MatchEngine for AnyMatchEngine {
    fn insert(&mut self, id: SubId, sub: Subscription) -> bool {
        match self {
            AnyMatchEngine::Counting(e) => e.insert(id, sub),
            AnyMatchEngine::Sorted(e) => e.insert(id, sub),
        }
    }

    fn remove(&mut self, id: SubId) -> Option<Subscription> {
        match self {
            AnyMatchEngine::Counting(e) => e.remove(id),
            AnyMatchEngine::Sorted(e) => e.remove(id),
        }
    }

    fn matches_into(&mut self, event: &Event, out: &mut Vec<SubId>) {
        match self {
            AnyMatchEngine::Counting(e) => MatchIndex::matches_into(e, event, out),
            AnyMatchEngine::Sorted(e) => SortedIndex::matches_into(e, event, out),
        }
    }

    fn find_match(&mut self, event: &Event, pred: &mut dyn FnMut(SubId) -> bool) -> Option<SubId> {
        match self {
            AnyMatchEngine::Counting(e) => MatchEngine::find_match(e, event, pred),
            AnyMatchEngine::Sorted(e) => SortedIndex::find_match_where(e, event, pred),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyMatchEngine::Counting(e) => MatchIndex::len(e),
            AnyMatchEngine::Sorted(e) => SortedIndex::len(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;

    #[test]
    fn any_engine_dispatches_per_kind() {
        let space = EventSpace::new(vec![AttributeDef::new("x", 100)]);
        for kind in [MatchEngineKind::Counting, MatchEngineKind::Sorted] {
            let mut engine = AnyMatchEngine::new(kind, &space);
            assert_eq!(engine.kind(), kind);
            assert!(engine.is_empty());
            let sub = Subscription::builder(&space)
                .range("x", 10, 20)
                .unwrap()
                .build()
                .unwrap();
            assert!(engine.insert(SubId(1), sub.clone()));
            assert_eq!(engine.len(), 1);
            assert_eq!(
                engine.matches(&Event::new_unchecked(vec![15])),
                vec![SubId(1)]
            );
            assert_eq!(engine.remove(SubId(1)), Some(sub));
            assert!(engine.is_empty());
        }
    }
}

//! A flat, cache-friendly matching engine for very large stores.
//!
//! [`MatchIndex`](crate::MatchIndex) (the counting algorithm) walks
//! per-dimension bucket lists — `Vec<Vec<Vec<u32>>>` — whose pointer
//! chasing dominates once a rendezvous node holds 10^5–10^6 subscriptions.
//! [`SortedIndex`] replaces it with struct-of-arrays storage:
//!
//! * **Row store.** Every subscription is one *row* in flat parallel
//!   arrays (`lo`/`hi` per dimension, a constrained-dimension bitmask, the
//!   id). Candidate verification is sequential loads, no pointers.
//! * **Span-class segments.** Rows are grouped by `(first constrained
//!   dimension d, ⌊log2 span⌋)` and kept sorted by their lower bound on
//!   `d`. For an event value `v`, every constraint in a class-`k` segment
//!   that admits `v` has `lo ∈ [v − (2^(k+1) − 2), v]`: one binary search
//!   plus a backward scan with early exit visits only true candidates
//!   (within a factor ≈ 2).
//! * **Sorted runs.** Each segment holds a logarithmic stack of sorted
//!   runs (binary-counter merging). Inserts go to a small unsorted
//!   staging tail that is batch-sorted and merged, so a subscribe costs
//!   O(1) amortized array appends plus O(log n) amortized merge work —
//!   never an O(n) in-place shift.
//! * **Deferred cleanup.** `remove` only tombstones a row; merges and an
//!   occasional compaction sweep reclaim dead rows in bulk, keeping
//!   unsubscription O(1) (the counting index's eager `swap_remove` is its
//!   insert-time mirror image).
//!
//! The engine is limited to event spaces of at most 64 dimensions (the
//! constrained-dimension bitmask); deployments select it through
//! [`MatchEngineKind`](cbps_sim::MatchEngineKind), which validates that
//! bound. Match sets are identical to the counting index by construction
//! and checked by the differential suites.

use std::collections::{BTreeMap, HashMap};

use crate::event::Event;
use crate::space::EventSpace;
use crate::subscription::{Constraint, SubId, Subscription};

/// Rows buffered unsorted before being batch-merged into segment runs.
/// Queries scan the staging tail linearly, so it stays cache-sized.
const STAGING_MAX: usize = 1024;

/// One sorted run of a segment: rows ordered by their lower bound on the
/// segment's dimension. `lo`/`hi` duplicate the segment-dimension bounds
/// so the scan stays inside two hot arrays until a candidate survives.
#[derive(Clone, Debug, Default)]
struct Run {
    lo: Vec<u64>,
    hi: Vec<u64>,
    row: Vec<u32>,
}

impl Run {
    fn len(&self) -> usize {
        self.row.len()
    }
}

/// A `(first constrained dimension, span class)` segment: a stack of
/// sorted runs merged binary-counter style.
#[derive(Clone, Debug, Default)]
struct Segment {
    runs: Vec<Run>,
}

/// Flat sorted-table matching engine (see the module docs).
#[derive(Clone, Debug)]
pub struct SortedIndex {
    space: EventSpace,
    dims: usize,
    /// Flat row store: `lo[row * dims + d]` / `hi[...]` are the bounds on
    /// dimension `d` (unconstrained dimensions hold `0..=u64::MAX`).
    lo: Vec<u64>,
    hi: Vec<u64>,
    /// Bit `d` set iff the row constrains dimension `d`.
    mask: Vec<u64>,
    ids: Vec<SubId>,
    /// Tombstones: dead rows are skipped by queries and reclaimed lazily.
    dead: Vec<bool>,
    free: Vec<u32>,
    by_id: HashMap<SubId, u32>,
    /// Ordered by `(dimension, span class)` so scans visit segments in a
    /// deterministic order — `find_match_where`'s early exit depends on it.
    segments: BTreeMap<(u32, u32), Segment>,
    staging: Vec<u32>,
    dead_rows: usize,
}

impl SortedIndex {
    /// Creates an empty index for the given space.
    ///
    /// # Panics
    ///
    /// Panics when the space has more than 64 dimensions (the row bitmask
    /// width); [`PubSubNetworkBuilder`](crate::PubSubNetworkBuilder)
    /// surfaces this as a [`ConfigError`](crate::ConfigError) instead.
    pub fn new(space: &EventSpace) -> Self {
        assert!(
            space.dims() <= 64,
            "SortedIndex supports at most 64 dimensions, space has {}",
            space.dims()
        );
        SortedIndex {
            space: space.clone(),
            dims: space.dims(),
            lo: Vec::new(),
            hi: Vec::new(),
            mask: Vec::new(),
            ids: Vec::new(),
            dead: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            segments: BTreeMap::new(),
            staging: Vec::new(),
            dead_rows: 0,
        }
    }

    /// Number of indexed subscriptions.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// `true` iff `id` is indexed.
    pub fn contains(&self, id: SubId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Inserts a subscription under `id`. Returns `false` (and leaves the
    /// index unchanged) when `id` is already present.
    pub fn insert(&mut self, id: SubId, sub: Subscription) -> bool {
        if self.by_id.contains_key(&id) {
            return false;
        }
        debug_assert_eq!(sub.dims(), self.dims);
        let row = match self.free.pop() {
            Some(r) => r,
            None => {
                let r = self.ids.len() as u32;
                self.lo.resize(self.lo.len() + self.dims, 0);
                self.hi.resize(self.hi.len() + self.dims, u64::MAX);
                self.mask.push(0);
                self.ids.push(SubId(0));
                self.dead.push(false);
                r
            }
        };
        let base = row as usize * self.dims;
        let mut mask = 0u64;
        for (d, c) in sub.constraints().iter().enumerate() {
            match c {
                Some(c) => {
                    self.lo[base + d] = c.lo();
                    self.hi[base + d] = c.hi();
                    mask |= 1 << d;
                }
                None => {
                    self.lo[base + d] = 0;
                    self.hi[base + d] = u64::MAX;
                }
            }
        }
        self.mask[row as usize] = mask;
        self.ids[row as usize] = id;
        self.dead[row as usize] = false;
        self.by_id.insert(id, row);
        self.staging.push(row);
        if self.staging.len() >= STAGING_MAX {
            self.flush_staging();
        }
        true
    }

    /// Removes the subscription under `id`, returning it if present.
    ///
    /// O(1): the row is only tombstoned; dead rows are reclaimed in bulk
    /// by run merges and by a compaction sweep once more than a quarter of
    /// the table is dead.
    pub fn remove(&mut self, id: SubId) -> Option<Subscription> {
        let row = self.by_id.remove(&id)?;
        let sub = self.reconstruct(row);
        self.dead[row as usize] = true;
        self.dead_rows += 1;
        if self.dead_rows * 4 > self.by_id.len() + 64 {
            self.compact();
        }
        Some(sub)
    }

    /// The subscription stored under `id` (rebuilt from the row store).
    pub fn get(&self, id: SubId) -> Option<Subscription> {
        self.by_id.get(&id).map(|&row| self.reconstruct(row))
    }

    /// Writes all subscriptions matched by `event` into `out` (cleared
    /// first), in ascending id order.
    pub fn matches_into(&self, event: &Event, out: &mut Vec<SubId>) {
        out.clear();
        for &row in &self.staging {
            let r = row as usize;
            if !self.dead[r] && self.admits(row, event, 0) {
                out.push(self.ids[r]);
            }
        }
        for (&(d, class), seg) in &self.segments {
            let v = event.value(d as usize);
            // Class-`k` spans are at most `2^(k+1) − 1`, so an admitting
            // constraint has `lo ≥ v − (2^(k+1) − 2)`.
            let lo_min = if class >= 63 {
                0
            } else {
                v.saturating_sub((1u64 << (class + 1)) - 2)
            };
            let skip = 1u64 << d;
            for run in &seg.runs {
                let end = run.lo.partition_point(|&lo| lo <= v);
                for j in (0..end).rev() {
                    if run.lo[j] < lo_min {
                        break;
                    }
                    if run.hi[j] < v {
                        continue;
                    }
                    let row = run.row[j];
                    if !self.dead[row as usize] && self.admits(row, event, skip) {
                        out.push(self.ids[row as usize]);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Returns the first indexed subscription (in deterministic scan
    /// order: segments by ascending dimension and descending span class,
    /// then the staging tail) that matches `event` *and* satisfies `pred`,
    /// without materializing the full match set.
    ///
    /// This is the covering table's group-search primitive: a lower-corner
    /// query usually finds an acceptable group within the first few
    /// candidates, so stopping there skips the full-enumeration plus sort
    /// that [`SortedIndex::matches_into`] pays. Within each dimension the
    /// broadest span classes are visited first because a covering
    /// representative has, by construction, at least its covered
    /// subscription's span; the unsorted staging tail — a linear scan with
    /// no such pruning — is deferred until the segments come up empty,
    /// which keeps the usual hit to a handful of probed candidates.
    pub fn find_match_where(
        &self,
        event: &Event,
        pred: &mut dyn FnMut(SubId) -> bool,
    ) -> Option<SubId> {
        for dim in 0..self.dims as u32 {
            for (&(d, class), seg) in self.segments.range((dim, 0)..=(dim, u32::MAX)).rev() {
                let v = event.value(d as usize);
                let lo_min = if class >= 63 {
                    0
                } else {
                    v.saturating_sub((1u64 << (class + 1)) - 2)
                };
                let skip = 1u64 << d;
                for run in &seg.runs {
                    // Endpoint guards dodge the binary search (and its
                    // cache misses) for runs entirely above or below `v` —
                    // the common case for the lower-corner probes this
                    // method serves.
                    let end = if run.len() == 0 || run.lo[0] > v {
                        continue;
                    } else if run.lo[run.len() - 1] <= v {
                        run.len()
                    } else {
                        run.lo.partition_point(|&lo| lo <= v)
                    };
                    for j in (0..end).rev() {
                        if run.lo[j] < lo_min {
                            break;
                        }
                        if run.hi[j] < v {
                            continue;
                        }
                        let row = run.row[j];
                        if !self.dead[row as usize]
                            && self.admits(row, event, skip)
                            && pred(self.ids[row as usize])
                        {
                            return Some(self.ids[row as usize]);
                        }
                    }
                }
            }
        }
        for &row in &self.staging {
            let r = row as usize;
            if !self.dead[r] && self.admits(row, event, 0) && pred(self.ids[r]) {
                return Some(self.ids[r]);
            }
        }
        None
    }

    /// `true` iff the row's constraints (minus the dimensions in `skip`,
    /// already checked by the segment scan) admit the event.
    #[inline]
    fn admits(&self, row: u32, event: &Event, skip: u64) -> bool {
        let base = row as usize * self.dims;
        let mut m = self.mask[row as usize] & !skip;
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            let v = event.value(d);
            if v < self.lo[base + d] || v > self.hi[base + d] {
                return false;
            }
            m &= m - 1;
        }
        true
    }

    /// The `(first constrained dimension, ⌊log2 span⌋)` segment key of a
    /// live row.
    fn seg_key(&self, row: u32) -> (u32, u32) {
        let m = self.mask[row as usize];
        debug_assert_ne!(m, 0, "subscriptions constrain at least one dimension");
        let d = m.trailing_zeros();
        let base = row as usize * self.dims + d as usize;
        let span = self.hi[base] - self.lo[base] + 1;
        (d, 63 - span.leading_zeros())
    }

    fn reconstruct(&self, row: u32) -> Subscription {
        let base = row as usize * self.dims;
        let constraints = (0..self.dims)
            .map(|d| {
                if self.mask[row as usize] & (1 << d) != 0 {
                    Some(
                        Constraint::range(self.lo[base + d], self.hi[base + d])
                            .expect("stored bounds are ordered"),
                    )
                } else {
                    None
                }
            })
            .collect();
        Subscription::from_constraints(&self.space, constraints).expect("stored rows are valid")
    }

    fn release_row(&mut self, row: u32) {
        debug_assert!(self.dead[row as usize]);
        self.dead[row as usize] = false;
        self.dead_rows -= 1;
        self.free.push(row);
    }

    /// Sorts the staging tail into one run per segment, then restores the
    /// binary-counter invariant (each run at least as long as the one
    /// stacked on top) with O(S + B) two-pointer merges.
    fn flush_staging(&mut self) {
        let staged = std::mem::take(&mut self.staging);
        let mut groups: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        let mut released: Vec<u32> = Vec::new();
        for row in staged {
            if self.dead[row as usize] {
                released.push(row);
            } else {
                groups.entry(self.seg_key(row)).or_default().push(row);
            }
        }
        for (key, mut rows) in groups {
            let dims = self.dims;
            let d = key.0 as usize;
            rows.sort_unstable_by_key(|&r| self.lo[r as usize * dims + d]);
            let mut run = Run::default();
            for r in rows {
                let base = r as usize * dims + d;
                run.lo.push(self.lo[base]);
                run.hi.push(self.hi[base]);
                run.row.push(r);
            }
            let seg = self.segments.entry(key).or_default();
            seg.runs.push(run);
            while seg.runs.len() >= 2
                && seg.runs[seg.runs.len() - 2].len() <= seg.runs[seg.runs.len() - 1].len()
            {
                let b = seg.runs.pop().expect("checked len");
                let a = seg.runs.pop().expect("checked len");
                seg.runs.push(merge_runs(a, b, &self.dead, &mut released));
            }
        }
        for row in released {
            self.release_row(row);
        }
    }

    /// Collapses every segment to a single dead-free run and drops dead
    /// staging rows. O(n); triggered when over a quarter of rows are dead.
    fn compact(&mut self) {
        let mut released: Vec<u32> = Vec::new();
        {
            let dead = &self.dead;
            self.staging.retain(|&row| {
                if dead[row as usize] {
                    released.push(row);
                    false
                } else {
                    true
                }
            });
        }
        for seg in self.segments.values_mut() {
            while seg.runs.len() >= 2 {
                let b = seg.runs.pop().expect("checked len");
                let a = seg.runs.pop().expect("checked len");
                seg.runs.push(merge_runs(a, b, &self.dead, &mut released));
            }
            if let Some(run) = seg.runs.last_mut() {
                if run.row.iter().any(|&r| self.dead[r as usize]) {
                    let mut clean = Run::default();
                    for j in 0..run.len() {
                        if self.dead[run.row[j] as usize] {
                            released.push(run.row[j]);
                        } else {
                            clean.lo.push(run.lo[j]);
                            clean.hi.push(run.hi[j]);
                            clean.row.push(run.row[j]);
                        }
                    }
                    *run = clean;
                }
            }
        }
        self.segments
            .retain(|_, seg| seg.runs.iter().any(|r| r.len() > 0));
        for row in released {
            self.release_row(row);
        }
    }
}

/// Merges two lo-sorted runs, dropping dead rows along the way (their row
/// indices are pushed to `released` for reclamation by the caller).
fn merge_runs(a: Run, b: Run, dead: &[bool], released: &mut Vec<u32>) -> Run {
    let mut out = Run {
        lo: Vec::with_capacity(a.len() + b.len()),
        hi: Vec::with_capacity(a.len() + b.len()),
        row: Vec::with_capacity(a.len() + b.len()),
    };
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a.lo[i] <= b.lo[j]);
        let (run, k) = if take_a {
            let k = i;
            i += 1;
            (&a, k)
        } else {
            let k = j;
            j += 1;
            (&b, k)
        };
        if dead[run.row[k] as usize] {
            released.push(run.row[k]);
        } else {
            out.lo.push(run.lo[k]);
            out.hi.push(run.hi[k]);
            out.row.push(run.row[k]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;
    use cbps_rng::Rng;

    fn space() -> EventSpace {
        EventSpace::new(vec![
            AttributeDef::new("x", 1000),
            AttributeDef::new("y", 1000),
            AttributeDef::new("z", 10),
        ])
    }

    fn brute_force(live: &[(u64, Subscription)], e: &Event) -> Vec<SubId> {
        let mut out: Vec<SubId> = live
            .iter()
            .filter(|(_, s)| s.matches(e))
            .map(|&(id, _)| SubId(id))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn insert_match_remove_roundtrip() {
        let s = space();
        let mut idx = SortedIndex::new(&s);
        let sub = Subscription::builder(&s)
            .range("x", 100, 200)
            .unwrap()
            .eq("z", 5)
            .build()
            .unwrap();
        assert!(idx.insert(SubId(1), sub.clone()));
        assert!(!idx.insert(SubId(1), sub.clone()));
        assert_eq!(idx.len(), 1);
        assert!(idx.contains(SubId(1)));
        assert_eq!(idx.get(SubId(1)), Some(sub.clone()));

        let mut out = Vec::new();
        idx.matches_into(&Event::new_unchecked(vec![150, 0, 5]), &mut out);
        assert_eq!(out, vec![SubId(1)]);
        idx.matches_into(&Event::new_unchecked(vec![150, 0, 6]), &mut out);
        assert!(out.is_empty());

        assert_eq!(idx.remove(SubId(1)), Some(sub));
        assert!(idx.remove(SubId(1)).is_none());
        idx.matches_into(&Event::new_unchecked(vec![150, 0, 5]), &mut out);
        assert!(out.is_empty());
        assert!(idx.is_empty());
    }

    /// Random churn at a size that forces many staging flushes, run
    /// merges, and compactions; matching must equal brute force at every
    /// probe point.
    #[test]
    fn differential_under_churn() {
        let mut rng = Rng::seed_from_u64(0x50e7_ed1d);
        let s = space();
        let mut idx = SortedIndex::new(&s);
        let mut live: Vec<(u64, Subscription)> = Vec::new();
        let mut next_id = 0u64;
        let mut out = Vec::new();
        for step in 0..12_000 {
            if live.is_empty() || rng.gen_bool(0.55) {
                let xlo = rng.gen_range(0u64..1000);
                let xw = rng.gen_range(0u64..500);
                let mut b = Subscription::builder(&s)
                    .range("x", xlo, (xlo + xw).min(999))
                    .unwrap();
                if rng.gen_bool(0.5) {
                    b = b.eq("z", rng.gen_range(0u64..10));
                }
                let sub = b.build().unwrap();
                assert!(idx.insert(SubId(next_id), sub.clone()));
                live.push((next_id, sub));
                next_id += 1;
            } else {
                let k = rng.gen_range(0u64..live.len() as u64) as usize;
                let (id, sub) = live.swap_remove(k);
                assert_eq!(idx.remove(SubId(id)), Some(sub));
            }
            if step % 7 == 0 {
                let e = Event::new_unchecked(vec![
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..10),
                ]);
                idx.matches_into(&e, &mut out);
                assert_eq!(out, brute_force(&live, &e), "step {step}");
            }
        }
        assert_eq!(idx.len(), live.len());
    }

    /// Wildcard-heavy subscriptions land in segments keyed by their first
    /// constrained dimension, including dimensions past the first.
    #[test]
    fn wildcard_first_dimensions() {
        let s = space();
        let mut idx = SortedIndex::new(&s);
        let sub = Subscription::builder(&s).eq("z", 3).build().unwrap();
        idx.insert(SubId(7), sub);
        // Force the row out of staging so the segment path is exercised.
        for i in 0..STAGING_MAX as u64 {
            let filler = Subscription::builder(&s)
                .range("y", 0, i % 1000)
                .unwrap()
                .build()
                .unwrap();
            idx.insert(SubId(1000 + i), filler);
        }
        let mut out = Vec::new();
        idx.matches_into(&Event::new_unchecked(vec![999, 1, 3]), &mut out);
        assert!(out.contains(&SubId(7)));
        idx.matches_into(&Event::new_unchecked(vec![999, 1, 4]), &mut out);
        assert!(!out.contains(&SubId(7)));
    }

    #[test]
    #[should_panic(expected = "at most 64 dimensions")]
    fn too_many_dimensions_rejected() {
        let attrs = (0..65)
            .map(|i| AttributeDef::new(format!("a{i}"), 10))
            .collect();
        let _ = SortedIndex::new(&EventSpace::new(attrs));
    }
}

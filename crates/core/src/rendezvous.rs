//! Load-adaptive rendezvous: an online split/replication layer over the
//! static ak-mapping.
//!
//! The paper's mappings are **stateless**: Zipf-skewed attributes therefore
//! concentrate subscriptions and publications on a handful of rendezvous
//! keys, and the nodes covering them melt while the rest of the ring idles.
//! [`RendezvousPolicy`] wraps the base [`AkMapping`] with a small online
//! table of *split entries*. Each entry names one hot coverage arc `A =
//! (a, b]` (the arc owned by an overloaded node) and `G` *mirror arcs* —
//! copies of `A` shifted by `j · 2^m/(G+1)` around the ring for `j ∈
//! 1..=G`. While an entry is live:
//!
//! - a subscription whose rendezvous keys intersect `A` is additionally
//!   (and eventually *instead*) homed on the image of that intersection in
//!   **one** deterministically assigned mirror arc (subgroup splitting);
//! - a publication whose keys intersect `A` fans out to the images in
//!   **all** `G` mirror arcs, so it meets every subgroup.
//!
//! Because the assignment is a pure function of the subscription id, a
//! publication's expanded key set always covers every key set any live
//! subscription was stored under — the match-anywhere invariant of
//! ak-mappings (`EK(e) ∩ SK(σ) ≠ ∅`) is preserved and the **delivered
//! sets are byte-identical to the static mapping**, which ci.sh checks on
//! every run.
//!
//! Entries move through a five-phase lifecycle, advanced by the network's
//! control loop one step per control interval (default 10 s, far above the
//! network's worst-case routing delay, so every in-flight message from the
//! previous phase has landed before the next transition):
//!
//! | phase | new subs | publications | stored state |
//! |---|---|---|---|
//! | `Expanding` | base + mirror | base + all mirrors | at base |
//! | `Draining` | base + mirror | base + all mirrors | migrating to mirrors |
//! | `Split` | mirror only | all mirrors only | at mirrors |
//! | `Merging` | base + mirror | base + all mirrors | at mirrors |
//! | `MergeDraining` | base + mirror | base + all mirrors | copying back |
//!
//! The mode knob (`--rendezvous static|adaptive`) defaults to `Static`,
//! which bypasses the table entirely — the static paths stay bit-identical
//! and allocation-free.

use std::sync::RwLock;

use cbps_overlay::{Key, KeyRange, KeyRangeSet, KeySpace};
use cbps_sim::{SimDuration, SimTime};

use crate::event::Event;
use crate::mapping::AkMapping;
use crate::subscription::{SubId, Subscription};

/// Whether the rendezvous layer adapts to load (the `--rendezvous` knob).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RendezvousMode {
    /// The paper's stateless mapping; never splits. The default — every
    /// recorded baseline runs this mode byte-identically.
    #[default]
    Static,
    /// Online hotspot detection + subgroup splitting. Delivered sets stay
    /// identical to `Static`; only load placement changes.
    Adaptive,
}

impl RendezvousMode {
    /// Parses a command-line name (`static` | `adaptive`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(RendezvousMode::Static),
            "adaptive" => Some(RendezvousMode::Adaptive),
            _ => None,
        }
    }

    /// The command-line name.
    pub fn name(self) -> &'static str {
        match self {
            RendezvousMode::Static => "static",
            RendezvousMode::Adaptive => "adaptive",
        }
    }
}

/// Tuning of the adaptive policy (all defaults deliberately conservative).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RendezvousParams {
    /// Number of mirror arcs `G` a hot arc splits into.
    pub groups: u32,
    /// Control-loop period; also the per-phase grace interval. Must stay
    /// well above the network's worst-case routing delay so phase
    /// transitions never race in-flight messages.
    pub interval: SimDuration,
    /// A node is hot when its per-interval work exceeds `split_factor`
    /// times the live-node mean.
    pub split_factor: u64,
    /// ... and exceeds this absolute floor (ignore idle-network noise).
    pub min_split_work: u64,
    /// An entry merges back after this many consecutive quiet intervals
    /// on its mirror arcs.
    pub merge_after_quiet: u32,
    /// Cap on concurrently live split entries (slot bitmask bound: 64).
    pub max_live_splits: usize,
}

impl Default for RendezvousParams {
    fn default() -> Self {
        RendezvousParams {
            groups: 3,
            interval: SimDuration::from_secs(10),
            split_factor: 4,
            min_split_work: 100,
            merge_after_quiet: 3,
            max_live_splits: 8,
        }
    }
}

/// Lifecycle phase of one split entry (see the module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitPhase {
    /// Publications already fan out to the mirrors; stored subscriptions
    /// still live at the base arc.
    Expanding,
    /// The migrate sweep has copied stored subscriptions to the mirrors;
    /// base copies linger one more interval for in-flight publications.
    Draining,
    /// Steady split state: the base arc is fully vacated.
    Split,
    /// Merge decided: publications target base + mirrors again.
    Merging,
    /// The copy-back sweep has restored base copies; mirror copies linger
    /// one more interval, after which the entry is dropped.
    MergeDraining,
}

/// One live split: a hot base arc, its mirror geometry and phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitEntry {
    /// Base arc `(start, end]` — the hot node's coverage when split.
    pub start: Key,
    /// Base arc end (the hot node's own key).
    pub end: Key,
    /// Bit index in [`crate::StoredSub::subgroups`]; unique among live
    /// entries.
    pub slot: u8,
    /// Mirror spacing: mirror `j` is the base arc shifted by `j * offset`.
    pub offset: u64,
    /// Number of mirrors `G`.
    pub groups: u32,
    /// Current lifecycle phase.
    pub phase: SplitPhase,
    /// Consecutive quiet control intervals observed (merge trigger).
    pub quiet_steps: u32,
}

impl SplitEntry {
    /// The image of the base arc in mirror `j` (1-based).
    fn mirror_arc(&self, space: KeySpace, j: u32) -> (Key, Key) {
        let d = self.offset * u64::from(j);
        (space.add(self.start, d), space.add(self.end, d))
    }

    /// All arcs of the entry's orbit: base plus every mirror.
    fn orbit(&self, space: KeySpace) -> impl Iterator<Item = (Key, Key)> + '_ {
        (0..=self.groups).map(move |j| self.mirror_arc(space, j))
    }

    /// `true` when any orbit arc of `self` intersects any orbit arc of
    /// `other` (used to keep live entries geometrically independent).
    fn orbit_overlaps(&self, space: KeySpace, other: &SplitEntry) -> bool {
        self.orbit(space)
            .any(|a| other.orbit(space).any(|b| arcs_intersect(space, a, b)))
    }
}

/// `true` when circular arcs `(a.0, a.1]` and `(b.0, b.1]` share a key.
fn arcs_intersect(space: KeySpace, a: (Key, Key), b: (Key, Key)) -> bool {
    space.in_arc_oc(a.1, b.0, b.1) || space.in_arc_oc(b.1, a.0, a.1)
}

/// The set `{k + delta | k ∈ set}` (every range shifted clockwise).
pub fn shift_set(space: KeySpace, set: &KeyRangeSet, delta: u64) -> KeyRangeSet {
    let mut out = KeyRangeSet::new();
    for r in set.iter_ranges(space) {
        out.insert_range(
            space,
            KeyRange::new(space.add(r.start(), delta), space.add(r.end(), delta)),
        );
    }
    out
}

/// The mirror a subscription is assigned to (1-based, in `1..=groups`): a
/// pure function of the id, so every node — and every re-issue of the same
/// subscription — agrees without coordination.
pub fn assign_group(id: SubId, groups: u32) -> u32 {
    // splitmix64 finalizer: decorrelates the group from the id's
    // node/sequence structure.
    let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % u64::from(groups)) as u32 + 1
}

/// A store sweep the control loop asks rendezvous-side nodes to run at a
/// phase transition (see [`crate::PubSubNode::rendezvous_sweep`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepOp {
    /// What the sweep does.
    pub kind: SweepKind,
    /// The entry geometry the sweep operates on (phase as of dispatch).
    pub entry: SplitEntry,
}

/// The four store sweeps of the entry lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepKind {
    /// `Expanding → Draining`: copy base-arc subscriptions to their
    /// assigned mirrors (runs at nodes covering the base arc).
    Migrate,
    /// `Draining → Split`: purge base copies that are no longer needed
    /// anywhere in the node's coverage.
    PurgeBase,
    /// `Merging → MergeDraining`: copy mirror-homed subscriptions back to
    /// the base arc (runs at nodes covering the mirror arcs).
    CopyBack,
    /// entry drop: purge mirror copies, clear the slot bit on records
    /// that stay resident for other reasons.
    PurgeMirror,
}

/// What one control step decided (sweeps to run + counter deltas).
#[derive(Clone, Debug, Default)]
pub struct ControlOutcome {
    /// Sweeps to execute on the nodes covering each op's arcs.
    pub sweeps: Vec<SweepOp>,
    /// Split entries created this step.
    pub splits: u64,
    /// Entries that began merging this step.
    pub merges: u64,
}

impl ControlOutcome {
    /// `true` when the step changed nothing.
    pub fn is_empty(&self) -> bool {
        self.sweeps.is_empty() && self.splits == 0 && self.merges == 0
    }
}

/// Per-node load sample the control loop feeds the policy: work done in
/// the last interval plus the node's current coverage arc.
#[derive(Clone, Copy, Debug)]
pub struct LoadSample {
    /// Work units (publications processed + matches produced) this node
    /// performed during the last control interval.
    pub window: u64,
    /// Coverage arc start (the predecessor's key).
    pub arc_start: Key,
    /// Coverage arc end (the node's own key).
    pub arc_end: Key,
}

#[derive(Debug, Default)]
struct SplitTable {
    entries: Vec<SplitEntry>,
    /// Bitmask of slot indices currently assigned to live entries.
    used_slots: u64,
    splits: u64,
    merges: u64,
}

/// The dynamic rendezvous layer: mode, tuning and the live split table.
///
/// Shared by every node through [`crate::PubSubConfig`]; nodes only read
/// the table (on the subscribe/publish paths and during sweeps), the
/// network's control loop is the only writer and runs strictly between
/// engine segments — so reads never block and the table every node sees
/// within one segment is constant, keeping sharded runs deterministic.
#[derive(Debug)]
pub struct RendezvousPolicy {
    mode: RendezvousMode,
    params: RendezvousParams,
    table: RwLock<SplitTable>,
}

impl Default for RendezvousPolicy {
    fn default() -> Self {
        RendezvousPolicy::new(RendezvousMode::Static)
    }
}

impl Clone for RendezvousPolicy {
    fn clone(&self) -> Self {
        let table = self.table.read().expect("rendezvous table poisoned");
        RendezvousPolicy {
            mode: self.mode,
            params: self.params,
            table: RwLock::new(SplitTable {
                entries: table.entries.clone(),
                used_slots: table.used_slots,
                splits: table.splits,
                merges: table.merges,
            }),
        }
    }
}

impl RendezvousPolicy {
    /// A fresh policy (empty table) in the given mode with default tuning.
    pub fn new(mode: RendezvousMode) -> Self {
        RendezvousPolicy {
            mode,
            params: RendezvousParams::default(),
            table: RwLock::new(SplitTable::default()),
        }
    }

    /// Replaces the tuning parameters.
    pub fn with_params(mut self, params: RendezvousParams) -> Self {
        self.params = params;
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> RendezvousMode {
        self.mode
    }

    /// The tuning parameters.
    pub fn params(&self) -> &RendezvousParams {
        &self.params
    }

    /// `true` when the policy adapts (and the control loop must run).
    pub fn is_adaptive(&self) -> bool {
        self.mode == RendezvousMode::Adaptive
    }

    /// Totals so far: `(splits, merges)`.
    pub fn counters(&self) -> (u64, u64) {
        let t = self.table.read().expect("rendezvous table poisoned");
        (t.splits, t.merges)
    }

    /// Number of currently live split entries.
    pub fn live_splits(&self) -> usize {
        self.table
            .read()
            .expect("rendezvous table poisoned")
            .entries
            .len()
    }

    // ------------------------------------------------------------------
    // Mapping expansion (the node-side read paths).
    // ------------------------------------------------------------------

    /// `SK(σ)` under the current table, plus the subgroup-slot bitmask the
    /// stored record must carry. Static mode returns the base mapping
    /// untouched (no lock, no extra allocation).
    pub fn sub_targets(
        &self,
        mapping: &AkMapping,
        sub: &Subscription,
        id: SubId,
    ) -> (KeyRangeSet, u64) {
        let sk = mapping.sk(sub);
        if self.mode == RendezvousMode::Static {
            return (sk, 0);
        }
        let space = mapping.key_space();
        let table = self.table.read().expect("rendezvous table poisoned");
        if table.entries.is_empty() {
            return (sk, 0);
        }
        let mut out = sk.clone();
        let mut bits = 0u64;
        for e in &table.entries {
            let portion = sk.extract_arc_oc(space, e.start, e.end);
            if portion.is_empty() {
                continue;
            }
            bits |= 1 << e.slot;
            if e.phase == SplitPhase::Split {
                // Steady split state: the base arc is vacated, so the
                // record homes only on its assigned mirror.
                out = out.extract_arc_oc(space, e.end, e.start);
            }
            let j = assign_group(id, e.groups);
            out.union_with(&shift_set(space, &portion, e.offset * u64::from(j)));
        }
        (out, bits)
    }

    /// `EK(e)` under the current table: every base portion intersecting a
    /// live entry's arc expands to the images in **all** mirrors (so the
    /// publication meets every subgroup), and additionally keeps the base
    /// image except in the steady `Split` phase.
    pub fn pub_targets(&self, mapping: &AkMapping, event: &Event) -> KeyRangeSet {
        let ek = mapping.ek(event);
        if self.mode == RendezvousMode::Static {
            return ek;
        }
        let space = mapping.key_space();
        let table = self.table.read().expect("rendezvous table poisoned");
        if table.entries.is_empty() {
            return ek;
        }
        let mut out = ek.clone();
        for e in &table.entries {
            let portion = ek.extract_arc_oc(space, e.start, e.end);
            if portion.is_empty() {
                continue;
            }
            if e.phase == SplitPhase::Split {
                out = out.extract_arc_oc(space, e.end, e.start);
            }
            for j in 1..=e.groups {
                out.union_with(&shift_set(space, &portion, e.offset * u64::from(j)));
            }
        }
        out
    }

    /// Every key a record of `sub`/`id` may currently be stored under: the
    /// static `SK` plus the assigned image for every live entry, never
    /// dropping the base. Unsubscribes and lease refreshes target this
    /// superset (a removal routed to a key holding no copy is a no-op),
    /// and the purge sweeps use it as their keep test — a record is never
    /// purged from a node whose coverage intersects this set outside the
    /// arc being vacated.
    pub fn resident_targets(
        &self,
        mapping: &AkMapping,
        sub: &Subscription,
        id: SubId,
    ) -> (KeyRangeSet, u64) {
        let sk = mapping.sk(sub);
        if self.mode == RendezvousMode::Static {
            return (sk, 0);
        }
        let space = mapping.key_space();
        let table = self.table.read().expect("rendezvous table poisoned");
        if table.entries.is_empty() {
            return (sk, 0);
        }
        let mut out = sk.clone();
        let mut bits = 0u64;
        for e in &table.entries {
            let portion = sk.extract_arc_oc(space, e.start, e.end);
            if portion.is_empty() {
                continue;
            }
            bits |= 1 << e.slot;
            let j = assign_group(id, e.groups);
            out.union_with(&shift_set(space, &portion, e.offset * u64::from(j)));
        }
        (out, bits)
    }

    // ------------------------------------------------------------------
    // Control loop (the single writer).
    // ------------------------------------------------------------------

    /// One control step: advance every live entry one phase, decide
    /// merges from quiet mirror arcs, detect fresh hotspots and open new
    /// entries. Returns the sweeps the caller must run plus counter
    /// deltas. `loads` carries one sample per **live** node; `_now` is
    /// the control-step time (reserved for future age-based policies).
    ///
    /// Deterministic: decisions depend only on the samples and the table,
    /// so identical runs — any scheduler, any shard count — take
    /// identical decisions.
    pub fn control_step(
        &self,
        space: KeySpace,
        _now: SimTime,
        loads: &[LoadSample],
    ) -> ControlOutcome {
        debug_assert!(self.is_adaptive(), "control loop on a static policy");
        let mut table = self.table.write().expect("rendezvous table poisoned");
        let mut out = ControlOutcome::default();

        // 1. Advance in-flight lifecycles (sweeps run after this step
        //    returns, under the already-updated table).
        let mut dropped: Vec<SplitEntry> = Vec::new();
        let mut just_split: u64 = 0;
        table.entries.retain_mut(|e| match e.phase {
            SplitPhase::Expanding => {
                e.phase = SplitPhase::Draining;
                out.sweeps.push(SweepOp {
                    kind: SweepKind::Migrate,
                    entry: *e,
                });
                true
            }
            SplitPhase::Draining => {
                e.phase = SplitPhase::Split;
                just_split |= 1 << e.slot;
                out.sweeps.push(SweepOp {
                    kind: SweepKind::PurgeBase,
                    entry: *e,
                });
                true
            }
            SplitPhase::Merging => {
                e.phase = SplitPhase::MergeDraining;
                out.sweeps.push(SweepOp {
                    kind: SweepKind::CopyBack,
                    entry: *e,
                });
                true
            }
            SplitPhase::MergeDraining => {
                dropped.push(*e);
                false
            }
            SplitPhase::Split => true,
        });
        for e in dropped {
            table.used_slots &= !(1 << e.slot);
            out.sweeps.push(SweepOp {
                kind: SweepKind::PurgeMirror,
                entry: e,
            });
        }

        // 2. Merge decision: a steady split whose mirror arcs saw little
        //    work for several consecutive intervals folds back. Entries
        //    that reached Split only this step sit the decision out: their
        //    PurgeBase sweep has not run yet, and the load window they
        //    would be judged on predates the split.
        let quiet_bound = self.params.min_split_work;
        let merge_after = self.params.merge_after_quiet;
        let mut merged = 0u64;
        for e in table.entries.iter_mut() {
            if e.phase != SplitPhase::Split || just_split & (1 << e.slot) != 0 {
                continue;
            }
            let mirror_work: u64 = loads
                .iter()
                .filter(|l| {
                    (1..=e.groups).any(|j| {
                        arcs_intersect(space, (l.arc_start, l.arc_end), e.mirror_arc(space, j))
                    })
                })
                .map(|l| l.window)
                .sum();
            if mirror_work < quiet_bound {
                e.quiet_steps += 1;
            } else {
                e.quiet_steps = 0;
            }
            if e.quiet_steps >= merge_after {
                e.phase = SplitPhase::Merging;
                e.quiet_steps = 0;
                merged += 1;
            }
        }
        table.merges += merged;
        out.merges += merged;

        // 3. Split decision: nodes far above the mean of the *other*
        //    nodes (the hot node itself would inflate a global mean) open
        //    a new entry for their coverage arc, hottest first.
        if loads.len() < 2 {
            return out;
        }
        let total: u64 = loads.iter().map(|l| l.window).sum();
        let n = loads.len() as u64;
        let mut hot: Vec<&LoadSample> = loads
            .iter()
            .filter(|l| {
                l.window >= self.params.min_split_work
                    && l.window.saturating_mul(n - 1)
                        >= self.params.split_factor.saturating_mul(total - l.window)
            })
            .collect();
        hot.sort_by(|a, b| b.window.cmp(&a.window).then(a.arc_end.cmp(&b.arc_end)));
        let offset = space.size() / (u64::from(self.params.groups) + 1);
        for l in hot {
            if table.entries.len() >= self.params.max_live_splits {
                break;
            }
            let width = space.distance_cw(l.arc_start, l.arc_end);
            // Reject degenerate or too-wide arcs: the orbit arcs must be
            // pairwise disjoint, which needs width < mirror spacing.
            if width == 0 || width >= offset {
                continue;
            }
            let Some(slot) = (0..64).find(|s| table.used_slots & (1 << s) == 0) else {
                break;
            };
            let candidate = SplitEntry {
                start: l.arc_start,
                end: l.arc_end,
                slot,
                offset,
                groups: self.params.groups,
                phase: SplitPhase::Expanding,
                quiet_steps: 0,
            };
            if table
                .entries
                .iter()
                .any(|e| e.orbit_overlaps(space, &candidate))
            {
                continue;
            }
            table.used_slots |= 1 << slot;
            table.entries.push(candidate);
            table.splits += 1;
            out.splits += 1;
        }
        out
    }

    /// The arcs whose covering nodes must run `op` (base arc for the base
    /// sweeps, all mirror arcs for the mirror sweeps).
    pub fn sweep_targets(&self, space: KeySpace, op: &SweepOp) -> KeyRangeSet {
        let mut set = KeyRangeSet::new();
        match op.kind {
            SweepKind::Migrate | SweepKind::PurgeBase => {
                set.insert_range(
                    space,
                    KeyRange::new(space.add(op.entry.start, 1), op.entry.end),
                );
            }
            SweepKind::CopyBack | SweepKind::PurgeMirror => {
                for j in 1..=op.entry.groups {
                    let (a, b) = op.entry.mirror_arc(space, j);
                    set.insert_range(space, KeyRange::new(space.add(a, 1), b));
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingKind;
    use crate::space::EventSpace;
    use crate::subscription::Subscription;

    fn mapping() -> AkMapping {
        AkMapping::new(
            MappingKind::SelectiveAttribute,
            &EventSpace::paper_default(),
            KeySpace::new(13),
        )
    }

    fn adaptive_with_entry(phase: SplitPhase, space: KeySpace) -> RendezvousPolicy {
        let policy = RendezvousPolicy::new(RendezvousMode::Adaptive);
        {
            let mut t = policy.table.write().unwrap();
            t.entries.push(SplitEntry {
                start: space.key(100),
                end: space.key(160),
                slot: 0,
                offset: space.size() / 4,
                groups: 3,
                phase,
                quiet_steps: 0,
            });
            t.used_slots = 1;
        }
        policy
    }

    fn sub_in(space: &EventSpace, lo: u64, hi: u64) -> Subscription {
        Subscription::builder(space)
            .range("a0", lo, hi)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn mode_parse_roundtrip() {
        for mode in [RendezvousMode::Static, RendezvousMode::Adaptive] {
            assert_eq!(RendezvousMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(RendezvousMode::parse("dynamic"), None);
    }

    #[test]
    fn static_mode_is_transparent() {
        let m = mapping();
        let space = EventSpace::paper_default();
        let policy = RendezvousPolicy::new(RendezvousMode::Static);
        let sub = sub_in(&space, 0, 5_000);
        let (sk, bits) = policy.sub_targets(&m, &sub, SubId(7));
        assert_eq!(sk, m.sk(&sub));
        assert_eq!(bits, 0);
        let event = Event::new(&space, vec![100, 2, 3, 4]).unwrap();
        assert_eq!(policy.pub_targets(&m, &event), m.ek(&event));
    }

    #[test]
    fn assign_group_in_range_and_deterministic() {
        for raw in [0u64, 1, 77, u64::MAX] {
            let id = SubId(raw);
            let g = assign_group(id, 3);
            assert!((1..=3).contains(&g));
            assert_eq!(g, assign_group(id, 3));
        }
        // All groups are reachable.
        let seen: std::collections::HashSet<u32> =
            (0..64).map(|i| assign_group(SubId(i), 3)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn shift_preserves_count() {
        let space = KeySpace::new(13);
        let mut set = KeyRangeSet::new();
        set.insert_range(space, KeyRange::new(space.key(8100), space.key(20)));
        set.insert_range(space, KeyRange::new(space.key(500), space.key(600)));
        let shifted = shift_set(space, &set, 1000);
        assert_eq!(shifted.count(), set.count());
        assert!(shifted.contains(space.key(1500)));
        assert!(shifted.contains(space.key(8100 + 1000 - 8192 + 8192) /* wraps */));
    }

    /// The invariant that makes delivered sets provably unchanged: in every
    /// phase, a publication's expanded key set intersects a subscription's
    /// expanded key set whenever the static sets intersect.
    #[test]
    fn match_anywhere_invariant_every_phase() {
        let m = mapping();
        let es = EventSpace::paper_default();
        for phase in [
            SplitPhase::Expanding,
            SplitPhase::Draining,
            SplitPhase::Split,
            SplitPhase::Merging,
            SplitPhase::MergeDraining,
        ] {
            let policy = adaptive_with_entry(phase, m.key_space());
            let mut rng = cbps_rng::Rng::seed_from_u64(42);
            for i in 0..200 {
                let lo = rng.gen_range(0u64..900_000);
                let sub = sub_in(&es, lo, lo + 2_000);
                let id = SubId(i);
                let (sk, _) = policy.sub_targets(&m, &sub, id);
                let v = rng.gen_range(0u64..=1_000_000);
                let event = Event::new(&es, vec![v, 1, 2, 3]).unwrap();
                let ek = policy.pub_targets(&m, &event);
                let static_match = m.ek(&event).intersects(&m.sk(&sub));
                assert_eq!(
                    ek.intersects(&sk),
                    static_match,
                    "phase {phase:?}: expanded match must equal static match"
                );
                // Unsub/purge superset: resident targets cover the
                // subscription's current homes.
                let (resident, _) = policy.resident_targets(&m, &sub, id);
                for r in sk.iter_ranges(m.key_space()) {
                    assert!(
                        resident.contains(r.start()) && resident.contains(r.end()),
                        "resident targets must cover every current home"
                    );
                }
            }
        }
    }

    #[test]
    fn control_step_splits_hot_node_and_merges_when_quiet() {
        let space = KeySpace::new(13);
        let policy = RendezvousPolicy::new(RendezvousMode::Adaptive);
        let hot = LoadSample {
            window: 10_000,
            arc_start: space.key(100),
            arc_end: space.key(160),
        };
        let cool = |k: u64| LoadSample {
            window: 10,
            arc_start: space.key(k),
            arc_end: space.key(k + 60),
        };
        let loads = vec![hot, cool(3000), cool(5000), cool(7000)];
        let now = SimTime::ZERO;
        let out = policy.control_step(space, now, &loads);
        assert_eq!(out.splits, 1);
        assert!(out.sweeps.is_empty(), "new entries sweep on later steps");
        assert_eq!(policy.live_splits(), 1);

        // Next step: Expanding -> Draining emits the migrate sweep.
        let out = policy.control_step(space, now, &loads);
        assert_eq!(out.sweeps.len(), 1);
        assert_eq!(out.sweeps[0].kind, SweepKind::Migrate);
        // ... but no second split for the same (still hot) arc.
        assert_eq!(out.splits, 0, "orbit overlap guard blocks re-splitting");

        // Draining -> Split.
        let out = policy.control_step(space, now, &loads);
        assert_eq!(out.sweeps[0].kind, SweepKind::PurgeBase);

        // Quiet mirrors for merge_after_quiet steps trigger the merge.
        let quiet = vec![cool(3000), cool(5000), cool(7000)];
        let mut merged = false;
        for _ in 0..RendezvousParams::default().merge_after_quiet {
            merged = policy.control_step(space, now, &quiet).merges == 1;
        }
        assert!(merged, "quiet mirrors must fold the split back");
        // Merging -> MergeDraining (copy back), then drop (purge mirror).
        let out = policy.control_step(space, now, &quiet);
        assert_eq!(out.sweeps[0].kind, SweepKind::CopyBack);
        let out = policy.control_step(space, now, &quiet);
        assert_eq!(out.sweeps[0].kind, SweepKind::PurgeMirror);
        assert_eq!(policy.live_splits(), 0);
        assert_eq!(policy.counters(), (1, 1));
    }

    #[test]
    fn control_step_rejects_wide_and_overlapping_arcs() {
        let space = KeySpace::new(13);
        let policy = RendezvousPolicy::new(RendezvousMode::Adaptive);
        // Arc wider than the mirror spacing (2048 for G=3): rejected.
        let wide = LoadSample {
            window: 10_000,
            arc_start: space.key(0),
            arc_end: space.key(4000),
        };
        let out = policy.control_step(space, SimTime::ZERO, &[wide]);
        assert_eq!(out.splits, 0);
        assert_eq!(policy.live_splits(), 0);
    }

    #[test]
    fn clone_carries_table() {
        let space = KeySpace::new(13);
        let policy = adaptive_with_entry(SplitPhase::Split, space);
        let copy = policy.clone();
        assert_eq!(copy.live_splits(), 1);
        assert!(copy.is_adaptive());
    }
}

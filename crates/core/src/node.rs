//! The CB-pub/sub layer of one node (§4.1): computing the ak-mapping,
//! propagating subscriptions and events, storing and matching at
//! rendezvous, dispatching notifications (immediately, buffered, or via the
//! collecting protocol), and transferring state across membership changes.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use cbps_overlay::{Delivery, KeyRange, KeyRangeSet, OverlayApp, OverlayServices, Peer};
use cbps_sim::{MatchEngineKind, SimDuration, SimTime, Stage, TraceId, TrafficClass};

use crate::config::{NotifyMode, Primitive, PubSubConfig};
use crate::event::{Event, EventId};
use crate::msg::{CollectItem, DeliveredNote, NotifyBatch, NotifyItem, PubSubMsg, PubSubTimer};
use crate::rendezvous::{assign_group, shift_set, SweepKind, SweepOp};
use crate::store::{StoredSub, SubscriptionStore};
use crate::subscription::{SubId, Subscription};

/// Bound on the rendezvous-side event dedup window (events can arrive once
/// per target key under per-key unicast).
const SEEN_EVENTS_CAP: usize = 4096;

/// The overlay-neutral service surface the pub/sub logic is written
/// against — any overlay implementing [`OverlayServices`] can host it
/// (§3.1: the infrastructure "can use any overlay routing scheme").
pub type DynSvc<'x> = dyn OverlayServices<PubSubMsg, PubSubTimer> + 'x;

/// The pub/sub application state of one node: subscriber, publisher and
/// rendezvous roles combined (every node can play all three, §3.2).
#[derive(Debug)]
pub struct PubSubNode {
    cfg: Arc<PubSubConfig>,
    /// Rendezvous role: primary stored subscriptions.
    store: SubscriptionStore,
    /// Passive replicas held for ring predecessors (activated on failure).
    replicas: HashMap<SubId, StoredSub>,
    /// Subscriber role: subscriptions this node issued.
    my_subs: HashMap<SubId, StoredSub>,
    next_sub_seq: u32,
    next_event_seq: u32,
    delivered: Vec<DeliveredNote>,
    delivered_dedup: HashSet<(SubId, EventId)>,
    /// Rendezvous-side event dedup (per-key unicast can deliver the same
    /// event several times to one node).
    seen_events: HashSet<EventId>,
    seen_order: VecDeque<EventId>,
    /// Buffered notifications per subscriber (buffering optimization).
    notify_buffer: HashMap<Peer, Vec<NotifyItem>>,
    /// Collect items heading clockwise / counter-clockwise.
    collect_succ: Vec<CollectItem>,
    collect_pred: Vec<CollectItem>,
    /// Matches aggregated at this node as a range agent.
    agent_buffer: HashMap<Peer, Vec<NotifyItem>>,
    flush_armed: bool,
    /// Reused match-result buffer for `handle_publish` (hot path; see
    /// [`SubscriptionStore::match_event_into`]).
    match_buf: Vec<(SubId, Arc<StoredSub>)>,
    /// Cumulative rendezvous work (publications processed + matches
    /// produced) — the load signal the adaptive rendezvous control loop
    /// reads. A plain counter: maintaining it never changes behavior.
    work: u64,
}

impl PubSubNode {
    /// Creates the pub/sub state for one node under a shared configuration,
    /// using the default matching engine.
    pub fn new(cfg: Arc<PubSubConfig>) -> Self {
        PubSubNode::with_engine(cfg, MatchEngineKind::default())
    }

    /// Creates the pub/sub state for one node with an explicit matching
    /// engine (the configuration's covering flag applies either way).
    pub fn with_engine(cfg: Arc<PubSubConfig>, engine: MatchEngineKind) -> Self {
        let store = SubscriptionStore::with_options(&cfg.space, engine, cfg.covering);
        PubSubNode {
            cfg,
            store,
            replicas: HashMap::new(),
            my_subs: HashMap::new(),
            next_sub_seq: 0,
            next_event_seq: 0,
            delivered: Vec::new(),
            delivered_dedup: HashSet::new(),
            seen_events: HashSet::new(),
            seen_order: VecDeque::new(),
            notify_buffer: HashMap::new(),
            collect_succ: Vec::new(),
            collect_pred: Vec::new(),
            agent_buffer: HashMap::new(),
            flush_armed: false,
            match_buf: Vec::new(),
            work: 0,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &PubSubConfig {
        &self.cfg
    }

    /// The rendezvous store (primary subscriptions held for others).
    pub fn store(&self) -> &SubscriptionStore {
        &self.store
    }

    /// Number of passive replicas currently held.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Cumulative rendezvous work units (publications processed plus
    /// matches produced) since the node was created — the per-node load
    /// signal of the adaptive rendezvous layer.
    pub fn rendezvous_work(&self) -> u64 {
        self.work
    }

    /// Notifications received by this node as a subscriber, in arrival
    /// order (logically deduplicated).
    pub fn delivered(&self) -> &[DeliveredNote] {
        &self.delivered
    }

    /// Empties the delivered-notification log (and its dedup set) in
    /// place, retaining allocated capacity. Long-running drivers drain the
    /// log between measurement windows so it never grows unboundedly; the
    /// allocation audit relies on the retained capacity to keep
    /// steady-state deliveries heap-quiet.
    pub fn clear_delivered(&mut self) {
        self.delivered.clear();
        self.delivered_dedup.clear();
    }

    /// Subscriptions issued by this node that have not been unsubscribed.
    pub fn my_subscriptions(&self) -> impl Iterator<Item = (SubId, &Subscription)> {
        self.my_subs.iter().map(|(&id, s)| (id, &s.sub))
    }

    // ------------------------------------------------------------------
    // Application API (sub / pub / unsub), invoked through `app_call`.
    // ------------------------------------------------------------------

    /// `sub(σ)`: maps the subscription to its rendezvous keys and
    /// propagates it with the configured primitive. Returns the new id.
    pub fn subscribe(
        &mut self,
        sub: Subscription,
        ttl: Option<SimDuration>,
        svc: &mut DynSvc<'_>,
    ) -> SubId {
        let me = svc.me();
        let id = SubId::compose(me.idx, self.next_sub_seq);
        let trace = TraceId::for_subscription(me.idx, self.next_sub_seq);
        self.next_sub_seq += 1;
        svc.stage(trace, Stage::Subscribe, TrafficClass::SUBSCRIPTION);
        let (sk, subgroups) = self.cfg.rendezvous.sub_targets(&self.cfg.mapping, &sub, id);
        let expires = match ttl.or(self.cfg.default_ttl) {
            Some(d) => svc.now() + d,
            None => SimTime::MAX,
        };
        let stored = StoredSub {
            sub,
            subscriber: me,
            expires,
            sk: sk.clone(),
            trace,
            subgroups,
        };
        self.my_subs.insert(id, stored.clone());
        svc.metrics().add("requests.subscribe", 1);
        svc.metrics()
            .histogram_mut("keys.per-subscription")
            .record(sk.count());
        if self.cfg.lease_refresh && expires != SimTime::MAX {
            svc.arm_timer(
                expires.saturating_since(svc.now()) / 2,
                PubSubTimer::Refresh { id },
            );
        }
        self.propagate(
            &sk,
            TrafficClass::SUBSCRIPTION,
            PubSubMsg::Subscribe { id, stored },
            trace,
            svc,
        );
        id
    }

    /// Lease refresh: re-issue a still-wanted subscription with a renewed
    /// expiry and re-arm the half-lease timer. Unsubscribed or lapsed
    /// local records stop the cycle.
    fn refresh_lease(&mut self, id: SubId, svc: &mut DynSvc<'_>) {
        let Some(record) = self.my_subs.get(&id) else {
            return; // unsubscribed in the meantime
        };
        let old_expiry = record.expires;
        let now = svc.now();
        if old_expiry == SimTime::MAX || old_expiry <= now {
            return; // nothing to extend / already lapsed locally
        }
        // Extend by the original lease length, measured from now.
        let half_lease = old_expiry.saturating_since(now);
        let new_expiry = now + half_lease * 2;
        // Recompute the rendezvous targets: under the adaptive policy the
        // split table may have changed since the subscription was issued,
        // and the refresh must land wherever the record now lives.
        let (sk, subgroups) = {
            let record = self.my_subs.get(&id).expect("checked above");
            self.cfg
                .rendezvous
                .sub_targets(&self.cfg.mapping, &record.sub, id)
        };
        let record = self.my_subs.get_mut(&id).expect("checked above");
        record.expires = new_expiry;
        record.sk = sk;
        record.subgroups = subgroups;
        let stored = record.clone();
        svc.metrics().add("requests.refresh", 1);
        svc.arm_timer(half_lease, PubSubTimer::Refresh { id });
        let trace = stored.trace;
        self.propagate(
            &stored.sk.clone(),
            TrafficClass::SUBSCRIPTION,
            PubSubMsg::Subscribe { id, stored },
            trace,
            svc,
        );
    }

    /// `unsub(σ)`: removes the subscription from its rendezvous nodes.
    /// Returns `false` if this node never issued `id` (or already
    /// unsubscribed).
    pub fn unsubscribe(&mut self, id: SubId, svc: &mut DynSvc<'_>) -> bool {
        let Some(stored) = self.my_subs.remove(&id) else {
            return false;
        };
        svc.metrics().add("requests.unsubscribe", 1);
        // Target every key the record may currently be stored under (a
        // superset: under the adaptive policy the record may have been
        // migrated since it was issued, and a removal routed to a key
        // holding no copy is a no-op).
        let (targets, _) = self
            .cfg
            .rendezvous
            .resident_targets(&self.cfg.mapping, &stored.sub, id);
        self.propagate(
            &targets,
            TrafficClass::SUBSCRIPTION,
            PubSubMsg::Unsubscribe { id },
            stored.trace,
            svc,
        );
        true
    }

    /// `pub(e)`: maps the event to its rendezvous keys and propagates it.
    /// Returns the new event id.
    pub fn publish(&mut self, event: Event, svc: &mut DynSvc<'_>) -> EventId {
        let me = svc.me();
        let id = EventId::compose(me.idx, self.next_event_seq);
        let trace = TraceId::for_publication(me.idx, self.next_event_seq);
        self.next_event_seq += 1;
        svc.stage(trace, Stage::Publish, TrafficClass::PUBLICATION);
        let ek = self.cfg.rendezvous.pub_targets(&self.cfg.mapping, &event);
        svc.metrics().add("requests.publish", 1);
        svc.metrics()
            .histogram_mut("keys.per-publication")
            .record(ek.count());
        // One shared allocation per publication, minted at the publisher:
        // m-cast splits and per-match notify items all bump the refcount
        // instead of deep-copying the event.
        let event = Arc::new(event);
        self.propagate(
            &ek,
            TrafficClass::PUBLICATION,
            PubSubMsg::Publish { id, event, trace },
            trace,
            svc,
        );
        id
    }

    fn propagate(
        &self,
        targets: &KeyRangeSet,
        class: TrafficClass,
        msg: PubSubMsg,
        trace: TraceId,
        svc: &mut DynSvc<'_>,
    ) {
        match self.cfg.primitive {
            Primitive::Unicast => svc.ucast_keys(targets, class, msg, trace),
            Primitive::MCast => svc.mcast(targets, class, msg, trace),
            Primitive::Walk => {
                let ranges: Vec<KeyRange> = targets.iter_ranges(svc.space()).collect();
                for range in ranges {
                    svc.walk(range, class, msg.clone(), trace);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Rendezvous role.
    // ------------------------------------------------------------------

    fn handle_store(&mut self, id: SubId, stored: StoredSub, svc: &mut DynSvc<'_>) {
        svc.stage(stored.trace, Stage::Store, TrafficClass::SUBSCRIPTION);
        let fresh = self.store.insert(id, stored.clone(), svc.now());
        svc.obs_sample("store.size", self.store.len() as u64);
        if fresh {
            svc.metrics().add("store.insert", 1);
            let replication = self.cfg.replication;
            if replication > 0 {
                let succs: Vec<Peer> = svc.successors().iter().take(replication).copied().collect();
                for peer in succs {
                    svc.direct(
                        peer,
                        TrafficClass::STATE_TRANSFER,
                        PubSubMsg::StateBatch {
                            subs: vec![(id, stored.clone())],
                            as_replica: true,
                        },
                    );
                }
            }
        } else {
            svc.metrics().add("store.duplicate-delivery", 1);
        }
    }

    fn handle_unsubscribe(&mut self, id: SubId, svc: &mut DynSvc<'_>) {
        if self.store.remove(id).is_some() && self.cfg.replication > 0 {
            let succs: Vec<Peer> = svc
                .successors()
                .iter()
                .take(self.cfg.replication)
                .copied()
                .collect();
            for peer in succs {
                svc.direct(
                    peer,
                    TrafficClass::STATE_TRANSFER,
                    PubSubMsg::ReplicaDrop { ids: vec![id] },
                );
            }
        }
        self.replicas.remove(&id);
    }

    /// Pre-sizes the rendezvous-side containers for a bulk installation
    /// of roughly `expected_stored` subscriptions (see
    /// [`SubscriptionStore::reserve`]). Deployment builders call this
    /// with a per-node estimate derived from the workload totals before
    /// replaying a trace; behavior is identical with or without it.
    pub fn reserve_workload(&mut self, expected_stored: usize) {
        self.store.reserve(expected_stored);
        if self.match_buf.capacity() < expected_stored {
            self.match_buf
                .reserve(expected_stored - self.match_buf.len());
        }
    }

    /// Grows the rendezvous-side hot-path buffers — the event-dedup window
    /// and every matching scratch — to their steady-state bounds, so a
    /// node that processes its first publication inside a measurement
    /// window does not charge the window its cold-start allocations. The
    /// same warming happens lazily on first use; the allocation-audit
    /// harness calls this on every node after its warmup pass.
    pub fn warm(&mut self) {
        self.warm_event_dedup();
        self.store.warm();
        let need = self.store.len();
        if self.match_buf.capacity() < need {
            self.match_buf.reserve(need - self.match_buf.len());
        }
    }

    /// Sizes the event-dedup window for its steady-state bound, so
    /// insert/evict churn at the bound never reallocates. The set needs
    /// twice the window bound — hashbrown resizes (and thus allocates)
    /// instead of rehashing tombstones in place when the live count
    /// exceeds half the growth threshold. Only [`PubSubNode::warm`] calls
    /// this: ordinary runs grow the window incrementally and most nodes
    /// never reach the bound, so front-loading the worst case on every
    /// node would cost more than it saves.
    fn warm_event_dedup(&mut self) {
        if self.seen_events.capacity() < 2 * SEEN_EVENTS_CAP {
            let extra = 2 * SEEN_EVENTS_CAP - self.seen_events.len();
            self.seen_events.reserve(extra);
        }
        if self.seen_order.capacity() < SEEN_EVENTS_CAP + 1 {
            let extra = SEEN_EVENTS_CAP + 1 - self.seen_order.len();
            self.seen_order.reserve(extra);
        }
    }

    fn note_event_seen(&mut self, id: EventId) -> bool {
        if !self.seen_events.insert(id) {
            return false;
        }
        self.seen_order.push_back(id);
        if self.seen_order.len() > SEEN_EVENTS_CAP {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen_events.remove(&old);
            }
        }
        true
    }

    fn handle_publish(
        &mut self,
        id: EventId,
        event: Arc<Event>,
        trace: TraceId,
        svc: &mut DynSvc<'_>,
    ) {
        if !self.note_event_seen(id) {
            svc.metrics().add("publish.duplicate-delivery", 1);
            return;
        }
        let mut matches = std::mem::take(&mut self.match_buf);
        self.store.match_event_into(&event, svc.now(), &mut matches);
        self.work = self.work.wrapping_add(1 + matches.len() as u64);
        svc.metrics().add("matches", matches.len() as u64);
        svc.stage(trace, Stage::RendezvousMatch, TrafficClass::PUBLICATION);
        svc.obs_sample("rendezvous.fanout", matches.len() as u64);
        // The publisher minted one shared allocation for the event: each
        // item clone below is a reference-count bump, not a deep copy.
        for (sub_id, stored) in matches.drain(..) {
            let item = NotifyItem {
                sub_id,
                event_id: id,
                event: Arc::clone(&event),
                trace,
            };
            match self.cfg.notify_mode {
                NotifyMode::Immediate => {
                    svc.metrics().add("notifications.messages", 1);
                    svc.stage(trace, Stage::NotifyRoute, TrafficClass::NOTIFICATION);
                    svc.send(
                        stored.subscriber.key,
                        TrafficClass::NOTIFICATION,
                        PubSubMsg::Notification {
                            items: NotifyBatch::One(item),
                        },
                        trace,
                    );
                }
                NotifyMode::Buffered { period } => {
                    self.notify_buffer
                        .entry(stored.subscriber)
                        .or_default()
                        .push(item);
                    self.arm_flush(period, svc);
                }
                NotifyMode::Collecting { period } => {
                    self.route_to_agent(item, &stored, svc);
                    self.arm_flush(period, svc);
                }
            }
        }
        self.match_buf = matches;
    }

    /// Queues a match either at this node (if we cover the agent key of the
    /// subscription's rendezvous range) or toward the agent along the ring.
    fn route_to_agent(&mut self, item: NotifyItem, stored: &StoredSub, svc: &mut DynSvc<'_>) {
        let space = svc.space();
        let me = svc.me();
        // Locate the rendezvous range this node serves for the
        // subscription (the first range intersecting our coverage).
        let pred = svc.predecessor().unwrap_or(me);
        let range = stored
            .sk
            .iter_ranges(space)
            .find(|r| {
                !KeyRangeSet::of_range(space, *r)
                    .extract_arc_oc(space, pred.key, me.key)
                    .is_empty()
            })
            .or_else(|| stored.sk.iter_ranges(space).next());
        let Some(range) = range else { return };
        let agent_key = range.midpoint(space);
        if svc.covers(agent_key) {
            self.agent_buffer
                .entry(stored.subscriber)
                .or_default()
                .push(item);
            return;
        }
        let citem = CollectItem {
            sub_id: item.sub_id,
            subscriber: stored.subscriber,
            agent_key,
            event_id: item.event_id,
            event: item.event,
            trace: item.trace,
        };
        // Nodes covering the part of the range before the midpoint push
        // clockwise; the rest push counter-clockwise.
        if space.distance_cw(range.start(), me.key) < space.distance_cw(range.start(), agent_key) {
            self.collect_succ.push(citem);
        } else {
            self.collect_pred.push(citem);
        }
    }

    fn arm_flush(&mut self, period: SimDuration, svc: &mut DynSvc<'_>) {
        if !self.flush_armed {
            self.flush_armed = true;
            svc.arm_timer(period, PubSubTimer::Flush);
        }
    }

    fn flush(&mut self, svc: &mut DynSvc<'_>) {
        self.flush_armed = false;
        // Plain buffered notifications: one message per subscriber.
        let buffered: Vec<(Peer, Vec<NotifyItem>)> = self.notify_buffer.drain().collect();
        for (subscriber, items) in buffered {
            svc.metrics().add("notifications.messages", 1);
            svc.metrics()
                .histogram_mut("notifications.batch-size")
                .record(items.len() as u64);
            self.send_notification(subscriber, items, svc);
        }
        // Agent aggregates: one message per subscriber.
        let agent: Vec<(Peer, Vec<NotifyItem>)> = self.agent_buffer.drain().collect();
        for (subscriber, items) in agent {
            svc.metrics().add("notifications.messages", 1);
            svc.metrics()
                .histogram_mut("notifications.batch-size")
                .record(items.len() as u64);
            self.send_notification(subscriber, items, svc);
        }
        // Collect exchanges: one merged message per ring direction.
        let succ_items = std::mem::take(&mut self.collect_succ);
        if !succ_items.is_empty() {
            match svc.successor() {
                Some(succ) => svc.direct(
                    succ,
                    TrafficClass::COLLECT,
                    PubSubMsg::CollectExchange { items: succ_items },
                ),
                None => self.absorb_collect_items(succ_items, svc),
            }
        }
        let pred_items = std::mem::take(&mut self.collect_pred);
        if !pred_items.is_empty() {
            match svc.predecessor() {
                Some(pred) => svc.direct(
                    pred,
                    TrafficClass::COLLECT,
                    PubSubMsg::CollectExchange { items: pred_items },
                ),
                None => self.absorb_collect_items(pred_items, svc),
            }
        }
    }

    /// Routes one batched notification message to a subscriber, stamping
    /// each item's trace with the end of its buffer wait and the start of
    /// the notification route. The envelope carries the item trace when the
    /// batch is a singleton; a mixed batch routes untraced (each item still
    /// carries its own trace for the delivery stage).
    fn send_notification(
        &mut self,
        subscriber: Peer,
        items: Vec<NotifyItem>,
        svc: &mut DynSvc<'_>,
    ) {
        for item in &items {
            svc.stage(item.trace, Stage::BufferWait, TrafficClass::NOTIFICATION);
            svc.stage(item.trace, Stage::NotifyRoute, TrafficClass::NOTIFICATION);
        }
        let envelope_trace = match items.as_slice() {
            [only] => only.trace,
            _ => TraceId::NONE,
        };
        svc.send(
            subscriber.key,
            TrafficClass::NOTIFICATION,
            PubSubMsg::Notification {
                items: NotifyBatch::Many(items),
            },
            envelope_trace,
        );
    }

    /// Fallback when there is no neighbor to push to (single-node ring):
    /// act as the agent ourselves.
    fn absorb_collect_items(&mut self, items: Vec<CollectItem>, svc: &mut DynSvc<'_>) {
        let mut touched = false;
        for item in items {
            self.agent_buffer
                .entry(item.subscriber)
                .or_default()
                .push(NotifyItem {
                    sub_id: item.sub_id,
                    event_id: item.event_id,
                    event: item.event,
                    trace: item.trace,
                });
            touched = true;
        }
        if touched {
            if let NotifyMode::Collecting { period } = self.cfg.notify_mode {
                self.arm_flush(period, svc);
            }
        }
    }

    fn handle_collect_exchange(&mut self, items: Vec<CollectItem>, svc: &mut DynSvc<'_>) {
        let space = svc.space();
        let me = svc.me();
        let mut touched = false;
        for item in items {
            touched = true;
            svc.stage(item.trace, Stage::CollectHop, TrafficClass::COLLECT);
            if svc.covers(item.agent_key) {
                self.agent_buffer
                    .entry(item.subscriber)
                    .or_default()
                    .push(NotifyItem {
                        sub_id: item.sub_id,
                        event_id: item.event_id,
                        event: item.event.clone(),
                        trace: item.trace,
                    });
                continue;
            }
            // Keep moving toward the agent: clockwise if it lies in the
            // half-ring ahead of us, counter-clockwise otherwise.
            if space.distance_cw(me.key, item.agent_key) <= space.size() / 2 {
                self.collect_succ.push(item);
            } else {
                self.collect_pred.push(item);
            }
        }
        if touched {
            if let NotifyMode::Collecting { period } = self.cfg.notify_mode {
                self.arm_flush(period, svc);
            }
        }
    }

    // ------------------------------------------------------------------
    // Subscriber role.
    // ------------------------------------------------------------------

    fn handle_notification(&mut self, items: NotifyBatch, svc: &mut DynSvc<'_>) {
        let now = svc.now();
        let me = svc.me().idx;
        for item in items {
            // During churn a notification routed to a crashed subscriber's
            // key lands on the key's new coverer; it is not ours to consume.
            if item.sub_id.node() != me {
                svc.metrics().add("notifications.misrouted", 1);
                continue;
            }
            if self.delivered_dedup.insert((item.sub_id, item.event_id)) {
                svc.metrics().add("notifications.delivered", 1);
                svc.stage(item.trace, Stage::Deliver, TrafficClass::NOTIFICATION);
                self.delivered.push(DeliveredNote {
                    sub_id: item.sub_id,
                    event_id: item.event_id,
                    event: item.event,
                    at: now,
                    trace: item.trace,
                });
            } else {
                svc.metrics().add("notifications.duplicate", 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // State transfer and replication.
    // ------------------------------------------------------------------

    fn handle_state_batch(
        &mut self,
        subs: Vec<(SubId, StoredSub)>,
        as_replica: bool,
        svc: &mut DynSvc<'_>,
    ) {
        let now = svc.now();
        for (id, stored) in subs {
            if as_replica {
                svc.metrics().add("replicas.stored", 1);
                self.replicas.insert(id, stored);
            } else {
                svc.metrics().add("state-transfer.adopted", 1);
                self.store.insert(id, stored, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Adaptive-rendezvous store sweeps.
    // ------------------------------------------------------------------

    /// Executes one adaptive-rendezvous store sweep at this node (see
    /// [`SweepOp`]). The network's control loop invokes this on the nodes
    /// covering the swept arcs at entry phase transitions — never from a
    /// message handler. Record iteration is sorted by id so the emitted
    /// message order (and thus the whole run) is independent of hash-map
    /// iteration order. Returns the number of records touched.
    ///
    /// Safety argument for the purges: a record is only removed when its
    /// *resident target set* — the static `SK` plus the assigned mirror
    /// image of every live split entry — no longer intersects this node's
    /// coverage outside the vacated arc. Natives and copies serving other
    /// live entries therefore always survive, and the copy created by the
    /// preceding migrate/copy-back sweep (one full control interval
    /// earlier, so guaranteed landed) is the record's new home.
    pub fn rendezvous_sweep(&mut self, op: &SweepOp, svc: &mut DynSvc<'_>) -> u64 {
        let space = svc.space();
        let me = svc.me();
        let pred = svc.predecessor().unwrap_or(me);
        let bit = 1u64 << op.entry.slot;
        let mut touched = 0u64;
        match op.kind {
            SweepKind::Migrate => {
                // Copy every base-arc resident to its assigned mirror.
                // Records already tagged (subscriptions issued while the
                // entry was live) hold their mirror copy already.
                let mut items: Vec<(SubId, StoredSub)> = self
                    .store
                    .iter()
                    .filter(|(_, s)| {
                        s.subgroups & bit == 0
                            && !self
                                .cfg
                                .mapping
                                .sk(&s.sub)
                                .extract_arc_oc(space, op.entry.start, op.entry.end)
                                .is_empty()
                    })
                    .map(|(id, s)| (id, s.clone()))
                    .collect();
                items.sort_by_key(|(id, _)| *id);
                for (id, s) in items {
                    let portion = self.cfg.mapping.sk(&s.sub).extract_arc_oc(
                        space,
                        op.entry.start,
                        op.entry.end,
                    );
                    let j = assign_group(id, op.entry.groups);
                    let image = shift_set(space, &portion, op.entry.offset * u64::from(j));
                    let mut sk = s.sk.extract_arc_oc(space, op.entry.end, op.entry.start);
                    sk.union_with(&image);
                    let trace = s.trace;
                    let copy = StoredSub {
                        sk,
                        subgroups: s.subgroups | bit,
                        ..s
                    };
                    touched += 1;
                    self.propagate(
                        &image,
                        TrafficClass::STATE_TRANSFER,
                        PubSubMsg::Subscribe { id, stored: copy },
                        trace,
                        svc,
                    );
                }
            }
            SweepKind::PurgeBase => {
                let mut doomed: Vec<SubId> = self
                    .store
                    .iter()
                    .filter(|(id, s)| {
                        let static_sk = self.cfg.mapping.sk(&s.sub);
                        if static_sk
                            .extract_arc_oc(space, op.entry.start, op.entry.end)
                            .is_empty()
                        {
                            return false;
                        }
                        let (resident, _) =
                            self.cfg
                                .rendezvous
                                .resident_targets(&self.cfg.mapping, &s.sub, *id);
                        resident
                            .extract_arc_oc(space, op.entry.end, op.entry.start)
                            .extract_arc_oc(space, pred.key, me.key)
                            .is_empty()
                    })
                    .map(|(id, _)| id)
                    .collect();
                doomed.sort_unstable();
                for id in doomed {
                    self.store.remove(id);
                    touched += 1;
                }
                svc.obs_sample("store.size", self.store.len() as u64);
            }
            SweepKind::CopyBack => {
                let mut items: Vec<(SubId, StoredSub)> = self
                    .store
                    .iter()
                    .filter(|(_, s)| s.subgroups & bit != 0)
                    .map(|(id, s)| (id, s.clone()))
                    .collect();
                items.sort_by_key(|(id, _)| *id);
                for (id, s) in items {
                    let static_p = self.cfg.mapping.sk(&s.sub).extract_arc_oc(
                        space,
                        op.entry.start,
                        op.entry.end,
                    );
                    if static_p.is_empty() {
                        continue; // stale bit from a recycled slot
                    }
                    let j = assign_group(id, op.entry.groups);
                    let d = op.entry.offset * u64::from(j);
                    let (ia, ib) = (space.add(op.entry.start, d), space.add(op.entry.end, d));
                    let mut sk = s.sk.extract_arc_oc(space, ib, ia);
                    sk.union_with(&static_p);
                    let trace = s.trace;
                    let copy = StoredSub {
                        sk,
                        subgroups: s.subgroups & !bit,
                        ..s
                    };
                    touched += 1;
                    self.propagate(
                        &static_p,
                        TrafficClass::STATE_TRANSFER,
                        PubSubMsg::Subscribe { id, stored: copy },
                        trace,
                        svc,
                    );
                }
            }
            SweepKind::PurgeMirror => {
                // The entry has already left the table, so the resident
                // set excludes it: purge tagged copies the current table
                // no longer homes here, re-tag the ones that stay.
                let mut tagged: Vec<SubId> = self
                    .store
                    .iter()
                    .filter(|(_, s)| s.subgroups & bit != 0)
                    .map(|(id, _)| id)
                    .collect();
                tagged.sort_unstable();
                let now = svc.now();
                for id in tagged {
                    let Some(s) = self.store.get(id) else {
                        continue;
                    };
                    let (resident, bits) =
                        self.cfg
                            .rendezvous
                            .resident_targets(&self.cfg.mapping, &s.sub, id);
                    let keep = !resident.extract_arc_oc(space, pred.key, me.key).is_empty();
                    let Some(mut s) = self.store.remove(id) else {
                        continue;
                    };
                    touched += 1;
                    if keep {
                        s.sk = resident;
                        s.subgroups = bits;
                        self.store.insert(id, s, now);
                    }
                }
                svc.obs_sample("store.size", self.store.len() as u64);
            }
        }
        touched
    }
}

impl PubSubNode {
    /// Overlay-neutral entry point for routed payload deliveries. Every
    /// overlay adapter (Chord's [`OverlayApp`] impl below, Pastry's in
    /// `cbps-pastry`) funnels into this.
    pub fn handle_deliver(&mut self, payload: PubSubMsg, svc: &mut DynSvc<'_>) {
        match payload {
            PubSubMsg::Subscribe { id, stored } => self.handle_store(id, stored, svc),
            PubSubMsg::Unsubscribe { id } => self.handle_unsubscribe(id, svc),
            PubSubMsg::Publish { id, event, trace } => self.handle_publish(id, event, trace, svc),
            PubSubMsg::Notification { items } => self.handle_notification(items, svc),
            // These travel as direct one-hop messages; a routed copy would
            // indicate a bug.
            PubSubMsg::CollectExchange { .. }
            | PubSubMsg::StateBatch { .. }
            | PubSubMsg::ReplicaDrop { .. } => {
                debug_assert!(false, "direct-only payload arrived via routing");
            }
        }
    }

    /// Overlay-neutral entry point for one-hop direct messages.
    pub fn handle_direct_msg(&mut self, _from: Peer, payload: PubSubMsg, svc: &mut DynSvc<'_>) {
        match payload {
            PubSubMsg::CollectExchange { items } => self.handle_collect_exchange(items, svc),
            PubSubMsg::StateBatch { subs, as_replica } => {
                self.handle_state_batch(subs, as_replica, svc)
            }
            PubSubMsg::ReplicaDrop { ids } => {
                for id in ids {
                    self.replicas.remove(&id);
                }
            }
            // Notifications are routed, not direct.
            other => {
                let _ = other;
                debug_assert!(false, "routed-only payload arrived directly");
            }
        }
    }

    /// Overlay-neutral entry point for application timers.
    pub fn handle_timer_fired(&mut self, timer: PubSubTimer, svc: &mut DynSvc<'_>) {
        match timer {
            PubSubTimer::Flush => self.flush(svc),
            PubSubTimer::Refresh { id } => self.refresh_lease(id, svc),
        }
    }

    /// Overlay-neutral entry point for coverage changes (a neighbor
    /// joined, left or failed): state handover, demotion and replica
    /// promotion.
    pub fn handle_predecessor_changed(
        &mut self,
        old: Option<Peer>,
        new: Option<Peer>,
        svc: &mut DynSvc<'_>,
    ) {
        let space = svc.space();
        let me = svc.me();
        // A node joined inside our old arc: hand over the primaries it now
        // covers.
        if let (Some(old_p), Some(new_p)) = (old, new) {
            if space.in_arc_oo(new_p.key, old_p.key, me.key) {
                let batch: Vec<(SubId, StoredSub)> = self
                    .store
                    .iter()
                    .filter(|(_, s)| !s.sk.extract_arc_oc(space, old_p.key, new_p.key).is_empty())
                    .map(|(id, s)| (id, s.clone()))
                    .collect();
                if !batch.is_empty() {
                    svc.direct(
                        new_p,
                        TrafficClass::STATE_TRANSFER,
                        PubSubMsg::StateBatch {
                            subs: batch,
                            as_replica: false,
                        },
                    );
                }
            }
        }
        // Re-evaluate which records we are primary for: demote primaries
        // whose rendezvous keys we no longer cover, promote replicas whose
        // keys we now do (failure takeover).
        let covered = |s: &StoredSub| match new {
            None => true,
            Some(p) => !s.sk.extract_arc_oc(space, p.key, me.key).is_empty(),
        };
        let demote: Vec<SubId> = self
            .store
            .iter()
            .filter(|(_, s)| !covered(s))
            .map(|(id, _)| id)
            .collect();
        for id in demote {
            if let Some(s) = self.store.remove(id) {
                self.replicas.insert(id, s);
            }
        }
        let promote: Vec<SubId> = self
            .replicas
            .iter()
            .filter(|(_, s)| covered(s))
            .map(|(&id, _)| id)
            .collect();
        let now = svc.now();
        for id in promote {
            if let Some(s) = self.replicas.remove(&id) {
                svc.metrics().add("replicas.promoted", 1);
                self.store.insert(id, s, now);
            }
        }
    }

    /// Overlay-neutral entry point for graceful departure: push primaries
    /// to the successor.
    pub fn handle_leaving(&mut self, svc: &mut DynSvc<'_>) {
        let Some(succ) = svc.successor() else { return };
        let batch: Vec<(SubId, StoredSub)> =
            self.store.iter().map(|(id, s)| (id, s.clone())).collect();
        if !batch.is_empty() {
            svc.direct(
                succ,
                TrafficClass::STATE_TRANSFER,
                PubSubMsg::StateBatch {
                    subs: batch,
                    as_replica: false,
                },
            );
        }
    }
}

impl OverlayApp for PubSubNode {
    type Payload = PubSubMsg;
    type Timer = PubSubTimer;

    fn on_deliver(
        &mut self,
        payload: PubSubMsg,
        _delivery: Delivery,
        svc: &mut dyn OverlayServices<PubSubMsg, PubSubTimer>,
    ) {
        self.handle_deliver(payload, svc);
    }

    fn on_direct(
        &mut self,
        from: Peer,
        payload: PubSubMsg,
        svc: &mut dyn OverlayServices<PubSubMsg, PubSubTimer>,
    ) {
        self.handle_direct_msg(from, payload, svc);
    }

    fn on_timer(
        &mut self,
        timer: PubSubTimer,
        svc: &mut dyn OverlayServices<PubSubMsg, PubSubTimer>,
    ) {
        self.handle_timer_fired(timer, svc);
    }

    fn on_predecessor_changed(
        &mut self,
        old: Option<Peer>,
        new: Option<Peer>,
        svc: &mut dyn OverlayServices<PubSubMsg, PubSubTimer>,
    ) {
        self.handle_predecessor_changed(old, new, svc);
    }

    fn on_leaving(&mut self, svc: &mut dyn OverlayServices<PubSubMsg, PubSubTimer>) {
        self.handle_leaving(svc);
    }
}

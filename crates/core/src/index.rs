//! A matching index over stored subscriptions.
//!
//! Rendezvous nodes must match every incoming event against their stored
//! subscriptions (§3.2). The index implements the classic *counting*
//! algorithm over per-attribute bucket lists (à la Fabret et al. [6]): for
//! each dimension, bucket lookup yields the candidate constraints, exact
//! bound checks count satisfied constraints per subscription, and a
//! subscription matches when all of its constraints are satisfied.
//! Wildcard dimensions never enter the count.

use std::collections::HashMap;

use crate::event::Event;
use crate::space::EventSpace;
use crate::subscription::{SubId, Subscription};

/// Number of buckets per dimension. Chosen so bucket lists stay short for
/// the evaluation workloads without bloating empty stores.
const BUCKETS: usize = 64;

/// Counting-based subscription index for one rendezvous node.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, Event, EventSpace, MatchIndex, SubId, Subscription};
///
/// let space = EventSpace::new(vec![
///     AttributeDef::new("x", 100),
///     AttributeDef::new("y", 100),
/// ]);
/// let mut index = MatchIndex::new(&space);
/// let sub = Subscription::builder(&space).range("x", 10, 20)?.build()?;
/// index.insert(SubId(1), sub);
/// let mut hits = Vec::new();
/// index.matches_into(&Event::new(&space, vec![15, 99])?, &mut hits);
/// assert_eq!(hits, vec![SubId(1)]);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MatchIndex {
    /// Bucket width per dimension (`ceil(|Ω_i| / BUCKETS)`).
    widths: Vec<u64>,
    /// Empty until the first insert: a fresh index is ~6 KB of bucket
    /// vectors per node otherwise, which dominates deployment build
    /// memory at large ring sizes where most stores never fill.
    ///
    /// `per_dim[i][bucket]` = dense slots of subscriptions whose constraint
    /// on dimension `i` overlaps the bucket.
    per_dim: Vec<Vec<Vec<u32>>>,
    /// Dense slot table; freed slots are recycled.
    slots: Vec<Option<SlotEntry>>,
    free: Vec<u32>,
    /// Id → slot.
    by_id: HashMap<SubId, u32>,
    /// Scratch for the counting algorithm, reused across `matches` calls:
    /// `counts[slot]` is current only when `epochs[slot] == epoch`, so one
    /// counter bump invalidates every stale count instead of zeroing a
    /// slot-sized vector per event.
    epoch: u32,
    epochs: Vec<u32>,
    counts: Vec<u32>,
    touched: Vec<u32>,
}

/// One indexed subscription.
#[derive(Clone, Debug)]
struct SlotEntry {
    id: SubId,
    sub: Subscription,
    /// Number of constrained (non-wildcard) dimensions.
    constrained: u32,
    /// This slot's position inside each bucket list it appears in,
    /// flattened dimension-major (for each constrained dimension, one
    /// entry per bucket of its span, in ascending bucket order). Kept in
    /// lockstep by `swap_remove` fix-ups so removal never scans a bucket.
    positions: Vec<u32>,
}

impl MatchIndex {
    /// Creates an empty index for the given space.
    pub fn new(space: &EventSpace) -> Self {
        MatchIndex {
            widths: space
                .attrs()
                .iter()
                .map(|a| a.size().div_ceil(BUCKETS as u64).max(1))
                .collect(),
            per_dim: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            epoch: 0,
            epochs: Vec::new(),
            counts: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Number of indexed subscriptions.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// `true` iff `id` is indexed.
    pub fn contains(&self, id: SubId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Iterates over the indexed `(id, subscription)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SubId, &Subscription)> {
        self.slots.iter().flatten().map(|e| (e.id, &e.sub))
    }

    /// Inserts a subscription under `id`. Returns `false` (and leaves the
    /// index unchanged) when `id` is already present.
    pub fn insert(&mut self, id: SubId, sub: Subscription) -> bool {
        if self.by_id.contains_key(&id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        if self.per_dim.is_empty() {
            self.per_dim = (0..self.widths.len())
                .map(|_| vec![Vec::new(); BUCKETS])
                .collect();
        }
        let mut positions = Vec::new();
        for (i, c) in sub.constraints().iter().enumerate() {
            if let Some(c) = c {
                let (blo, bhi) = self.bucket_span(i, c.lo(), c.hi());
                for b in blo..=bhi {
                    positions.push(self.per_dim[i][b].len() as u32);
                    self.per_dim[i][b].push(slot);
                }
            }
        }
        let constrained = sub.constrained_count() as u32;
        self.slots[slot as usize] = Some(SlotEntry {
            id,
            sub,
            constrained,
            positions,
        });
        self.by_id.insert(id, slot);
        true
    }

    /// Removes the subscription under `id`, returning it if present.
    ///
    /// O(1) per bucket: each bucket entry is evicted by `swap_remove` at
    /// its recorded position, and the one entry that gets moved has its
    /// own recorded position fixed up in place.
    pub fn remove(&mut self, id: SubId) -> Option<Subscription> {
        let slot = self.by_id.remove(&id)?;
        let entry = self.slots[slot as usize].take()?;
        let mut pi = 0;
        for (i, c) in entry.sub.constraints().iter().enumerate() {
            if let Some(c) = c {
                let (blo, bhi) = bucket_span(&self.widths, i, c.lo(), c.hi());
                for b in blo..=bhi {
                    let pos = entry.positions[pi] as usize;
                    pi += 1;
                    let list = &mut self.per_dim[i][b];
                    debug_assert_eq!(list[pos], slot, "stale position record");
                    list.swap_remove(pos);
                    if pos < list.len() {
                        let moved = self.slots[list[pos] as usize]
                            .as_mut()
                            .expect("bucket lists only hold live slots");
                        let off = position_offset(&self.widths, &moved.sub, i, b);
                        moved.positions[off] = pos as u32;
                    }
                }
            }
        }
        self.free.push(slot);
        Some(entry.sub)
    }

    /// The subscription stored under `id`.
    pub fn get(&self, id: SubId) -> Option<&Subscription> {
        let slot = *self.by_id.get(&id)?;
        self.slots[slot as usize].as_ref().map(|e| &e.sub)
    }

    /// Grows the counting scratch to its steady-state size (bounded by the
    /// slot count) so subsequent [`MatchIndex::matches_into`] calls never
    /// reallocate. `matches_into` warms the same buffers incrementally;
    /// this lets a measurement harness pre-fault nodes that have not
    /// matched an event yet.
    pub fn warm(&mut self) {
        let need = self.slots.len();
        if self.epochs.len() < need {
            self.epochs.resize(need, 0);
            self.counts.resize(need, 0);
        }
        if self.touched.capacity() < need {
            self.touched.reserve(need - self.touched.len());
        }
    }

    /// Writes all subscriptions matched by `event` into `out` (cleared
    /// first), in ascending id order. Allocation-free at steady state:
    /// the counting scratch is epoch-stamped rather than re-zeroed, so a
    /// call touches only the candidate slots.
    pub fn matches_into(&mut self, event: &Event, out: &mut Vec<SubId>) {
        out.clear();
        if self.per_dim.is_empty() {
            // Nothing was ever inserted; the bucket lists don't exist yet.
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped: stale stamps could collide, so reset them all.
            self.epochs.fill(0);
            self.epoch = 1;
        }
        if self.epochs.len() < self.slots.len() {
            self.epochs.resize(self.slots.len(), 0);
            self.counts.resize(self.slots.len(), 0);
        }
        self.touched.clear();
        for (i, &v) in event.values().iter().enumerate() {
            let b = ((v / self.widths[i]) as usize).min(BUCKETS - 1);
            for &slot in &self.per_dim[i][b] {
                let entry = self.slots[slot as usize]
                    .as_ref()
                    .expect("bucket lists only hold live slots");
                if entry
                    .sub
                    .constraint(i)
                    .expect("indexed constraint")
                    .admits(v)
                {
                    let s = slot as usize;
                    if self.epochs[s] != self.epoch {
                        self.epochs[s] = self.epoch;
                        self.counts[s] = 0;
                        self.touched.push(slot);
                    }
                    self.counts[s] += 1;
                }
            }
        }
        for &slot in &self.touched {
            let entry = self.slots[slot as usize].as_ref().expect("live slot");
            if self.counts[slot as usize] == entry.constrained {
                out.push(entry.id);
            }
        }
        out.sort_unstable();
    }

    /// Reference implementation: linear scan with exact matching. Used by
    /// tests and micro-benchmarks to validate and compare the index.
    pub fn matches_brute_force(&self, event: &Event) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .slots
            .iter()
            .flatten()
            .filter(|e| e.sub.matches(event))
            .map(|e| e.id)
            .collect();
        out.sort_unstable();
        out
    }

    fn bucket_span(&self, dim: usize, lo: u64, hi: u64) -> (usize, usize) {
        bucket_span(&self.widths, dim, lo, hi)
    }
}

fn bucket_span(widths: &[u64], dim: usize, lo: u64, hi: u64) -> (usize, usize) {
    let w = widths[dim];
    (
        ((lo / w) as usize).min(BUCKETS - 1),
        ((hi / w) as usize).min(BUCKETS - 1),
    )
}

/// Index into a [`SlotEntry::positions`] vector for dimension `dim`,
/// bucket `bucket`: the sum of earlier constrained dimensions' span widths
/// plus the offset within `dim`'s own span.
fn position_offset(widths: &[u64], sub: &Subscription, dim: usize, bucket: usize) -> usize {
    let mut off = 0;
    for (i, c) in sub.constraints().iter().enumerate() {
        if let Some(c) = c {
            let (blo, bhi) = bucket_span(widths, i, c.lo(), c.hi());
            if i == dim {
                debug_assert!((blo..=bhi).contains(&bucket));
                return off + (bucket - blo);
            }
            off += bhi - blo + 1;
        }
    }
    unreachable!("position_offset called for an unconstrained dimension")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MatchEngine;
    use crate::space::AttributeDef;
    use cbps_rng::Rng;

    fn space() -> EventSpace {
        EventSpace::new(vec![
            AttributeDef::new("x", 1000),
            AttributeDef::new("y", 1000),
            AttributeDef::new("z", 10),
        ])
    }

    #[test]
    fn insert_match_remove_roundtrip() {
        let s = space();
        let mut idx = MatchIndex::new(&s);
        let sub = Subscription::builder(&s)
            .range("x", 100, 200)
            .unwrap()
            .eq("z", 5)
            .build()
            .unwrap();
        assert!(idx.insert(SubId(1), sub.clone()));
        assert!(!idx.insert(SubId(1), sub)); // duplicate rejected
        assert_eq!(idx.len(), 1);
        assert!(idx.contains(SubId(1)));

        let hit = Event::new_unchecked(vec![150, 0, 5]);
        let miss = Event::new_unchecked(vec![150, 0, 6]);
        assert_eq!(idx.matches(&hit), vec![SubId(1)]);
        assert!(idx.matches(&miss).is_empty());

        assert!(idx.remove(SubId(1)).is_some());
        assert!(idx.remove(SubId(1)).is_none());
        assert!(idx.matches(&hit).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn multiple_overlapping_subscriptions() {
        let s = space();
        let mut idx = MatchIndex::new(&s);
        for i in 0..10u64 {
            let sub = Subscription::builder(&s)
                .range("x", i * 50, i * 50 + 100)
                .unwrap()
                .build()
                .unwrap();
            idx.insert(SubId(i), sub);
        }
        // x = 120 lies in [50,150], [100,200] → subs 1 and 2... and [0,100]?
        // 120 > 100, no. Check against brute force instead of hand-counting.
        let e = Event::new_unchecked(vec![120, 0, 0]);
        assert_eq!(idx.matches(&e), idx.matches_brute_force(&e));
        assert!(!idx.matches(&e).is_empty());
    }

    #[test]
    fn wildcard_dimensions_ignored() {
        let s = space();
        let mut idx = MatchIndex::new(&s);
        let sub = Subscription::builder(&s).eq("z", 3).build().unwrap();
        idx.insert(SubId(7), sub);
        // x and y arbitrary.
        assert_eq!(
            idx.matches(&Event::new_unchecked(vec![999, 0, 3])),
            vec![SubId(7)]
        );
        assert!(idx
            .matches(&Event::new_unchecked(vec![999, 0, 4]))
            .is_empty());
    }

    #[test]
    fn iter_and_get() {
        let s = space();
        let mut idx = MatchIndex::new(&s);
        let sub = Subscription::builder(&s).eq("z", 1).build().unwrap();
        idx.insert(SubId(9), sub.clone());
        assert_eq!(idx.get(SubId(9)), Some(&sub));
        assert_eq!(idx.iter().count(), 1);
    }

    /// Interleaved inserts and removes keep the bucket position records
    /// consistent: every removal exercises the `swap_remove` fix-up path,
    /// and matching stays equal to brute force throughout.
    #[test]
    fn removal_keeps_index_consistent() {
        let mut rng = Rng::seed_from_u64(0xdead_5107);
        let s = space();
        let mut idx = MatchIndex::new(&s);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..2000 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let xlo = rng.gen_range(0u64..1000);
                let xw = rng.gen_range(0u64..500);
                let sub = Subscription::builder(&s)
                    .range("x", xlo, (xlo + xw).min(999))
                    .unwrap()
                    .eq("z", rng.gen_range(0u64..10))
                    .build()
                    .unwrap();
                assert!(idx.insert(SubId(next_id), sub));
                live.push(next_id);
                next_id += 1;
            } else {
                let k = rng.gen_range(0u64..live.len() as u64) as usize;
                let id = live.swap_remove(k);
                assert!(idx.remove(SubId(id)).is_some());
            }
            if rng.gen_bool(0.25) {
                let e = Event::new_unchecked(vec![
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..10),
                ]);
                assert_eq!(idx.matches(&e), idx.matches_brute_force(&e));
            }
        }
        assert_eq!(idx.len(), live.len());
    }

    /// The bucket index agrees with brute force on random workloads
    /// (seeded-loop port of the original property test).
    #[test]
    fn index_equals_brute_force() {
        let mut rng = Rng::seed_from_u64(0x1d_c0de);
        let s = space();
        for case in 0..256 {
            let mut idx = MatchIndex::new(&s);
            let sub_count = rng.gen_range(1usize..60);
            for i in 0..sub_count {
                let xlo = rng.gen_range(0u64..1000);
                let xw = rng.gen_range(0u64..400);
                let ylo = rng.gen_range(0u64..1000);
                let yw = rng.gen_range(0u64..400);
                let mut constraints = vec![
                    Some(crate::subscription::Constraint::range(xlo, (xlo + xw).min(999)).unwrap()),
                    Some(crate::subscription::Constraint::range(ylo, (ylo + yw).min(999)).unwrap()),
                    None,
                ];
                if rng.gen_bool(0.5) {
                    constraints[2] =
                        Some(crate::subscription::Constraint::eq(rng.gen_range(0u64..10)));
                }
                let sub = Subscription::from_constraints(&s, constraints).unwrap();
                idx.insert(SubId(i as u64), sub);
            }
            for _ in 0..rng.gen_range(1usize..30) {
                let e = Event::new_unchecked(vec![
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..1000),
                    rng.gen_range(0u64..10),
                ]);
                assert_eq!(
                    idx.matches(&e),
                    idx.matches_brute_force(&e),
                    "case {case}: index disagrees with brute force"
                );
            }
        }
    }
}

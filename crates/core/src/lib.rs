//! # cbps — content-based publish/subscribe over structured overlays
//!
//! A from-scratch reproduction of *"Content-Based Publish-Subscribe over
//! Structured Overlay Networks"* (Baldoni, Marchetti, Virgillito,
//! Vitenberg — ICDCS 2005). This crate is the paper's contribution — the
//! **CB-pub/sub mediator layer** of §4 — built on the Chord overlay of
//! [`cbps_overlay`] and the discrete-event engine of [`cbps_sim`]:
//!
//! * an expressive data model: d-dimensional [`EventSpace`]s, [`Event`]s,
//!   and [`Subscription`]s as conjunctions of range/equality constraints;
//! * the three **stateless ak-mappings** of §4.2 ([`AkMapping`]):
//!   Attribute-Split, Key Space-Split and Selective-Attribute — all
//!   satisfying the *mapping intersection rule*;
//! * rendezvous-node machinery: a counting [`MatchIndex`], an expiring
//!   [`SubscriptionStore`], notification dispatch with the **buffering**
//!   and **collecting** optimizations of §4.3.2, and **mapping
//!   discretization** (§4.3.3);
//! * propagation over the overlay's unicast, the native `m-cast`
//!   primitive, or the conservative range walk ([`Primitive`]);
//! * self-configuration: joins pull state, leavers push it, crashes are
//!   masked by successor replication ([`PubSubConfig::with_replication`]).
//!
//! The easiest entry point is [`PubSubNetwork`]:
//!
//! ```
//! use cbps::{Event, PubSubConfig, PubSubNetwork, Subscription};
//!
//! let mut net = PubSubNetwork::builder().nodes(64).seed(1).build().expect("valid network configuration");
//! let space = net.config().space.clone();
//!
//! let sub = Subscription::builder(&space)
//!     .range("a1", 0, 50_000)?
//!     .eq("a3", 12_345)
//!     .build()?;
//! let sub_id = net.subscribe(5, sub, None).unwrap();
//! net.run_for_secs(10);
//!
//! net.publish(40, Event::new(&space, vec![7, 25_000, 999, 12_345])?).unwrap();
//! net.run_for_secs(10);
//!
//! assert_eq!(net.delivered(5).len(), 1);
//! assert_eq!(net.delivered(5)[0].sub_id, sub_id);
//! # Ok::<(), cbps::PubSubError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod backend;
mod config;
mod covering;
mod engine;
mod error;
mod event;
mod index;
mod mapping;
mod msg;
mod node;
mod oracle;
mod rendezvous;
mod sorted;
mod space;
mod store;
mod subscription;
mod system;

pub use backend::{BackendCtx, ChordBackend, ChordPubSub, OverlayBackend};
pub use cbps_sim::MatchEngineKind;
pub use config::{deployment_key_space, NotifyMode, Primitive, PubSubConfig};
pub use engine::{AnyMatchEngine, MatchEngine};
pub use error::{ConfigError, PubSubError};
pub use event::{Event, EventId};
pub use index::MatchIndex;
pub use mapping::{AkMapping, EventKeyChoice, MappingKind};
pub use msg::{CollectItem, DeliveredNote, NotifyBatch, NotifyItem, PubSubMsg, PubSubTimer};
pub use node::PubSubNode;
pub use oracle::Oracle;
pub use rendezvous::{
    assign_group, ControlOutcome, LoadSample, RendezvousMode, RendezvousParams, RendezvousPolicy,
    SplitEntry, SplitPhase, SweepKind, SweepOp,
};
pub use sorted::SortedIndex;
pub use space::{AttributeDef, EventSpace};
pub use store::{StoredSub, SubscriptionStore};
pub use subscription::{Constraint, SubId, Subscription, SubscriptionBuilder};
pub use system::{NodeHandle, PubSubNetwork, PubSubNetworkBuilder};

#[cfg(test)]
mod tests {
    use super::*;
    use cbps_sim::{SimDuration, TrafficClass};

    fn small_net(kind: MappingKind, primitive: Primitive, seed: u64) -> PubSubNetwork {
        PubSubNetwork::builder()
            .nodes(40)
            .seed(seed)
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(kind)
                    .with_primitive(primitive),
            )
            .build()
            .expect("valid network configuration")
    }

    fn all_kinds() -> [MappingKind; 3] {
        [
            MappingKind::AttributeSplit,
            MappingKind::KeySpaceSplit,
            MappingKind::SelectiveAttribute,
        ]
    }

    #[test]
    fn end_to_end_delivery_for_every_mapping_and_primitive() {
        for kind in all_kinds() {
            for primitive in [Primitive::Unicast, Primitive::MCast, Primitive::Walk] {
                let mut net = small_net(kind, primitive, 11);
                let space = net.config().space.clone();
                let sub = Subscription::builder(&space)
                    .range("a0", 400_000, 430_000)
                    .unwrap()
                    .range("a1", 0, 999_999)
                    .unwrap()
                    .build()
                    .unwrap();
                let sub_id = net.subscribe(1, sub, None).unwrap();
                net.run_for_secs(30);

                let hit = Event::new(&space, vec![415_000, 5, 6, 7]).unwrap();
                let miss = Event::new(&space, vec![500_000, 5, 6, 7]).unwrap();
                let hit_id = net.publish(2, hit).unwrap();
                net.publish(3, miss).unwrap();
                net.run_for_secs(30);

                let notes = net.delivered(1);
                assert_eq!(
                    notes.len(),
                    1,
                    "{kind} / {primitive:?}: expected exactly one notification, got {}",
                    notes.len()
                );
                assert_eq!(notes[0].sub_id, sub_id);
                assert_eq!(notes[0].event_id, hit_id);
            }
        }
    }

    #[test]
    fn expired_subscription_stops_matching() {
        let mut net = small_net(MappingKind::SelectiveAttribute, Primitive::MCast, 12);
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space)
            .range("a0", 0, 100_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(1, sub, Some(SimDuration::from_secs(60)))
            .unwrap();
        net.run_for_secs(120); // subscription lapses
        net.publish(2, Event::new(&space, vec![50_000, 1, 2, 3]).unwrap())
            .unwrap();
        net.run_for_secs(30);
        assert!(net.delivered(1).is_empty());
    }

    #[test]
    fn unsubscribe_stops_matching() {
        let mut net = small_net(MappingKind::KeySpaceSplit, Primitive::MCast, 13);
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space)
            .range("a2", 0, 200_000)
            .unwrap()
            .range("a0", 0, 999_999)
            .unwrap()
            .build()
            .unwrap();
        let id = net.subscribe(4, sub, None).unwrap();
        net.run_for_secs(30);
        assert!(net.unsubscribe(4, id).unwrap());
        assert!(!net.unsubscribe(4, id).unwrap()); // second attempt is a no-op
        net.run_for_secs(30);
        net.publish(5, Event::new(&space, vec![1, 2, 100_000, 3]).unwrap())
            .unwrap();
        net.run_for_secs(30);
        assert!(net.delivered(4).is_empty());
    }

    #[test]
    fn duplicate_notifications_are_suppressed() {
        // Mapping 3 + unicast: the event is sent under every attribute
        // separately, so rendezvous and subscriber-side dedup must both
        // work to deliver exactly once.
        let mut net = small_net(MappingKind::SelectiveAttribute, Primitive::Unicast, 14);
        let space = net.config().space.clone();
        // Subscription with all four constraints; event matches everything.
        let sub = Subscription::builder(&space)
            .range("a0", 0, 999_999)
            .unwrap()
            .range("a1", 0, 999_999)
            .unwrap()
            .range("a2", 0, 999_999)
            .unwrap()
            .eq("a3", 777)
            .build()
            .unwrap();
        net.subscribe(6, sub, None).unwrap();
        net.run_for_secs(30);
        net.publish(7, Event::new(&space, vec![1, 2, 3, 777]).unwrap())
            .unwrap();
        net.run_for_secs(30);
        assert_eq!(net.delivered(6).len(), 1);
    }

    #[test]
    fn traffic_classes_are_separated() {
        let mut net = small_net(MappingKind::KeySpaceSplit, Primitive::MCast, 15);
        let space = net.config().space.clone();
        let event = Event::new(&space, vec![1, 1, 1, 1]).unwrap();
        // Choose a subscriber that is NOT the event's rendezvous node, so
        // the notification must cross the network.
        let ek = net.config().mapping.ek(&event);
        let rendezvous = net
            .ring()
            .successor(ek.min_key(net.overlay_config().space).unwrap());
        let subscriber = (rendezvous.idx + 1) % net.len();
        let sub = Subscription::builder(&space)
            .range("a0", 0, 999_999)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(subscriber, sub, None).unwrap();
        net.run_for_secs(30);
        let m = net.metrics();
        assert!(m.messages(TrafficClass::SUBSCRIPTION) > 0);
        assert_eq!(m.messages(TrafficClass::PUBLICATION), 0);
        net.publish(1, event).unwrap();
        net.run_for_secs(30);
        let m = net.metrics();
        assert!(m.messages(TrafficClass::PUBLICATION) > 0);
        assert!(m.messages(TrafficClass::NOTIFICATION) > 0);
        assert_eq!(m.counter("notifications.delivered"), 1);
    }

    #[test]
    fn buffered_mode_batches_notifications() {
        let period = SimDuration::from_secs(5);
        let mut net = PubSubNetwork::builder()
            .nodes(40)
            .seed(16)
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(MappingKind::SelectiveAttribute)
                    .with_notify_mode(NotifyMode::Buffered { period }),
            )
            .build()
            .expect("valid network configuration");
        let space = net.config().space.clone();
        let sub = Subscription::builder(&space).eq("a3", 42).build().unwrap();
        net.subscribe(2, sub, None).unwrap();
        net.run_for_secs(30);
        // Three matching events in a burst → one batched notification
        // message (all land at the same rendezvous within one period).
        for i in 0..3u64 {
            net.publish(3, Event::new(&space, vec![i, i, i, 42]).unwrap())
                .unwrap();
        }
        net.run_for_secs(30);
        assert_eq!(net.delivered(2).len(), 3);
        let batched = net.metrics().histogram("notifications.batch-size").unwrap();
        assert!(batched.max().unwrap() >= 2, "no batching observed");
        assert_eq!(net.metrics().counter("notifications.messages"), 1);
    }

    #[test]
    fn collecting_mode_delivers_correctly() {
        let period = SimDuration::from_secs(5);
        let mut net = PubSubNetwork::builder()
            .nodes(60)
            .seed(17)
            .pubsub(
                PubSubConfig::paper_default()
                    .with_mapping(MappingKind::SelectiveAttribute)
                    .with_primitive(Primitive::MCast)
                    .with_notify_mode(NotifyMode::Collecting { period }),
            )
            .build()
            .expect("valid network configuration");
        let space = net.config().space.clone();
        // A wide selective range so the subscription spans many rendezvous
        // nodes on the ring (≈ 1600 keys ≈ a dozen nodes at n = 60).
        let sub = Subscription::builder(&space)
            .range("a1", 300_000, 500_000)
            .unwrap()
            .build()
            .unwrap();
        net.subscribe(8, sub, None).unwrap();
        net.run_for_secs(30);
        // Publish several events across the subscribed range (they land on
        // different rendezvous nodes).
        for i in 0..5u64 {
            net.publish(
                9,
                Event::new(&space, vec![1, 300_000 + i * 40_000, 2, 3]).unwrap(),
            )
            .unwrap();
        }
        net.run_for_secs(120);
        assert_eq!(net.delivered(8).len(), 5, "collecting lost notifications");
        // The collect exchanges actually happened.
        assert!(net.metrics().messages(TrafficClass::COLLECT) > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut net = small_net(MappingKind::KeySpaceSplit, Primitive::MCast, seed);
            let space = net.config().space.clone();
            let sub = Subscription::builder(&space)
                .range("a0", 0, 500_000)
                .unwrap()
                .build()
                .unwrap();
            net.subscribe(1, sub, None).unwrap();
            net.run_for_secs(20);
            for i in 0..10 {
                net.publish(
                    (i % 7) as usize,
                    Event::new(&space, vec![i * 40_000, 1, 2, 3]).unwrap(),
                )
                .unwrap();
            }
            net.run_for_secs(60);
            (
                net.metrics().total_messages(),
                net.delivered(1).len(),
                net.now(),
            )
        };
        assert_eq!(run(99), run(99));
    }
}

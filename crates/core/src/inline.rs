//! A tiny small-vector: the first `N` elements live inline, longer lists
//! spill to the heap. Used for covering-group member lists, where the
//! overwhelming majority of groups hold a handful of subscriptions and a
//! heap allocation per group would dominate the memory win of covering.
//!
//! The crate forbids `unsafe`, so instead of `MaybeUninit` tricks the
//! inline buffer requires `T: Copy + Default` and keeps unused slots at
//! `T::default()`.

/// Inline-first vector of `Copy` elements.
#[derive(Clone, Debug)]
pub(crate) enum InlineVec<T: Copy + Default, const N: usize> {
    /// Up to `N` elements stored in place.
    Inline {
        /// Number of live elements in `buf`.
        len: u8,
        /// Backing array; slots at `len..` hold `T::default()`.
        buf: [T; N],
    },
    /// Spilled representation (never shrinks back inline).
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector. `N` must fit the inline length byte.
    pub(crate) fn new() -> Self {
        debug_assert!(N > 0 && N <= u8::MAX as usize);
        InlineVec::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Number of elements.
    pub(crate) fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len as usize,
            InlineVec::Heap(v) => v.len(),
        }
    }

    /// `true` when no element is stored.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements as a slice.
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { len, buf } => &buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    /// The elements as a mutable slice.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            InlineVec::Inline { len, buf } => &mut buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    /// Appends an element, spilling to the heap on overflow.
    pub(crate) fn push(&mut self, value: T) {
        match self {
            InlineVec::Inline { len, buf } => {
                if (*len as usize) < N {
                    buf[*len as usize] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(buf);
                    v.push(value);
                    *self = InlineVec::Heap(v);
                }
            }
            InlineVec::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the element at `i`, replacing it with the last
    /// element (like [`Vec::swap_remove`]).
    pub(crate) fn swap_remove(&mut self, i: usize) -> T {
        match self {
            InlineVec::Inline { len, buf } => {
                let last = *len as usize - 1;
                assert!(i <= last, "swap_remove index {i} out of bounds");
                let out = buf[i];
                buf[i] = buf[last];
                buf[last] = T::default();
                *len -= 1;
                out
            }
            InlineVec::Heap(v) => v.swap_remove(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_spills_and_swap_remove_everywhere() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.swap_remove(0), 0);
        assert_eq!(v.as_slice(), &[3, 1, 2]);
        for i in 4..10 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Heap(_)));
        assert_eq!(v.len(), 9);
        assert_eq!(v.swap_remove(1), 1);
        assert_eq!(v.as_slice(), &[3, 9, 2, 4, 5, 6, 7, 8]);
        v.as_mut_slice()[0] = 42;
        assert_eq!(v.as_slice()[0], 42);
    }
}

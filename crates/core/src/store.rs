//! Per-rendezvous-node subscription storage with expiration.
//!
//! Subscriptions carry an expiration time simulating unsubscription
//! requests (§5.1); the store purges them lazily and tracks the peak number
//! of simultaneously live subscriptions — the "maximum number of
//! subscriptions per node" metric of Figures 6 and 8.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use cbps_overlay::{KeyRangeSet, Peer};
use cbps_sim::{SimTime, TraceId};

use crate::event::Event;
use crate::index::MatchIndex;
use crate::space::EventSpace;
use crate::subscription::{SubId, Subscription};

/// A subscription as stored at a rendezvous node: the query plus the
/// routing metadata the rendezvous needs to serve it.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSub {
    /// The subscription itself.
    pub sub: Subscription,
    /// Who to notify on a match.
    pub subscriber: Peer,
    /// When the subscription lapses ([`SimTime::MAX`] = never).
    pub expires: SimTime,
    /// The full rendezvous key set `SK(σ)` — needed by the collecting
    /// optimization (to locate the range's middle node) and by state
    /// transfer (to decide which node covers which part).
    pub sk: KeyRangeSet,
    /// Causal trace of the `sub(σ)` operation that created this record
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
}

/// The subscription store of one rendezvous node.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, EventSpace, StoredSub, SubId, Subscription, SubscriptionStore};
/// use cbps_overlay::{KeyRangeSet, KeySpace, Peer};
/// use cbps_sim::{SimTime, TraceId};
///
/// let space = EventSpace::new(vec![AttributeDef::new("x", 100)]);
/// let mut store = SubscriptionStore::new(&space);
/// let sub = Subscription::builder(&space).range("x", 0, 10)?.build()?;
/// let keys = KeySpace::new(8);
/// store.insert(
///     SubId(1),
///     StoredSub {
///         sub,
///         subscriber: Peer { idx: 0, key: keys.key(5) },
///         expires: SimTime::from_secs(60),
///         sk: KeyRangeSet::of_key(keys, keys.key(3)),
///         trace: TraceId::NONE,
///     },
///     SimTime::ZERO,
/// );
/// assert_eq!(store.len(), 1);
/// store.purge_expired(SimTime::from_secs(61));
/// assert_eq!(store.len(), 0);
/// assert_eq!(store.peak(), 1);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SubscriptionStore {
    index: MatchIndex,
    /// Records are `Arc`-wrapped so matching hands out handles instead of
    /// cloning the (constraint-vector-owning) record per hit.
    meta: HashMap<SubId, Arc<StoredSub>>,
    /// Min-heap of (expiry, id); entries may be stale (removed ids).
    expiry: BinaryHeap<Reverse<(SimTime, SubId)>>,
    peak: usize,
    /// Reused id buffer for [`SubscriptionStore::match_event_into`].
    scratch: Vec<SubId>,
}

impl SubscriptionStore {
    /// Creates an empty store for subscriptions over `space`.
    pub fn new(space: &EventSpace) -> Self {
        SubscriptionStore {
            index: MatchIndex::new(space),
            meta: HashMap::new(),
            expiry: BinaryHeap::new(),
            peak: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of live subscriptions (assuming expired ones were purged).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The highest number of simultaneously stored subscriptions observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// `true` iff `id` is currently stored.
    pub fn contains(&self, id: SubId) -> bool {
        self.meta.contains_key(&id)
    }

    /// The stored record under `id`.
    pub fn get(&self, id: SubId) -> Option<&StoredSub> {
        self.meta.get(&id).map(|rc| &**rc)
    }

    /// Iterates over stored records.
    pub fn iter(&self) -> impl Iterator<Item = (SubId, &StoredSub)> {
        self.meta.iter().map(|(&id, s)| (id, &**s))
    }

    /// Inserts (or refreshes) a subscription. Purges expired entries first
    /// so that the peak metric reflects live subscriptions only. Returns
    /// `false` if `id` was already stored (the refresh still updates the
    /// expiry).
    pub fn insert(&mut self, id: SubId, stored: StoredSub, now: SimTime) -> bool {
        self.purge_expired(now);
        if stored.expires != SimTime::MAX {
            self.expiry.push(Reverse((stored.expires, id)));
        }
        let fresh = self.index.insert(id, stored.sub.clone());
        if fresh {
            self.meta.insert(id, Arc::new(stored));
            self.peak = self.peak.max(self.meta.len());
        } else if let Some(existing) = self.meta.get_mut(&id) {
            // Clones the record only if a match handle is still holding it.
            Arc::make_mut(existing).expires = stored.expires;
        }
        fresh
    }

    /// Removes a subscription (unsubscription), returning its record.
    pub fn remove(&mut self, id: SubId) -> Option<StoredSub> {
        self.index.remove(id);
        self.meta
            .remove(&id)
            .map(|rc| Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()))
    }

    /// Drops every subscription whose expiry has passed. Returns the number
    /// purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut purged = 0;
        while let Some(&Reverse((expires, id))) = self.expiry.peek() {
            if expires > now {
                break;
            }
            self.expiry.pop();
            // The entry is stale if the sub was removed or re-inserted with
            // a later expiry.
            if let Some(stored) = self.meta.get(&id) {
                if stored.expires <= now {
                    self.meta.remove(&id);
                    self.index.remove(id);
                    purged += 1;
                }
            }
        }
        purged
    }

    /// All live subscriptions matched by `event`, with handles to their
    /// records. Purges expired entries first.
    pub fn match_event(&mut self, event: &Event, now: SimTime) -> Vec<(SubId, Arc<StoredSub>)> {
        let mut out = Vec::new();
        self.match_event_into(event, now, &mut out);
        out
    }

    /// Writes all live subscriptions matched by `event` into `out`
    /// (cleared first). Purges expired entries first. Allocation-free at
    /// steady state: the id scratch, the match index scratch, and `out`
    /// are all reused, and each hit costs one `Arc` bump instead of a
    /// record clone.
    pub fn match_event_into(
        &mut self,
        event: &Event,
        now: SimTime,
        out: &mut Vec<(SubId, Arc<StoredSub>)>,
    ) {
        out.clear();
        self.purge_expired(now);
        let mut ids = std::mem::take(&mut self.scratch);
        self.index.matches_into(event, &mut ids);
        for &id in &ids {
            out.push((id, Arc::clone(&self.meta[&id])));
        }
        self.scratch = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;
    use cbps_overlay::KeySpace;

    fn space() -> EventSpace {
        EventSpace::new(vec![AttributeDef::new("x", 1000)])
    }

    fn stored(lo: u64, hi: u64, expires: SimTime) -> StoredSub {
        let s = space();
        let keys = KeySpace::new(8);
        StoredSub {
            sub: Subscription::builder(&s)
                .range("x", lo, hi)
                .unwrap()
                .build()
                .unwrap(),
            subscriber: Peer {
                idx: 0,
                key: keys.key(1),
            },
            expires,
            sk: KeyRangeSet::of_key(keys, keys.key(2)),
            trace: TraceId::NONE,
        }
    }

    #[test]
    fn insert_and_match() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 100, SimTime::MAX), SimTime::ZERO);
        st.insert(SubId(2), stored(50, 60, SimTime::MAX), SimTime::ZERO);
        let hits = st.match_event(&Event::new_unchecked(vec![55]), SimTime::ZERO);
        let ids: Vec<SubId> = hits.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![SubId(1), SubId(2)]);
        let hits = st.match_event(&Event::new_unchecked(vec![99]), SimTime::ZERO);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_insert_reports_false_and_refreshes_expiry() {
        let mut st = SubscriptionStore::new(&space());
        assert!(st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(5)),
            SimTime::ZERO
        ));
        assert!(!st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(50)),
            SimTime::ZERO
        ));
        assert_eq!(st.len(), 1);
        // The refreshed expiry keeps it alive past the original deadline.
        st.purge_expired(SimTime::from_secs(10));
        assert_eq!(st.len(), 1);
        st.purge_expired(SimTime::from_secs(51));
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn expiry_ordering_and_peak() {
        let mut st = SubscriptionStore::new(&space());
        for i in 0..10u64 {
            st.insert(
                SubId(i),
                stored(0, 10, SimTime::from_secs(10 + i)),
                SimTime::ZERO,
            );
        }
        assert_eq!(st.peak(), 10);
        assert_eq!(st.purge_expired(SimTime::from_secs(14)), 5); // 10..14
        assert_eq!(st.len(), 5);
        // Peak is a high-water mark: unaffected by purges.
        assert_eq!(st.peak(), 10);
        // Matching also purges.
        let hits = st.match_event(&Event::new_unchecked(vec![5]), SimTime::from_secs(100));
        assert!(hits.is_empty());
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn never_expiring_subscriptions_stay() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 10, SimTime::MAX), SimTime::ZERO);
        st.purge_expired(SimTime::from_secs(1_000_000));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_is_unsubscription() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 10, SimTime::MAX), SimTime::ZERO);
        assert!(st.remove(SubId(1)).is_some());
        assert!(st.remove(SubId(1)).is_none());
        assert!(st
            .match_event(&Event::new_unchecked(vec![5]), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn insert_purges_before_counting_peak() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(1)),
            SimTime::ZERO,
        );
        st.insert(
            SubId(2),
            stored(0, 10, SimTime::from_secs(1)),
            SimTime::ZERO,
        );
        assert_eq!(st.peak(), 2);
        // Both lapsed; inserting at t=10 must not report a peak of 3.
        st.insert(
            SubId(3),
            stored(0, 10, SimTime::MAX),
            SimTime::from_secs(10),
        );
        assert_eq!(st.len(), 1);
        assert_eq!(st.peak(), 2);
    }
}

//! Per-rendezvous-node subscription storage with expiration.
//!
//! Subscriptions carry an expiration time simulating unsubscription
//! requests (§5.1); the store purges them lazily and tracks the peak number
//! of simultaneously live subscriptions — the "maximum number of
//! subscriptions per node" metric of Figures 6 and 8.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use cbps_overlay::{KeyRangeSet, Peer};
use cbps_sim::{MatchEngineKind, SimTime, TraceId};

use crate::covering::CoveringTable;
use crate::engine::{AnyMatchEngine, MatchEngine};
use crate::event::Event;
use crate::space::EventSpace;
use crate::subscription::{SubId, Subscription};

/// A subscription as stored at a rendezvous node: the query plus the
/// routing metadata the rendezvous needs to serve it.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSub {
    /// The subscription itself.
    pub sub: Subscription,
    /// Who to notify on a match.
    pub subscriber: Peer,
    /// When the subscription lapses ([`SimTime::MAX`] = never).
    pub expires: SimTime,
    /// The full rendezvous key set `SK(σ)` — needed by the collecting
    /// optimization (to locate the range's middle node) and by state
    /// transfer (to decide which node covers which part).
    pub sk: KeyRangeSet,
    /// Causal trace of the `sub(σ)` operation that created this record
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
    /// Bitmask of adaptive-rendezvous split slots whose mirror images this
    /// record's `sk` includes (see [`RendezvousPolicy`]): bit `s` set
    /// means the record participates in the live split entry occupying
    /// slot `s`, so the merge sweeps can find (and re-home or release)
    /// exactly the migrated copies. Always `0` under the static policy.
    ///
    /// [`RendezvousPolicy`]: crate::RendezvousPolicy
    pub subgroups: u64,
}

/// The subscription store of one rendezvous node.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, EventSpace, StoredSub, SubId, Subscription, SubscriptionStore};
/// use cbps_overlay::{KeyRangeSet, KeySpace, Peer};
/// use cbps_sim::{SimTime, TraceId};
///
/// let space = EventSpace::new(vec![AttributeDef::new("x", 100)]);
/// let mut store = SubscriptionStore::new(&space);
/// let sub = Subscription::builder(&space).range("x", 0, 10)?.build()?;
/// let keys = KeySpace::new(8);
/// store.insert(
///     SubId(1),
///     StoredSub {
///         sub,
///         subscriber: Peer { idx: 0, key: keys.key(5) },
///         expires: SimTime::from_secs(60),
///         sk: KeyRangeSet::of_key(keys, keys.key(3)),
///         trace: TraceId::NONE,
///         subgroups: 0,
///     },
///     SimTime::ZERO,
/// );
/// assert_eq!(store.len(), 1);
/// store.purge_expired(SimTime::from_secs(61));
/// assert_eq!(store.len(), 0);
/// assert_eq!(store.peak(), 1);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SubscriptionStore {
    /// The physical matching engine (counting or sorted).
    engine: AnyMatchEngine,
    /// Covering layer, when enabled: the engine then holds one physical
    /// entry per covering *group* instead of one per subscription.
    covering: Option<CoveringTable>,
    /// Records are `Arc`-wrapped so matching hands out handles instead of
    /// cloning the (constraint-vector-owning) record per hit. This map is
    /// the *logical* store: `len`/`peak`/expiry always count every
    /// subscription, grouped or not.
    meta: HashMap<SubId, Arc<StoredSub>>,
    /// Min-heap of (expiry, id); entries may be stale (removed ids).
    expiry: BinaryHeap<Reverse<(SimTime, SubId)>>,
    peak: usize,
    /// Reused id buffer for [`SubscriptionStore::match_event_into`].
    scratch: Vec<SubId>,
}

impl SubscriptionStore {
    /// Creates an empty store for subscriptions over `space` with the
    /// default engine (counting index) and covering enabled.
    pub fn new(space: &EventSpace) -> Self {
        SubscriptionStore::with_options(space, MatchEngineKind::default(), true)
    }

    /// Creates an empty store with an explicit engine kind and covering
    /// toggle. Both knobs change memory and speed only — never the match
    /// sets.
    pub fn with_options(space: &EventSpace, engine: MatchEngineKind, covering: bool) -> Self {
        SubscriptionStore {
            engine: AnyMatchEngine::new(engine, space),
            covering: covering.then(CoveringTable::new),
            meta: HashMap::new(),
            expiry: BinaryHeap::new(),
            peak: 0,
            scratch: Vec::new(),
        }
    }

    /// The engine kind this store runs.
    pub fn match_engine(&self) -> MatchEngineKind {
        self.engine.kind()
    }

    /// Number of live subscriptions (assuming expired ones were purged).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Number of entries in the physical matching engine. Equals
    /// [`SubscriptionStore::len`] without covering; with covering it is
    /// the number of groups — at most `len()`, far fewer on workloads
    /// with duplicate or nested subscriptions.
    pub fn physical_len(&self) -> usize {
        match &self.covering {
            Some(table) => table.physical_len(),
            None => self.engine.len(),
        }
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The highest number of simultaneously stored subscriptions observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// `true` iff `id` is currently stored.
    pub fn contains(&self, id: SubId) -> bool {
        self.meta.contains_key(&id)
    }

    /// The stored record under `id`.
    pub fn get(&self, id: SubId) -> Option<&StoredSub> {
        self.meta.get(&id).map(|rc| &**rc)
    }

    /// Iterates over stored records.
    pub fn iter(&self) -> impl Iterator<Item = (SubId, &StoredSub)> {
        self.meta.iter().map(|(&id, s)| (id, &**s))
    }

    /// Inserts (or refreshes) a subscription. Purges expired entries first
    /// so that the peak metric reflects live subscriptions only. Returns
    /// `false` if `id` was already stored (the refresh still updates the
    /// expiry).
    pub fn insert(&mut self, id: SubId, stored: StoredSub, now: SimTime) -> bool {
        self.purge_expired(now);
        if stored.expires != SimTime::MAX {
            self.expiry.push(Reverse((stored.expires, id)));
            self.shrink_expiry_heap();
        }
        if let Some(existing) = self.meta.get_mut(&id) {
            // Refresh: the physical entry is untouched. Clones the record
            // only if a match handle is still holding it.
            Arc::make_mut(existing).expires = stored.expires;
            return false;
        }
        match &mut self.covering {
            Some(table) => table.insert(&mut self.engine, id, &stored.sub),
            None => {
                self.engine.insert(id, stored.sub.clone());
            }
        }
        self.meta.insert(id, Arc::new(stored));
        self.peak = self.peak.max(self.meta.len());
        true
    }

    /// Inserts a batch of subscriptions at once, returning the number that
    /// were fresh (not refreshes).
    ///
    /// Behaviourally identical to calling [`SubscriptionStore::insert`]
    /// per item, but fresh subscriptions go through the covering table's
    /// sort-based bulk build, which pays the group-search cost once per
    /// distinct shape instead of once per subscription. Ids already stored
    /// — or repeated within the batch — fall back to the sequential
    /// refresh path.
    pub fn insert_bulk(&mut self, items: Vec<(SubId, StoredSub)>, now: SimTime) -> usize {
        self.purge_expired(now);
        let mut fresh: Vec<(SubId, StoredSub)> = Vec::with_capacity(items.len());
        let mut seen: HashSet<SubId> = HashSet::with_capacity(items.len());
        let mut refreshes: Vec<(SubId, StoredSub)> = Vec::new();
        for (id, stored) in items {
            if self.meta.contains_key(&id) || !seen.insert(id) {
                refreshes.push((id, stored));
            } else {
                fresh.push((id, stored));
            }
        }
        for (id, stored) in &fresh {
            if stored.expires != SimTime::MAX {
                self.expiry.push(Reverse((stored.expires, *id)));
            }
        }
        self.shrink_expiry_heap();
        match &mut self.covering {
            Some(table) => {
                let refs: Vec<(SubId, &Subscription)> =
                    fresh.iter().map(|(id, s)| (*id, &s.sub)).collect();
                table.insert_bulk(&mut self.engine, &refs);
            }
            None => {
                for (id, stored) in &fresh {
                    self.engine.insert(*id, stored.sub.clone());
                }
            }
        }
        let inserted = fresh.len();
        self.meta.reserve(fresh.len());
        for (id, stored) in fresh {
            self.meta.insert(id, Arc::new(stored));
        }
        self.peak = self.peak.max(self.meta.len());
        for (id, stored) in refreshes {
            self.insert(id, stored, now);
        }
        inserted
    }

    /// Removes a subscription (unsubscription), returning its record.
    pub fn remove(&mut self, id: SubId) -> Option<StoredSub> {
        let rc = self.meta.remove(&id)?;
        match &mut self.covering {
            Some(table) => table.remove(&mut self.engine, id, &rc.sub),
            None => {
                self.engine.remove(id);
            }
        }
        Some(Arc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()))
    }

    /// Drops every subscription whose expiry has passed. Returns the number
    /// purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut purged = 0;
        while let Some(&Reverse((expires, id))) = self.expiry.peek() {
            if expires > now {
                break;
            }
            self.expiry.pop();
            // The entry is stale if the sub was removed or re-inserted with
            // a later expiry.
            let live = self.meta.get(&id).is_some_and(|s| s.expires <= now);
            if live {
                let rc = self.meta.remove(&id).expect("checked above");
                match &mut self.covering {
                    Some(table) => table.remove(&mut self.engine, id, &rc.sub),
                    None => {
                        self.engine.remove(id);
                    }
                }
                purged += 1;
            }
        }
        purged
    }

    /// Rebuilds the expiry heap when stale entries dominate. Refreshes and
    /// removals leave `(expiry, id)` entries behind for ids whose record
    /// changed or vanished (e.g. lease-refresh loops over covered
    /// subscriptions); without an occasional sweep the heap would grow
    /// without bound relative to the live population.
    fn shrink_expiry_heap(&mut self) {
        if self.expiry.len() <= 2 * self.meta.len() + 64 {
            return;
        }
        let meta = &self.meta;
        let mut entries = std::mem::take(&mut self.expiry).into_vec();
        entries.retain(|&Reverse((t, id))| meta.get(&id).is_some_and(|s| s.expires == t));
        self.expiry = entries.into();
    }

    /// Pre-sizes the store for a bulk installation of roughly `subs`
    /// subscriptions, so installation pays one up-front reservation
    /// instead of incremental growth reallocations. Only order-inert
    /// containers are reserved (the expiry heap pops by value and the id
    /// scratch is a plain vector), so stored state and match results are
    /// byte-identical with or without the call.
    pub fn reserve(&mut self, subs: usize) {
        if self.expiry.capacity() < subs {
            self.expiry.reserve(subs - self.expiry.len());
        }
        if self.scratch.capacity() < subs {
            self.scratch.reserve(subs - self.scratch.len());
        }
    }

    /// Grows every matching-path scratch buffer to its steady-state bound
    /// (all of them are capped by the stored-subscription count) so
    /// subsequent [`SubscriptionStore::match_event_into`] calls never
    /// reallocate. Matching warms the same buffers incrementally; this
    /// pre-faults a store that has not matched an event yet.
    pub fn warm(&mut self) {
        self.engine.warm();
        if let Some(table) = &mut self.covering {
            table.warm();
        }
        let need = self.meta.len();
        if self.scratch.capacity() < need {
            self.scratch.reserve(need - self.scratch.len());
        }
    }

    /// Writes all live subscriptions matched by `event` into `out`
    /// (cleared first). Purges expired entries first. Allocation-free at
    /// steady state: the id scratch, the engine scratch, and `out` are
    /// all reused, and each hit costs one `Arc` bump instead of a record
    /// clone. This is the store's single matching entry point; the
    /// engines' [`MatchEngine::matches`](crate::MatchEngine::matches)
    /// wrapper exists for tests and examples.
    pub fn match_event_into(
        &mut self,
        event: &Event,
        now: SimTime,
        out: &mut Vec<(SubId, Arc<StoredSub>)>,
    ) {
        out.clear();
        self.purge_expired(now);
        let mut ids = std::mem::take(&mut self.scratch);
        match &mut self.covering {
            Some(table) => table.matches_into(&mut self.engine, &self.meta, event, &mut ids),
            None => self.engine.matches_into(event, &mut ids),
        }
        for &id in &ids {
            out.push((id, Arc::clone(&self.meta[&id])));
        }
        self.scratch = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;
    use cbps_overlay::KeySpace;

    fn space() -> EventSpace {
        EventSpace::new(vec![AttributeDef::new("x", 1000)])
    }

    fn stored(lo: u64, hi: u64, expires: SimTime) -> StoredSub {
        let s = space();
        let keys = KeySpace::new(8);
        StoredSub {
            sub: Subscription::builder(&s)
                .range("x", lo, hi)
                .unwrap()
                .build()
                .unwrap(),
            subscriber: Peer {
                idx: 0,
                key: keys.key(1),
            },
            expires,
            sk: KeyRangeSet::of_key(keys, keys.key(2)),
            trace: TraceId::NONE,
            subgroups: 0,
        }
    }

    fn match_ids(st: &mut SubscriptionStore, e: &Event, now: SimTime) -> Vec<SubId> {
        let mut out = Vec::new();
        st.match_event_into(e, now, &mut out);
        out.iter().map(|(id, _)| *id).collect()
    }

    #[test]
    fn insert_and_match() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 100, SimTime::MAX), SimTime::ZERO);
        st.insert(SubId(2), stored(50, 60, SimTime::MAX), SimTime::ZERO);
        let ids = match_ids(&mut st, &Event::new_unchecked(vec![55]), SimTime::ZERO);
        assert_eq!(ids, vec![SubId(1), SubId(2)]);
        let ids = match_ids(&mut st, &Event::new_unchecked(vec![99]), SimTime::ZERO);
        assert_eq!(ids, vec![SubId(1)]);
    }

    /// `[50, 60] ⊆ [0, 100]`: with covering the two subscriptions share
    /// one physical entry, without it they do not — and the logical match
    /// sets are identical either way.
    #[test]
    fn covering_shares_physical_entries_without_changing_matches() {
        for (engine, covering, phys) in [
            (MatchEngineKind::Counting, true, 1),
            (MatchEngineKind::Counting, false, 2),
            (MatchEngineKind::Sorted, true, 1),
            (MatchEngineKind::Sorted, false, 2),
        ] {
            let mut st = SubscriptionStore::with_options(&space(), engine, covering);
            assert_eq!(st.match_engine(), engine);
            st.insert(SubId(1), stored(0, 100, SimTime::MAX), SimTime::ZERO);
            st.insert(SubId(2), stored(50, 60, SimTime::MAX), SimTime::ZERO);
            assert_eq!(st.len(), 2);
            assert_eq!(
                st.physical_len(),
                phys,
                "engine {engine:?} covering {covering}"
            );
            assert_eq!(
                match_ids(&mut st, &Event::new_unchecked(vec![55]), SimTime::ZERO),
                vec![SubId(1), SubId(2)]
            );
            // 99 matches only the representative's own shape: the covered
            // member must be re-verified and filtered out.
            assert_eq!(
                match_ids(&mut st, &Event::new_unchecked(vec![99]), SimTime::ZERO),
                vec![SubId(1)]
            );
            // Un-cover: removing the representative's subscription keeps
            // the covered one matching.
            assert!(st.remove(SubId(1)).is_some());
            assert_eq!(
                match_ids(&mut st, &Event::new_unchecked(vec![55]), SimTime::ZERO),
                vec![SubId(2)]
            );
            assert!(match_ids(&mut st, &Event::new_unchecked(vec![99]), SimTime::ZERO).is_empty());
        }
    }

    /// A broader subscription arriving second absorbs the existing group
    /// (reverse covering) instead of creating a new physical entry.
    #[test]
    fn reverse_absorption_widens_existing_group() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(50, 60, SimTime::MAX), SimTime::ZERO);
        st.insert(SubId(2), stored(40, 80, SimTime::MAX), SimTime::ZERO);
        assert_eq!(st.physical_len(), 1);
        assert_eq!(
            match_ids(&mut st, &Event::new_unchecked(vec![70]), SimTime::ZERO),
            vec![SubId(2)]
        );
        assert_eq!(
            match_ids(&mut st, &Event::new_unchecked(vec![55]), SimTime::ZERO),
            vec![SubId(1), SubId(2)]
        );
    }

    /// Covered subscriptions expire independently of their representative.
    #[test]
    fn covered_subscription_expiry_is_independent() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(
            SubId(1),
            stored(0, 100, SimTime::from_secs(10)),
            SimTime::ZERO,
        );
        st.insert(
            SubId(2),
            stored(50, 60, SimTime::from_secs(100)),
            SimTime::ZERO,
        );
        assert_eq!(st.physical_len(), 1);
        assert_eq!(st.purge_expired(SimTime::from_secs(11)), 1);
        assert_eq!(st.len(), 1);
        assert_eq!(
            match_ids(
                &mut st,
                &Event::new_unchecked(vec![55]),
                SimTime::from_secs(11)
            ),
            vec![SubId(2)]
        );
        assert_eq!(st.purge_expired(SimTime::from_secs(101)), 1);
        assert_eq!(st.len(), 0);
        assert_eq!(st.physical_len(), 0);
        assert_eq!(st.peak(), 2);
    }

    /// Lease-refresh loops must not grow the expiry heap without bound:
    /// stale `(expiry, id)` entries are swept once they dominate.
    #[test]
    fn expiry_heap_sheds_stale_refresh_entries() {
        let mut st = SubscriptionStore::new(&space());
        for round in 0..1000u64 {
            st.insert(
                SubId(1),
                stored(0, 10, SimTime::from_secs(1000 + round)),
                SimTime::ZERO,
            );
        }
        assert_eq!(st.len(), 1);
        assert!(
            st.expiry.len() <= 2 * st.len() + 64,
            "heap kept {} entries for {} live subs",
            st.expiry.len(),
            st.len()
        );
        // The surviving entry is the *current* expiry: purging at the old
        // deadlines drops nothing, at the refreshed one drops the sub.
        assert_eq!(st.purge_expired(SimTime::from_secs(1500)), 0);
        assert_eq!(st.len(), 1);
        assert_eq!(st.purge_expired(SimTime::from_secs(2000)), 1);
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn duplicate_insert_reports_false_and_refreshes_expiry() {
        let mut st = SubscriptionStore::new(&space());
        assert!(st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(5)),
            SimTime::ZERO
        ));
        assert!(!st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(50)),
            SimTime::ZERO
        ));
        assert_eq!(st.len(), 1);
        // The refreshed expiry keeps it alive past the original deadline.
        st.purge_expired(SimTime::from_secs(10));
        assert_eq!(st.len(), 1);
        st.purge_expired(SimTime::from_secs(51));
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn expiry_ordering_and_peak() {
        let mut st = SubscriptionStore::new(&space());
        for i in 0..10u64 {
            st.insert(
                SubId(i),
                stored(0, 10, SimTime::from_secs(10 + i)),
                SimTime::ZERO,
            );
        }
        assert_eq!(st.peak(), 10);
        assert_eq!(st.purge_expired(SimTime::from_secs(14)), 5); // 10..14
        assert_eq!(st.len(), 5);
        // Peak is a high-water mark: unaffected by purges.
        assert_eq!(st.peak(), 10);
        // Matching also purges.
        let hits = match_ids(
            &mut st,
            &Event::new_unchecked(vec![5]),
            SimTime::from_secs(100),
        );
        assert!(hits.is_empty());
        assert_eq!(st.len(), 0);
    }

    #[test]
    fn never_expiring_subscriptions_stay() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 10, SimTime::MAX), SimTime::ZERO);
        st.purge_expired(SimTime::from_secs(1_000_000));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_is_unsubscription() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 10, SimTime::MAX), SimTime::ZERO);
        assert!(st.remove(SubId(1)).is_some());
        assert!(st.remove(SubId(1)).is_none());
        assert!(match_ids(&mut st, &Event::new_unchecked(vec![5]), SimTime::ZERO).is_empty());
    }

    #[test]
    fn insert_purges_before_counting_peak() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(
            SubId(1),
            stored(0, 10, SimTime::from_secs(1)),
            SimTime::ZERO,
        );
        st.insert(
            SubId(2),
            stored(0, 10, SimTime::from_secs(1)),
            SimTime::ZERO,
        );
        assert_eq!(st.peak(), 2);
        // Both lapsed; inserting at t=10 must not report a peak of 3.
        st.insert(
            SubId(3),
            stored(0, 10, SimTime::MAX),
            SimTime::from_secs(10),
        );
        assert_eq!(st.len(), 1);
        assert_eq!(st.peak(), 2);
    }

    /// Bulk insertion is observationally identical to sequential
    /// insertion: same logical/physical counts and same match sets, on a
    /// random workload with heavy shape duplication, before and after
    /// removing a slice of the population.
    #[test]
    fn bulk_insert_matches_sequential_build() {
        use cbps_rng::Rng;
        let s = EventSpace::new(vec![
            AttributeDef::new("a", 40),
            AttributeDef::new("b", 40),
            AttributeDef::new("c", 40),
        ]);
        let random_sub = |rng: &mut Rng| loop {
            let mut b = Subscription::builder(&s);
            for name in ["a", "b", "c"] {
                // Small domains + frequent wildcards force duplicate
                // shapes, covering chains, and reverse absorptions.
                if rng.gen_range(0u32..3) > 0 {
                    let lo = rng.gen_range(0u64..40);
                    let hi = rng.gen_range(lo..40);
                    b = b.range(name, lo, hi).unwrap();
                }
            }
            if let Ok(sub) = b.build() {
                return sub;
            }
        };
        for engine in [MatchEngineKind::Counting, MatchEngineKind::Sorted] {
            let mut rng = Rng::seed_from_u64(0xb01d);
            let items: Vec<(SubId, StoredSub)> = (0..600)
                .map(|i| {
                    let mut rec = stored(0, 0, SimTime::MAX);
                    rec.sub = random_sub(&mut rng);
                    (SubId(i), rec)
                })
                .collect();
            let mut seq = SubscriptionStore::with_options(&s, engine, true);
            for (id, rec) in items.clone() {
                seq.insert(id, rec, SimTime::ZERO);
            }
            let mut bulk = SubscriptionStore::with_options(&s, engine, true);
            assert_eq!(bulk.insert_bulk(items, SimTime::ZERO), 600);
            let probe = |seq: &mut SubscriptionStore, bulk: &mut SubscriptionStore| {
                assert_eq!(bulk.len(), seq.len());
                assert_eq!(bulk.physical_len(), seq.physical_len());
                let mut rng = Rng::seed_from_u64(0xeeee);
                for case in 0..300 {
                    let e = Event::new_unchecked((0..3).map(|_| rng.gen_range(0u64..40)).collect());
                    assert_eq!(
                        match_ids(bulk, &e, SimTime::ZERO),
                        match_ids(seq, &e, SimTime::ZERO),
                        "case {case}"
                    );
                }
            };
            probe(&mut seq, &mut bulk);
            // Member bookkeeping must survive churn identically.
            for i in (0..600).step_by(3) {
                assert_eq!(
                    bulk.remove(SubId(i)).is_some(),
                    seq.remove(SubId(i)).is_some()
                );
            }
            probe(&mut seq, &mut bulk);
        }
    }

    /// Bulk insertion routes already-stored ids and within-batch repeats
    /// through the refresh path instead of double-registering them.
    #[test]
    fn bulk_insert_refreshes_duplicates() {
        let mut st = SubscriptionStore::new(&space());
        st.insert(SubId(1), stored(0, 100, SimTime::MAX), SimTime::ZERO);
        let fresh = st.insert_bulk(
            vec![
                (SubId(1), stored(0, 100, SimTime::from_secs(5))),
                (SubId(2), stored(50, 60, SimTime::MAX)),
                (SubId(2), stored(50, 60, SimTime::from_secs(9))),
            ],
            SimTime::ZERO,
        );
        assert_eq!(fresh, 1);
        assert_eq!(st.len(), 2);
        assert_eq!(st.get(SubId(1)).unwrap().expires, SimTime::from_secs(5));
        assert_eq!(st.get(SubId(2)).unwrap().expires, SimTime::from_secs(9));
        // Refreshed ids keep a single physical registration: both lapse
        // cleanly.
        st.purge_expired(SimTime::from_secs(10));
        assert_eq!(st.len(), 0);
        assert_eq!(st.physical_len(), 0);
    }
}

//! The overlay-backend abstraction behind [`PubSubNetwork`](crate::PubSubNetwork).
//!
//! The paper claims (§3.1, footnote 1) the pub/sub infrastructure "can use
//! any overlay routing scheme". The *node* logic has always been
//! overlay-neutral via [`cbps_overlay::OverlayServices`]; this trait makes
//! the *deployment* layer neutral too: everything the system façade needs
//! from a substrate — its node type, a converged-network constructor, a
//! way to reach the hosted application, and the churn entry points — so a
//! single generic `PubSubNetwork<B>` serves Chord, Pastry, and any future
//! substrate (a Kademlia sketch, an idealized one-hop overlay) without a
//! twin façade.

use std::fmt;
use std::sync::Arc;

use cbps_overlay::{
    build_stable, ChordNode, Envelope, KeySpace, OverlayConfig, OverlayServices, OverlayTimer,
    Peer, RingView, RoutingState,
};
use cbps_sim::{Context, NetConfig, Node, Simulator};

use crate::config::PubSubConfig;
use crate::msg::{PubSubMsg, PubSubTimer};
use crate::node::PubSubNode;

/// The simulator context type a backend's node runs in (all backends share
/// the wire envelope and timer types, so deployment code is monomorphic in
/// everything but the routing substrate).
pub type BackendCtx<'c> = Context<'c, Envelope<PubSubMsg>, OverlayTimer<PubSubTimer>>;

/// A structured-overlay substrate the pub/sub deployment layer can run on.
///
/// Implementations provide the glue between the generic
/// [`PubSubNetwork`](crate::PubSubNetwork) façade and one substrate's node
/// type: configuration, converged bootstrap, application access, and (where
/// supported) dynamic-membership operations.
pub trait OverlayBackend: fmt::Debug + Sized + 'static {
    /// Human-readable backend name (CLI selection, reports).
    const NAME: &'static str;

    /// Whether the substrate supports dynamic membership (join, leave,
    /// crash recovery). Backends built statically (converged-network mode)
    /// set this to `false`; the churn entry points then panic.
    const SUPPORTS_CHURN: bool;

    /// Substrate configuration (key space, routing parameters).
    type Config: Clone + fmt::Debug;

    /// The substrate's simulator node hosting a [`PubSubNode`]. `Send` so
    /// the sharded engine may hand shards to worker threads.
    type Node: Node<Msg = Envelope<PubSubMsg>, Timer = OverlayTimer<PubSubTimer>>
        + fmt::Debug
        + Send;

    /// The evaluation-default configuration (the paper's parameters).
    fn paper_default() -> Self::Config;

    /// The key space of a configuration (validated against the ak-mapping).
    fn key_space(cfg: &Self::Config) -> KeySpace;

    /// The same configuration over a different key space. Used by the
    /// deployment layer to widen the ring for node counts the paper's
    /// 13-bit space cannot hold.
    fn with_key_space(cfg: Self::Config, keys: KeySpace) -> Self::Config;

    /// Pre-faults any lazily allocated substrate-level storage on a node
    /// (e.g. the Chord location cache) so the next routing step performs no
    /// heap allocation. Default: nothing to warm.
    fn warm_overlay(_node: &mut Self::Node) {}

    /// How many replicas the substrate can place (bounds
    /// [`PubSubConfig::replication`]): the successor-list / leaf-set
    /// length.
    fn replication_capacity(cfg: &Self::Config) -> usize;

    /// Builds a converged network of `apps.len()` nodes (node `i` hosts
    /// `apps[i]`) plus the global ring view.
    fn build(
        net: NetConfig,
        cfg: &Self::Config,
        apps: Vec<PubSubNode>,
    ) -> (Simulator<Self::Node>, RingView);

    /// The hosted pub/sub application of a node.
    fn app(node: &Self::Node) -> &PubSubNode;

    /// Exclusive access to a node's hosted pub/sub state.
    fn app_mut(node: &mut Self::Node) -> &mut PubSubNode;

    /// A node's identity.
    fn me(node: &Self::Node) -> Peer;

    /// Runs an application-level call against a node with a live
    /// overlay-neutral service handle.
    fn app_call<R>(
        node: &mut Self::Node,
        ctx: &mut BackendCtx<'_>,
        f: impl FnOnce(&mut PubSubNode, &mut dyn OverlayServices<PubSubMsg, PubSubTimer>) -> R,
    ) -> R;

    /// Starts a graceful departure (state push + neighbor relinking).
    /// Only called when [`Self::SUPPORTS_CHURN`].
    fn start_leave(node: &mut Self::Node, ctx: &mut BackendCtx<'_>);

    /// Creates a fresh, not-yet-joined node. Only called when
    /// [`Self::SUPPORTS_CHURN`].
    fn new_node(cfg: &Self::Config, me: Peer, app: PubSubNode) -> Self::Node;

    /// Starts the join protocol through `bootstrap`. Only called when
    /// [`Self::SUPPORTS_CHURN`].
    fn start_join(node: &mut Self::Node, bootstrap: Peer, ctx: &mut BackendCtx<'_>);
}

/// The Chord substrate of [`cbps_overlay`]: finger-table routing with
/// location caching, dynamic membership, successor-list replication.
#[derive(Clone, Copy, Debug)]
pub struct ChordBackend;

impl OverlayBackend for ChordBackend {
    const NAME: &'static str = "chord";
    const SUPPORTS_CHURN: bool = true;

    type Config = OverlayConfig;
    type Node = ChordNode<PubSubNode>;

    fn paper_default() -> OverlayConfig {
        OverlayConfig::paper_default()
    }

    fn key_space(cfg: &OverlayConfig) -> KeySpace {
        cfg.space
    }

    fn with_key_space(cfg: OverlayConfig, keys: KeySpace) -> OverlayConfig {
        cfg.with_space(keys)
    }

    fn warm_overlay(node: &mut Self::Node) {
        node.routing_mut().warm();
    }

    fn replication_capacity(cfg: &OverlayConfig) -> usize {
        cfg.succ_list_len
    }

    fn build(
        net: NetConfig,
        cfg: &OverlayConfig,
        apps: Vec<PubSubNode>,
    ) -> (Simulator<Self::Node>, RingView) {
        build_stable(net, *cfg, apps)
    }

    fn app(node: &Self::Node) -> &PubSubNode {
        node.app()
    }

    fn app_mut(node: &mut Self::Node) -> &mut PubSubNode {
        node.app_mut()
    }

    fn me(node: &Self::Node) -> Peer {
        node.me()
    }

    fn app_call<R>(
        node: &mut Self::Node,
        ctx: &mut BackendCtx<'_>,
        f: impl FnOnce(&mut PubSubNode, &mut dyn OverlayServices<PubSubMsg, PubSubTimer>) -> R,
    ) -> R {
        node.app_call(ctx, f)
    }

    fn start_leave(node: &mut Self::Node, ctx: &mut BackendCtx<'_>) {
        node.start_leave(ctx);
    }

    fn new_node(cfg: &OverlayConfig, me: Peer, app: PubSubNode) -> Self::Node {
        ChordNode::new(RoutingState::new(*cfg, me), app)
    }

    fn start_join(node: &mut Self::Node, bootstrap: Peer, ctx: &mut BackendCtx<'_>) {
        node.start_join(bootstrap, ctx);
    }
}

/// The pub/sub deployment over the Chord substrate (what plain
/// `PubSubNetwork` resolves to).
pub type ChordPubSub = crate::PubSubNetwork<ChordBackend>;

/// Fresh per-node application state for a network of `n` nodes running
/// the given matching engine.
pub(crate) fn fresh_apps(
    cfg: &Arc<PubSubConfig>,
    n: usize,
    engine: cbps_sim::MatchEngineKind,
) -> Vec<PubSubNode> {
    (0..n)
        .map(|_| PubSubNode::with_engine(Arc::clone(cfg), engine))
        .collect()
}

//! The user-facing system façade: a whole simulated deployment — overlay,
//! pub/sub layer and clock — behind one handle.

use std::sync::Arc;

use cbps_overlay::{Peer, RingView};
use cbps_sim::{
    Engine, MatchEngineKind, Metrics, NetConfig, NodeIdx, ObsMode, SimDuration, SimTime,
    StageRecord, TraceId,
};

use crate::backend::{fresh_apps, ChordBackend, OverlayBackend};
use crate::config::PubSubConfig;
use crate::error::{ConfigError, PubSubError};
use crate::event::{Event, EventId};
use crate::msg::DeliveredNote;
use crate::node::PubSubNode;
use crate::rendezvous::LoadSample;
use crate::subscription::{SubId, Subscription};

/// A complete simulated content-based pub/sub deployment.
///
/// Wraps the simulator, one structured-overlay substrate (the
/// [`OverlayBackend`] type parameter; Chord by default) and the pub/sub
/// layer; exposes the application operations of §4.1 (`sub`, `unsub`,
/// `pub`, `notify` via [`PubSubNetwork::delivered`]) together with clock
/// control and measurement access. The aliases
/// [`ChordPubSub`](crate::ChordPubSub) and `PastryPubSub` (in
/// `cbps-pastry`) name the two bundled substrates.
///
/// # Examples
///
/// ```
/// use cbps::{Event, PubSubConfig, PubSubNetwork, Subscription};
///
/// let mut net = PubSubNetwork::builder()
///     .nodes(50)
///     .seed(7)
///     .build()?;
/// let space = net.config().space.clone();
///
/// // Node 3 subscribes to a0 ∈ [100_000, 200_000].
/// let sub = Subscription::builder(&space).range("a0", 100_000, 200_000)?.build()?;
/// let sub_id = net.node(3)?.subscribe(sub, None)?;
/// net.run_for_secs(5);
///
/// // Node 9 publishes a matching event.
/// let event = Event::new(&space, vec![150_000, 1, 2, 3])?;
/// let event_id = net.node(9)?.publish(event)?;
/// net.run_for_secs(5);
///
/// let notes = net.delivered(3);
/// assert_eq!(notes.len(), 1);
/// assert_eq!(notes[0].sub_id, sub_id);
/// assert_eq!(notes[0].event_id, event_id);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PubSubNetwork<B: OverlayBackend = ChordBackend> {
    sim: Engine<B::Node>,
    ring: RingView,
    cfg: Arc<PubSubConfig>,
    overlay_cfg: B::Config,
    /// Matching engine newly joining nodes are created with (the same one
    /// the initial population runs).
    match_engine: MatchEngineKind,
    /// Next control-step time of the adaptive rendezvous loop
    /// ([`SimTime::MAX`] under the static policy, so the loop never runs).
    rdv_next_control: SimTime,
    /// Per-node cumulative work observed at the previous control step
    /// (window loads are deltas against this).
    rdv_prev_work: Vec<u64>,
}

/// Builder for [`PubSubNetwork`]. Start from
/// [`PubSubNetwork::builder`] (Chord) or
/// [`PubSubNetworkBuilder::new`] with an explicit backend type.
#[derive(Debug)]
pub struct PubSubNetworkBuilder<B: OverlayBackend = ChordBackend> {
    nodes: usize,
    net: NetConfig,
    overlay: B::Config,
    pubsub: PubSubConfig,
    obs: ObsMode,
}

impl<B: OverlayBackend> Clone for PubSubNetworkBuilder<B> {
    fn clone(&self) -> Self {
        PubSubNetworkBuilder {
            nodes: self.nodes,
            net: self.net,
            overlay: self.overlay.clone(),
            pubsub: self.pubsub.clone(),
            obs: self.obs,
        }
    }
}

/// A borrowed view of one node of a [`PubSubNetwork`], obtained through
/// [`PubSubNetwork::node`]. Scopes the application operations (`sub`,
/// `unsub`, `pub`, delivered-notification access) to a node whose index
/// has already been validated.
#[derive(Debug)]
pub struct NodeHandle<'a, B: OverlayBackend = ChordBackend> {
    net: &'a mut PubSubNetwork<B>,
    idx: NodeIdx,
}

impl<B: OverlayBackend> NodeHandle<'_, B> {
    /// The node's index in the network.
    pub fn idx(&self) -> NodeIdx {
        self.idx
    }

    /// `true` while this node has not crashed or left.
    pub fn is_alive(&self) -> bool {
        self.net.is_alive(self.idx)
    }

    /// Issues a subscription from this node (see
    /// [`PubSubNetwork::subscribe`]).
    ///
    /// # Errors
    ///
    /// [`PubSubError::InvalidSubscription`] when the subscription was
    /// built for an event space of a different dimension count.
    pub fn subscribe(
        &mut self,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        self.net.subscribe(self.idx, sub, ttl)
    }

    /// Withdraws a subscription previously issued by this node. Returns
    /// `false` if this node never issued `id` (or already unsubscribed).
    pub fn unsubscribe(&mut self, id: SubId) -> Result<bool, PubSubError> {
        self.net.unsubscribe(self.idx, id)
    }

    /// Publishes an event from this node (see [`PubSubNetwork::publish`]).
    ///
    /// # Errors
    ///
    /// [`PubSubError::DimensionMismatch`] when the event carries a
    /// different number of attribute values than the network's space.
    pub fn publish(&mut self, event: Event) -> Result<EventId, PubSubError> {
        self.net.publish(self.idx, event)
    }

    /// Notifications received so far by this node as a subscriber.
    pub fn delivered(&self) -> &[DeliveredNote] {
        self.net.delivered(self.idx)
    }
}

impl PubSubNetwork {
    /// Starts configuring a Chord-backed network (defaults: paper
    /// parameters, 500 nodes). For another substrate, start from
    /// [`PubSubNetworkBuilder::new`] with the backend type, e.g.
    /// `PubSubNetworkBuilder::<PastryBackend>::new()`.
    pub fn builder() -> PubSubNetworkBuilder {
        PubSubNetworkBuilder::new()
    }
}

impl<B: OverlayBackend> PubSubNetwork<B> {
    /// The shared pub/sub configuration.
    pub fn config(&self) -> &PubSubConfig {
        &self.cfg
    }

    /// The substrate's overlay configuration.
    pub fn overlay_config(&self) -> &B::Config {
        &self.overlay_cfg
    }

    /// The global ring view (oracle; protocol logic never uses it).
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Number of nodes (including crashed ones).
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// `true` when the network has no nodes (never: construction requires
    /// at least one).
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Exclusive access to the run's metrics (e.g. to clear between
    /// measurement phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.sim.metrics_mut()
    }

    /// Direct access to the underlying simulation engine (advanced
    /// scenarios: crash/revive, custom timers).
    pub fn sim_mut(&mut self) -> &mut Engine<B::Node> {
        &mut self.sim
    }

    /// Number of event-loop shards driving this network (1 = the classic
    /// single-threaded engine).
    pub fn shards(&self) -> usize {
        self.sim.shard_count()
    }

    /// The pub/sub state of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn app(&self, node: NodeIdx) -> &PubSubNode {
        B::app(self.sim.node(node))
    }

    /// Notifications received so far by `node` as a subscriber.
    pub fn delivered(&self, node: NodeIdx) -> &[DeliveredNote] {
        self.app(node).delivered()
    }

    /// Drains `node`'s delivered-notification log in place, retaining
    /// allocated capacity (see [`PubSubNode::clear_delivered`]).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn clear_delivered(&mut self, node: NodeIdx) {
        B::app_mut(self.sim.node_mut(node)).clear_delivered();
    }

    /// Grows `node`'s hot-path buffers to their steady-state bounds (see
    /// [`PubSubNode::warm`]). Measurement harnesses call this after their
    /// warmup pass so cold-start growth is not charged to the measured
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn warm_node(&mut self, node: NodeIdx) {
        let n = self.sim.node_mut(node);
        B::app_mut(n).warm();
        B::warm_overlay(n);
    }

    /// Pre-sizes every node's rendezvous-side containers for a bulk
    /// installation of `subs` subscriptions total (see
    /// [`PubSubNode::reserve_workload`]). Each subscription lands on one
    /// rendezvous range split across a handful of nodes, so the per-node
    /// estimate is `4 * subs / n`; over- or under-estimating only shifts
    /// when growth happens, never what is stored or matched.
    pub fn reserve_workload(&mut self, subs: usize) {
        let n = self.len().max(1);
        let per_node = (subs * 4).div_ceil(n).min(subs);
        for node in 0..self.len() {
            B::app_mut(self.sim.node_mut(node)).reserve_workload(per_node);
        }
    }

    /// A validated handle on one node, scoping the application operations
    /// to it: `net.node(3)?.subscribe(sub, None)?`.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds.
    pub fn node(&mut self, node: NodeIdx) -> Result<NodeHandle<'_, B>, PubSubError> {
        self.check_node(node)?;
        Ok(NodeHandle {
            net: self,
            idx: node,
        })
    }

    fn check_node(&self, node: NodeIdx) -> Result<(), PubSubError> {
        let nodes = self.sim.len();
        if node >= nodes {
            return Err(PubSubError::UnknownNode { node, nodes });
        }
        Ok(())
    }

    /// Issues a subscription from `node` with an optional TTL (overriding
    /// the configured default).
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds;
    /// [`PubSubError::InvalidSubscription`] when the subscription was
    /// built for an event space of a different dimension count.
    pub fn subscribe(
        &mut self,
        node: NodeIdx,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        self.check_node(node)?;
        let expected = self.cfg.space.dims();
        if sub.dims() != expected {
            return Err(PubSubError::InvalidSubscription {
                expected,
                got: sub.dims(),
            });
        }
        Ok(self.sim.with_node(node, |n, ctx| {
            B::app_call(n, ctx, |app, svc| app.subscribe(sub, ttl, svc))
        }))
    }

    /// Validates and issues a subscription built from raw constraint slots.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`Subscription::from_constraints`].
    pub fn try_subscribe(
        &mut self,
        node: NodeIdx,
        constraints: Vec<Option<crate::subscription::Constraint>>,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        let sub = Subscription::from_constraints(&self.cfg.space, constraints)?;
        self.subscribe(node, sub, ttl)
    }

    /// Issues a disjunction of subscriptions from `node`: the subscriber
    /// is notified when an event matches **any** of them (§3.2:
    /// "disjunctive constraints can be treated as separate
    /// subscriptions"). Returns one id per disjunct; subscriber-side
    /// deduplication guarantees at most one notification per
    /// `(disjunct, event)` pair, so an event matching several disjuncts
    /// notifies once per matching disjunct.
    ///
    /// # Errors
    ///
    /// Stops at the first disjunct that fails validation (earlier
    /// disjuncts stay issued).
    pub fn subscribe_any(
        &mut self,
        node: NodeIdx,
        subs: impl IntoIterator<Item = Subscription>,
        ttl: Option<SimDuration>,
    ) -> Result<Vec<SubId>, PubSubError> {
        subs.into_iter()
            .map(|sub| self.subscribe(node, sub, ttl))
            .collect()
    }

    /// Withdraws a subscription previously issued by `node`. Returns
    /// `Ok(false)` if `node` never issued `id` (or already unsubscribed).
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds.
    pub fn unsubscribe(&mut self, node: NodeIdx, id: SubId) -> Result<bool, PubSubError> {
        self.check_node(node)?;
        Ok(self.sim.with_node(node, |n, ctx| {
            B::app_call(n, ctx, |app, svc| app.unsubscribe(id, svc))
        }))
    }

    /// Publishes an event from `node`.
    ///
    /// # Errors
    ///
    /// [`PubSubError::UnknownNode`] when `node` is out of bounds;
    /// [`PubSubError::DimensionMismatch`] when the event carries a
    /// different number of attribute values than the network's space.
    pub fn publish(&mut self, node: NodeIdx, event: Event) -> Result<EventId, PubSubError> {
        self.check_node(node)?;
        let expected = self.cfg.space.dims();
        if event.dims() != expected {
            return Err(PubSubError::DimensionMismatch {
                expected,
                got: event.dims(),
            });
        }
        Ok(self.sim.with_node(node, |n, ctx| {
            B::app_call(n, ctx, |app, svc| app.publish(event, svc))
        }))
    }

    /// Validates and publishes an event from raw values.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Event::new`].
    pub fn try_publish(&mut self, node: NodeIdx, values: Vec<u64>) -> Result<EventId, PubSubError> {
        let event = Event::new(&self.cfg.space, values)?;
        self.publish(node, event)
    }

    /// The active observability mode.
    pub fn observability(&self) -> ObsMode {
        self.sim.metrics().obs().mode()
    }

    /// Switches observability (causal tracing + stage histograms) on or
    /// off. Observation never alters protocol behavior: the same run
    /// produces identical results under every mode.
    pub fn set_observability(&mut self, mode: ObsMode) {
        self.sim.metrics_mut().obs_mut().set_mode(mode);
    }

    /// The recorded stage chain of one operation — every `(stage, node,
    /// time)` record carrying `trace`, in recording order. Empty unless
    /// observability was enabled while the operation ran.
    pub fn explain(&self, trace: TraceId) -> Vec<StageRecord> {
        self.sim.metrics().obs().log().chain(trace)
    }

    /// Advances the simulation to the given absolute time.
    ///
    /// Under the adaptive rendezvous policy the advance is chunked at the
    /// policy's control interval: the engine runs to each control time,
    /// pauses (all shards at the barrier, no event in flight below the
    /// control time), takes one [control step](crate::RendezvousPolicy),
    /// and resumes. Decisions therefore depend only on node state at
    /// deterministic absolute times — identical across schedulers and
    /// shard counts.
    pub fn run_until(&mut self, t: SimTime) {
        while self.rdv_next_control <= t {
            let at = self.rdv_next_control;
            self.sim.run_until(at);
            self.rendezvous_control_step(at);
            self.rdv_next_control = at + self.cfg.rendezvous.params().interval;
        }
        self.sim.run_until(t);
    }

    /// Advances the simulation by `secs` simulated seconds.
    pub fn run_for_secs(&mut self, secs: u64) {
        let t = self.sim.now() + SimDuration::from_secs(secs);
        self.run_until(t);
    }

    /// Runs until the event queue drains (only terminates when no periodic
    /// timers are armed).
    pub fn run_to_quiescence(&mut self) {
        self.sim.run();
    }

    /// Cumulative rendezvous work units (publications processed + matches
    /// produced) of every node — the load signal of the adaptive
    /// rendezvous layer, also useful for load-skew reporting.
    pub fn rendezvous_work_counts(&self) -> Vec<u64> {
        self.sim
            .nodes()
            .map(|(_, n)| B::app(n).rendezvous_work())
            .collect()
    }

    /// Adaptive-rendezvous totals so far: `(splits, merges)`. Always
    /// `(0, 0)` under the static policy.
    pub fn rendezvous_counters(&self) -> (u64, u64) {
        self.cfg.rendezvous.counters()
    }

    /// One adaptive-rendezvous control step at time `at`: sample every
    /// live node's work window, let the policy advance entry lifecycles
    /// and detect hotspots, then run the requested store sweeps on the
    /// covering nodes. Runs strictly between engine segments, so the
    /// split table every node reads within a segment is constant.
    fn rendezvous_control_step(&mut self, at: SimTime) {
        let works = self.rendezvous_work_counts();
        if self.rdv_prev_work.len() < works.len() {
            self.rdv_prev_work.resize(works.len(), 0);
        }
        let space = self.ring.space();
        // Coverage arcs come from the ring oracle: one sample per live
        // initial node. Nodes joined after build are excluded from
        // hotspot detection (the oracle has no arc for them) but still
        // participate in sweeps below.
        let peers = self.ring.peers();
        let mut loads = Vec::with_capacity(peers.len());
        for (i, p) in peers.iter().enumerate() {
            if !self.sim.is_alive(p.idx) {
                continue;
            }
            let pred = peers[(i + peers.len() - 1) % peers.len()];
            loads.push(LoadSample {
                window: works[p.idx].saturating_sub(self.rdv_prev_work[p.idx]),
                arc_start: pred.key,
                arc_end: p.key,
            });
        }
        let outcome = self.cfg.rendezvous.control_step(space, at, &loads);
        self.rdv_prev_work = works;
        if outcome.splits > 0 {
            self.sim
                .metrics_mut()
                .add("rendezvous.splits", outcome.splits);
        }
        if outcome.merges > 0 {
            self.sim
                .metrics_mut()
                .add("rendezvous.merges", outcome.merges);
        }
        for op in &outcome.sweeps {
            let targets = self.cfg.rendezvous.sweep_targets(space, op);
            let mut idxs: Vec<NodeIdx> = self
                .ring
                .covering_nodes(&targets)
                .iter()
                .map(|p| p.idx)
                .collect();
            // Late joiners are absent from the oracle: offer them every
            // sweep (each node re-checks its own coverage and records).
            idxs.extend(self.ring.len()..self.sim.len());
            idxs.sort_unstable();
            idxs.dedup();
            let op = *op;
            for idx in idxs {
                if !self.sim.is_alive(idx) {
                    continue;
                }
                self.sim.with_node(idx, |n, ctx| {
                    B::app_call(n, ctx, |app, svc| app.rendezvous_sweep(&op, svc))
                });
            }
        }
    }

    /// Stored-subscription count of every node (rendezvous primaries).
    pub fn stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| B::app(n).store().len())
            .collect()
    }

    /// Peak stored-subscription count per node — the metric of Figures 6
    /// and 8.
    pub fn peak_stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| B::app(n).store().peak())
            .collect()
    }

    /// `true` while `node` has not crashed or left.
    pub fn is_alive(&self, node: NodeIdx) -> bool {
        self.sim.is_alive(node)
    }

    /// Crashes a node abruptly (fail-stop).
    pub fn crash(&mut self, node: NodeIdx) {
        self.sim.crash(node);
    }

    /// Makes `node` leave gracefully: state is pushed to its successor and
    /// its neighbors are relinked before it goes silent.
    ///
    /// # Panics
    ///
    /// Panics on a substrate with static membership
    /// (`B::SUPPORTS_CHURN == false`).
    pub fn leave(&mut self, node: NodeIdx) {
        assert!(
            B::SUPPORTS_CHURN,
            "the {} substrate has static membership: leave() is unsupported",
            B::NAME
        );
        self.sim.with_node(node, |n, ctx| B::start_leave(n, ctx));
        self.sim.crash(node);
    }

    /// Adds a brand-new node that joins through `bootstrap`. Requires the
    /// overlay to have maintenance enabled (stabilization integrates the
    /// joiner). Returns the new node's index.
    ///
    /// # Panics
    ///
    /// Panics on a substrate with static membership
    /// (`B::SUPPORTS_CHURN == false`).
    pub fn join_new_node(&mut self, key_seed: &str, bootstrap: NodeIdx) -> NodeIdx {
        assert!(
            B::SUPPORTS_CHURN,
            "the {} substrate has static membership: join_new_node() is unsupported",
            B::NAME
        );
        let space = B::key_space(&self.overlay_cfg);
        let mut key = cbps_overlay::hash::key_of_bytes(space, key_seed.as_bytes());
        while self.sim.nodes().any(|(_, n)| B::me(n).key == key) {
            key = space.add(key, 1);
        }
        let idx = self.sim.len();
        let me = Peer { idx, key };
        let node = B::new_node(
            &self.overlay_cfg,
            me,
            PubSubNode::with_engine(Arc::clone(&self.cfg), self.match_engine),
        );
        let added = self.sim.add_node(node);
        debug_assert_eq!(added, idx);
        let boot = B::me(self.sim.node(bootstrap));
        self.sim
            .with_node(idx, |n, ctx| B::start_join(n, boot, ctx));
        idx
    }
}

impl<B: OverlayBackend> Default for PubSubNetworkBuilder<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: OverlayBackend> PubSubNetworkBuilder<B> {
    /// Starts a builder with the substrate's paper-default configuration
    /// and 500 nodes.
    pub fn new() -> Self {
        PubSubNetworkBuilder {
            nodes: 500,
            net: NetConfig::new(0),
            overlay: B::paper_default(),
            pubsub: PubSubConfig::paper_default(),
            obs: ObsMode::Off,
        }
    }

    /// Sets the number of nodes (validated in
    /// [`build`](PubSubNetworkBuilder::build)).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the observability mode the network starts with (default:
    /// [`ObsMode::Off`]).
    pub fn observability(mut self, mode: ObsMode) -> Self {
        self.obs = mode;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.net.seed = seed;
        self
    }

    /// Replaces the network-level configuration (delay model, loss).
    pub fn net_config(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the number of event-loop shards (default 1, the classic
    /// single-threaded engine; `0` is coerced to 1). Values above 1 run
    /// the conservative parallel engine, which
    /// [`build`](PubSubNetworkBuilder::build) rejects unless the delay
    /// model has a strictly positive minimum delay.
    pub fn shards(mut self, n: usize) -> Self {
        self.net = self.net.with_shards(n);
        self
    }

    /// Sets the subscription-matching engine every node runs (default:
    /// the counting index). Both engines deliver identical notification
    /// sets; see [`MatchEngineKind`].
    pub fn match_engine(mut self, engine: MatchEngineKind) -> Self {
        self.net = self.net.with_match_engine(engine);
        self
    }

    /// Replaces the substrate's overlay configuration.
    pub fn overlay(mut self, overlay: B::Config) -> Self {
        self.overlay = overlay;
        self
    }

    /// Replaces the pub/sub configuration.
    pub fn pubsub(mut self, pubsub: PubSubConfig) -> Self {
        self.pubsub = pubsub;
        self
    }

    /// Builds the network with a converged ring, validating the
    /// configuration first.
    ///
    /// # Errors
    ///
    /// [`ConfigError::NoNodes`] for an empty network;
    /// [`ConfigError::KeySpaceMismatch`] when the pub/sub mapping's key
    /// space differs from the overlay's;
    /// [`ConfigError::ReplicationTooLarge`] when the replication factor
    /// exceeds the successor-list length;
    /// [`ConfigError::ZeroFlushPeriod`] when a buffered or collecting
    /// notify mode has a zero period;
    /// [`ConfigError::TooManyDimensions`] when the sorted matching engine
    /// is selected for an event space of more than 64 dimensions.
    pub fn build(self) -> Result<PubSubNetwork<B>, ConfigError> {
        self.validate()?;
        Ok(self.build_unchecked())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.pubsub.mapping.key_space() != B::key_space(&self.overlay) {
            return Err(ConfigError::KeySpaceMismatch {
                mapping_bits: self.pubsub.mapping.key_space().bits(),
                overlay_bits: B::key_space(&self.overlay).bits(),
            });
        }
        if self.pubsub.replication > B::replication_capacity(&self.overlay) {
            return Err(ConfigError::ReplicationTooLarge {
                replication: self.pubsub.replication,
                succ_list_len: B::replication_capacity(&self.overlay),
            });
        }
        match self.pubsub.notify_mode {
            crate::config::NotifyMode::Buffered { period }
            | crate::config::NotifyMode::Collecting { period }
                if period.is_zero() =>
            {
                return Err(ConfigError::ZeroFlushPeriod)
            }
            _ => {}
        }
        if self.net.shards > 1 && self.net.lookahead().is_zero() {
            return Err(ConfigError::ZeroLookahead);
        }
        if self.net.match_engine == MatchEngineKind::Sorted && self.pubsub.space.dims() > 64 {
            return Err(ConfigError::TooManyDimensions {
                dims: self.pubsub.space.dims(),
                limit: 64,
            });
        }
        if self.pubsub.rendezvous.is_adaptive() {
            let p = self.pubsub.rendezvous.params();
            let keys = self.pubsub.mapping.key_space();
            // The mirror spacing 2^m/(G+1) must leave room for at least
            // one key per mirror position, and the control loop must
            // advance time.
            let degenerate =
                p.groups == 0 || u64::from(p.groups) + 1 > keys.size() || p.interval.is_zero();
            if degenerate {
                return Err(ConfigError::BadRendezvousTuning { groups: p.groups });
            }
        }
        Ok(())
    }

    /// Builds without validating — the escape hatch for callers that have
    /// already validated (or deliberately construct a degenerate network).
    ///
    /// # Panics
    ///
    /// Panics on a zero-node network; other invalid configurations
    /// produce a network whose behavior is unspecified (replicas silently
    /// dropped, misrouted rendezvous, busy flush loops).
    pub fn build_unchecked(self) -> PubSubNetwork<B> {
        assert!(self.nodes > 0, "a network needs at least one node");
        let cfg = self.pubsub.into_shared();
        let apps = fresh_apps(&cfg, self.nodes, self.net.match_engine);
        let (sim, ring) = B::build(self.net, &self.overlay, apps);
        let rdv_next_control = if cfg.rendezvous.is_adaptive() {
            SimTime::ZERO + cfg.rendezvous.params().interval
        } else {
            SimTime::MAX
        };
        let mut net = PubSubNetwork {
            sim: Engine::from_simulator(sim, self.net.shards),
            ring,
            cfg,
            overlay_cfg: self.overlay,
            match_engine: self.net.match_engine,
            rdv_next_control,
            rdv_prev_work: Vec::new(),
        };
        if self.obs.enabled() {
            net.set_observability(self.obs);
        }
        net
    }
}

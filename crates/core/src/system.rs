//! The user-facing system façade: a whole simulated deployment — overlay,
//! pub/sub layer and clock — behind one handle.

use std::sync::Arc;

use cbps_overlay::{build_stable, ChordNode, OverlayConfig, Peer, RingView, RoutingState};
use cbps_sim::{Metrics, NetConfig, NodeIdx, SimDuration, SimTime, Simulator};

use crate::config::PubSubConfig;
use crate::error::PubSubError;
use crate::event::{Event, EventId};
use crate::msg::DeliveredNote;
use crate::node::PubSubNode;
use crate::subscription::{SubId, Subscription};

/// A complete simulated content-based pub/sub deployment.
///
/// Wraps the simulator, the Chord overlay and the pub/sub layer; exposes
/// the application operations of §4.1 (`sub`, `unsub`, `pub`, `notify` via
/// [`PubSubNetwork::delivered`]) together with clock control and
/// measurement access.
///
/// # Examples
///
/// ```
/// use cbps::{Event, PubSubConfig, PubSubNetwork, Subscription};
///
/// let mut net = PubSubNetwork::builder()
///     .nodes(50)
///     .seed(7)
///     .build();
/// let space = net.config().space.clone();
///
/// // Node 3 subscribes to a0 ∈ [100_000, 200_000].
/// let sub = Subscription::builder(&space).range("a0", 100_000, 200_000)?.build()?;
/// let sub_id = net.subscribe(3, sub, None);
/// net.run_for_secs(5);
///
/// // Node 9 publishes a matching event.
/// let event = Event::new(&space, vec![150_000, 1, 2, 3])?;
/// let event_id = net.publish(9, event);
/// net.run_for_secs(5);
///
/// let notes = net.delivered(3);
/// assert_eq!(notes.len(), 1);
/// assert_eq!(notes[0].sub_id, sub_id);
/// assert_eq!(notes[0].event_id, event_id);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Debug)]
pub struct PubSubNetwork {
    sim: Simulator<ChordNode<PubSubNode>>,
    ring: RingView,
    cfg: Arc<PubSubConfig>,
    overlay_cfg: OverlayConfig,
}

/// Builder for [`PubSubNetwork`].
#[derive(Clone, Debug)]
pub struct PubSubNetworkBuilder {
    nodes: usize,
    net: NetConfig,
    overlay: OverlayConfig,
    pubsub: PubSubConfig,
}

impl PubSubNetwork {
    /// Starts configuring a network (defaults: paper parameters, 500
    /// nodes).
    pub fn builder() -> PubSubNetworkBuilder {
        PubSubNetworkBuilder {
            nodes: 500,
            net: NetConfig::new(0),
            overlay: OverlayConfig::paper_default(),
            pubsub: PubSubConfig::paper_default(),
        }
    }

    /// The shared pub/sub configuration.
    pub fn config(&self) -> &PubSubConfig {
        &self.cfg
    }

    /// The overlay configuration.
    pub fn overlay_config(&self) -> &OverlayConfig {
        &self.overlay_cfg
    }

    /// The global ring view (oracle; protocol logic never uses it).
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Number of nodes (including crashed ones).
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// `true` when the network has no nodes (never: construction requires
    /// at least one).
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Exclusive access to the run's metrics (e.g. to clear between
    /// measurement phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.sim.metrics_mut()
    }

    /// Direct access to the underlying simulator (advanced scenarios:
    /// crash/revive, custom timers).
    pub fn sim_mut(&mut self) -> &mut Simulator<ChordNode<PubSubNode>> {
        &mut self.sim
    }

    /// The pub/sub state of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn app(&self, node: NodeIdx) -> &PubSubNode {
        self.sim.node(node).app()
    }

    /// Notifications received so far by `node` as a subscriber.
    pub fn delivered(&self, node: NodeIdx) -> &[DeliveredNote] {
        self.app(node).delivered()
    }

    /// Issues a subscription from `node` with an optional TTL (overriding
    /// the configured default).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn subscribe(
        &mut self,
        node: NodeIdx,
        sub: Subscription,
        ttl: Option<SimDuration>,
    ) -> SubId {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.subscribe(sub, ttl, svc))
        })
    }

    /// Validates and issues a subscription built from raw constraint slots.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`Subscription::from_constraints`].
    pub fn try_subscribe(
        &mut self,
        node: NodeIdx,
        constraints: Vec<Option<crate::subscription::Constraint>>,
        ttl: Option<SimDuration>,
    ) -> Result<SubId, PubSubError> {
        let sub = Subscription::from_constraints(&self.cfg.space, constraints)?;
        Ok(self.subscribe(node, sub, ttl))
    }

    /// Issues a disjunction of subscriptions from `node`: the subscriber
    /// is notified when an event matches **any** of them (§3.2:
    /// "disjunctive constraints can be treated as separate
    /// subscriptions"). Returns one id per disjunct; subscriber-side
    /// deduplication guarantees at most one notification per
    /// `(disjunct, event)` pair, so an event matching several disjuncts
    /// notifies once per matching disjunct.
    pub fn subscribe_any(
        &mut self,
        node: NodeIdx,
        subs: impl IntoIterator<Item = Subscription>,
        ttl: Option<SimDuration>,
    ) -> Vec<SubId> {
        subs.into_iter()
            .map(|sub| self.subscribe(node, sub, ttl))
            .collect()
    }

    /// Withdraws a subscription previously issued by `node`.
    pub fn unsubscribe(&mut self, node: NodeIdx, id: SubId) -> bool {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.unsubscribe(id, svc))
        })
    }

    /// Publishes an event from `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn publish(&mut self, node: NodeIdx, event: Event) -> EventId {
        self.sim.with_node(node, |n, ctx| {
            n.app_call(ctx, |app, svc| app.publish(event, svc))
        })
    }

    /// Validates and publishes an event from raw values.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Event::new`].
    pub fn try_publish(&mut self, node: NodeIdx, values: Vec<u64>) -> Result<EventId, PubSubError> {
        let event = Event::new(&self.cfg.space, values)?;
        Ok(self.publish(node, event))
    }

    /// Advances the simulation to the given absolute time.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Advances the simulation by `secs` simulated seconds.
    pub fn run_for_secs(&mut self, secs: u64) {
        let t = self.sim.now() + SimDuration::from_secs(secs);
        self.sim.run_until(t);
    }

    /// Runs until the event queue drains (only terminates when no periodic
    /// timers are armed).
    pub fn run_to_quiescence(&mut self) {
        self.sim.run();
    }

    /// Stored-subscription count of every node (rendezvous primaries).
    pub fn stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| n.app().store().len())
            .collect()
    }

    /// Peak stored-subscription count per node — the metric of Figures 6
    /// and 8.
    pub fn peak_stored_counts(&self) -> Vec<usize> {
        self.sim
            .nodes()
            .map(|(_, n)| n.app().store().peak())
            .collect()
    }

    /// `true` while `node` has not crashed or left.
    pub fn is_alive(&self, node: NodeIdx) -> bool {
        self.sim.is_alive(node)
    }

    /// Crashes a node abruptly (fail-stop).
    pub fn crash(&mut self, node: NodeIdx) {
        self.sim.crash(node);
    }

    /// Makes `node` leave gracefully: state is pushed to its successor and
    /// its neighbors are relinked before it goes silent.
    pub fn leave(&mut self, node: NodeIdx) {
        self.sim.with_node(node, |n, ctx| n.start_leave(ctx));
        self.sim.crash(node);
    }

    /// Adds a brand-new node that joins through `bootstrap`. Requires the
    /// overlay to have maintenance enabled (stabilization integrates the
    /// joiner). Returns the new node's index.
    pub fn join_new_node(&mut self, key_seed: &str, bootstrap: NodeIdx) -> NodeIdx {
        let space = self.overlay_cfg.space;
        let mut key = cbps_overlay::hash::key_of_bytes(space, key_seed.as_bytes());
        while self.sim.nodes().any(|(_, n)| n.me().key == key) {
            key = space.add(key, 1);
        }
        let idx = self.sim.len();
        let me = Peer { idx, key };
        let node = ChordNode::new(
            RoutingState::new(self.overlay_cfg, me),
            PubSubNode::new(Arc::clone(&self.cfg)),
        );
        let added = self.sim.add_node(node);
        debug_assert_eq!(added, idx);
        let boot = self.sim.node(bootstrap).me();
        self.sim.with_node(idx, |n, ctx| n.start_join(boot, ctx));
        idx
    }
}

impl PubSubNetworkBuilder {
    /// Sets the number of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "a network needs at least one node");
        self.nodes = n;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.net.seed = seed;
        self
    }

    /// Replaces the network-level configuration (delay model, loss).
    pub fn net_config(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replaces the overlay configuration.
    pub fn overlay(mut self, overlay: OverlayConfig) -> Self {
        self.overlay = overlay;
        self
    }

    /// Replaces the pub/sub configuration.
    pub fn pubsub(mut self, pubsub: PubSubConfig) -> Self {
        self.pubsub = pubsub;
        self
    }

    /// Builds the network with a converged ring.
    ///
    /// # Panics
    ///
    /// Panics if the pub/sub mapping's key space differs from the
    /// overlay's, or the replication factor exceeds the successor-list
    /// length.
    pub fn build(self) -> PubSubNetwork {
        assert_eq!(
            self.pubsub.mapping.key_space(),
            self.overlay.space,
            "pub/sub mapping and overlay must share one key space"
        );
        assert!(
            self.pubsub.replication <= self.overlay.succ_list_len,
            "replication factor {} exceeds successor-list length {}",
            self.pubsub.replication,
            self.overlay.succ_list_len
        );
        let cfg = self.pubsub.into_shared();
        let apps: Vec<PubSubNode> = (0..self.nodes)
            .map(|_| PubSubNode::new(Arc::clone(&cfg)))
            .collect();
        let (sim, ring) = build_stable(self.net, self.overlay, apps);
        PubSubNetwork {
            sim,
            ring,
            cfg,
            overlay_cfg: self.overlay,
        }
    }
}

//! The stateless *ak-mappings* of §4.2: `SK : Σ → 2^K` and `EK : Ω → 2^K`.
//!
//! All three mappings are built from the paper's scaling hash
//! `h_i(x) = x · 2^l / |Ω_i|`, optionally coarsened by *discretization*
//! (§4.3.3): values are first snapped to intervals of a configurable width
//! so that a whole interval shares one key.
//!
//! Every mapping satisfies the **mapping intersection rule**: if an event
//! `e` matches a subscription `σ`, then `EK(e) ∩ SK(σ) ≠ ∅` — verified by
//! property tests in this module.

use std::fmt;

use cbps_overlay::{KeyRange, KeyRangeSet, KeySpace};

use crate::event::Event;
use crate::space::EventSpace;
use crate::subscription::Subscription;

/// Which of the paper's three mappings to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Mapping 1: every constraint hashed independently with `l = m`;
    /// subscriptions go to the union of all constraint images, events map
    /// by a single attribute.
    AttributeSplit,
    /// Mapping 2: the key's `m` bits are partitioned across attributes
    /// (`l = ⌊m/d⌋`); subscriptions map to the concatenation product,
    /// events to a single concatenated key.
    #[default]
    KeySpaceSplit,
    /// Mapping 3: subscriptions map only by their most selective
    /// constraint; events map by every attribute separately (d keys).
    SelectiveAttribute,
}

impl fmt::Display for MappingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingKind::AttributeSplit => write!(f, "mapping 1 (Attribute-Split)"),
            MappingKind::KeySpaceSplit => write!(f, "mapping 2 (Key Space-Split)"),
            MappingKind::SelectiveAttribute => write!(f, "mapping 3 (Selective-Attribute)"),
        }
    }
}

/// How Attribute-Split picks the single attribute an event maps by
/// (`EK(e) = {h_i(e.a_i)} for some i`, §4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EventKeyChoice {
    /// Always use dimension 0 (the paper's experiments: "each publication
    /// was mapped to one key"). Subscriptions leaving dimension 0
    /// unconstrained are pinned by a full-range image on it.
    #[default]
    FirstAttribute,
    /// Choose the dimension by hashing the event's content — spreads
    /// publication load across dimensions, at the cost of subscriptions
    /// having to cover *every* wildcard dimension with a full-range image.
    ContentHash,
}

/// A configured ak-mapping: the pure functions `SK` and `EK`.
///
/// # Examples
///
/// The worked example of Figure 3: a 2-attribute space with values `0..8`,
/// a 4-bit key space, `σ = {a₁ < 2, 3 < a₂ < 7}`, `e = {a₁ = 1, a₂ = 6}`.
///
/// ```
/// use cbps::{AkMapping, AttributeDef, Event, EventSpace, MappingKind, Subscription};
/// use cbps_overlay::KeySpace;
///
/// let space = EventSpace::new(vec![
///     AttributeDef::new("a1", 8),
///     AttributeDef::new("a2", 8),
/// ]);
/// let keys = KeySpace::new(4);
/// let sub = Subscription::builder(&space)
///     .range("a1", 0, 1)?
///     .range("a2", 4, 6)?
///     .build()?;
/// let event = Event::new(&space, vec![1, 6])?;
///
/// // Mapping 1 (Figure 3b): SK = {0000, 0001} ∪ {0100, 0101, 0110}.
/// let m1 = AkMapping::new(MappingKind::AttributeSplit, &space, keys);
/// let sk = m1.sk(&sub);
/// assert_eq!(sk.count(), 5);
/// let ek = m1.ek(&event);
/// assert_eq!(ek.count(), 1);
/// assert!(ek.contains(keys.key(2))); // h(1) = 1·2⁴/8 = 2
/// assert!(ek.intersects(&sk)); // the mapping intersection rule
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AkMapping {
    kind: MappingKind,
    key_space: KeySpace,
    /// `|Ω_i|` per dimension.
    domain_sizes: Vec<u64>,
    /// Discretization interval width (1 = exact values, §4.3.3).
    discretization: u64,
    ek_choice: EventKeyChoice,
    /// Bits per attribute for Key Space-Split, `⌊m/d⌋`.
    split_bits: u32,
    /// Per-dimension circular offsets added after hashing — the "nearly
    /// static" mapping adjustments of §4.2 for accommodating hotspots.
    /// All zeros by default.
    rotations: Vec<u64>,
}

impl AkMapping {
    /// Configures a mapping for `space` onto `key_space` with no
    /// discretization.
    ///
    /// # Panics
    ///
    /// Panics for Key Space-Split when the key has fewer bits than the
    /// space has dimensions (`⌊m/d⌋ = 0`).
    pub fn new(kind: MappingKind, space: &EventSpace, key_space: KeySpace) -> Self {
        let d = space.dims() as u32;
        let split_bits = key_space.bits() / d;
        if kind == MappingKind::KeySpaceSplit {
            assert!(
                split_bits >= 1,
                "key space-split needs at least one key bit per attribute (m={}, d={d})",
                key_space.bits()
            );
        }
        AkMapping {
            kind,
            key_space,
            domain_sizes: space.attrs().iter().map(|a| a.size()).collect(),
            discretization: 1,
            ek_choice: EventKeyChoice::default(),
            split_bits,
            rotations: vec![0; space.dims()],
        }
    }

    /// Sets the discretization interval width (§4.3.3). Width 1 means no
    /// discretization.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_discretization(mut self, width: u64) -> Self {
        assert!(width > 0, "discretization width must be positive");
        self.discretization = width;
        self
    }

    /// Sets how Attribute-Split chooses the event's mapping attribute.
    pub fn with_ek_choice(mut self, choice: EventKeyChoice) -> Self {
        self.ek_choice = choice;
        self
    }

    /// Sets per-dimension circular key offsets — the paper's "nearly
    /// static" mapping variation (§4.2): infrequently changing the mapping
    /// functions relocates hotspots without touching stored-state
    /// semantics, as long as every node applies the same epoch's offsets.
    /// The mapping intersection rule is preserved for any offsets.
    ///
    /// # Panics
    ///
    /// Panics if `rotations.len()` differs from the dimension count.
    pub fn with_rotations(mut self, rotations: Vec<u64>) -> Self {
        assert_eq!(
            rotations.len(),
            self.rotations.len(),
            "one rotation per dimension required"
        );
        self.rotations = rotations;
        self
    }

    /// The configured mapping kind.
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// The key space being mapped onto.
    pub fn key_space(&self) -> KeySpace {
        self.key_space
    }

    /// The discretization interval width.
    pub fn discretization(&self) -> u64 {
        self.discretization
    }

    /// The scaling hash `h_i` with output width `bits`:
    /// `h(x) = ⌊x/w⌋·w · 2^l / |Ω_i|` (discretized values share a slot).
    fn scale(&self, dim: usize, value: u64, bits: u32) -> u64 {
        let snapped = value / self.discretization * self.discretization;
        let size = u128::from(self.domain_sizes[dim]);
        let scaled = (u128::from(snapped) << bits) / size;
        // The input is validated to value < |Ω_i|, so scaled < 2^bits; the
        // min is defensive for unchecked events.
        (scaled as u64).min((1u64 << bits) - 1)
    }

    /// `H_i` of a constraint interval as the contiguous span
    /// `[h(lo), h(hi)]`. Exact whenever the hash is compressive
    /// (`w·2^bits ≤ |Ω_i|`, the paper's standing assumption `2^l < |Ω_i|`);
    /// otherwise a superset of the true image.
    fn image(&self, dim: usize, lo: u64, hi: u64, bits: u32) -> (u64, u64) {
        (self.scale(dim, lo, bits), self.scale(dim, hi, bits))
    }

    /// The dimension's rotation offset reduced into a `bits`-wide space.
    fn rotation(&self, dim: usize, bits: u32) -> u64 {
        self.rotations[dim] & ((1u64 << bits) - 1)
    }

    /// Inserts the exact image `H_i([lo, hi])` into `set` (full `m`-bit key
    /// space), applying the dimension's rotation. When the hash stretches
    /// (stride between consecutive discretization intervals exceeds one
    /// key) the image is sparse and is enumerated exactly up to 4096
    /// intervals; beyond that, the contiguous superset is used — safe for
    /// the intersection rule, slightly pessimistic for storage.
    fn insert_image(&self, dim: usize, lo: u64, hi: u64, set: &mut KeyRangeSet) {
        let m = self.key_space.bits();
        let w = self.discretization;
        let rot = self.rotation(dim, m);
        let intervals = hi / w - lo / w + 1;
        let stretches = (u128::from(w) << m) > u128::from(self.domain_sizes[dim]);
        if stretches && intervals <= 4096 {
            for iv in (lo / w)..=(hi / w) {
                let k = self.scale(dim, iv * w, m).wrapping_add(rot);
                set.insert_key(self.key_space, self.key_space.key(k));
            }
        } else {
            let (a, b) = self.image(dim, lo, hi, m);
            // The rotated image is still one circular range (wrap handled
            // by KeyRange).
            set.insert_range(
                self.key_space,
                KeyRange::new(
                    self.key_space.key(a.wrapping_add(rot)),
                    self.key_space.key(b.wrapping_add(rot)),
                ),
            );
        }
    }

    /// `SK(σ)`: the rendezvous keys a subscription is sent to and stored
    /// under.
    pub fn sk(&self, sub: &Subscription) -> KeyRangeSet {
        match self.kind {
            MappingKind::AttributeSplit => self.sk_attribute_split(sub),
            MappingKind::KeySpaceSplit => self.sk_key_space_split(sub),
            MappingKind::SelectiveAttribute => self.sk_selective(sub),
        }
    }

    /// `EK(e)`: the rendezvous keys an event is sent to and matched at.
    pub fn ek(&self, event: &Event) -> KeyRangeSet {
        match self.kind {
            MappingKind::AttributeSplit => {
                let i = self.event_dim(event);
                let m = self.key_space.bits();
                let k = self
                    .scale(i, event.value(i), m)
                    .wrapping_add(self.rotation(i, m));
                KeyRangeSet::of_key(self.key_space, self.key_space.key(k))
            }
            MappingKind::KeySpaceSplit => {
                let mask = (1u64 << self.split_bits) - 1;
                let mut concat = 0u64;
                for i in 0..event.dims() {
                    let slot = self
                        .scale(i, event.value(i), self.split_bits)
                        .wrapping_add(self.rotation(i, self.split_bits))
                        & mask;
                    concat = (concat << self.split_bits) | slot;
                }
                let key = self
                    .key_space
                    .key(concat << self.concat_shift(event.dims()));
                KeyRangeSet::of_key(self.key_space, key)
            }
            MappingKind::SelectiveAttribute => {
                let m = self.key_space.bits();
                let mut set = KeyRangeSet::new();
                for i in 0..event.dims() {
                    let k = self
                        .scale(i, event.value(i), m)
                        .wrapping_add(self.rotation(i, m));
                    set.insert_key(self.key_space, self.key_space.key(k));
                }
                set
            }
        }
    }

    /// The dimension Attribute-Split maps an event by.
    fn event_dim(&self, event: &Event) -> usize {
        match self.ek_choice {
            EventKeyChoice::FirstAttribute => 0,
            EventKeyChoice::ContentHash => {
                let mut h: u64 = 0xcbf29ce484222325;
                for &v in event.values() {
                    h ^= v;
                    h = h.wrapping_mul(0x100000001b3);
                }
                (h % event.dims() as u64) as usize
            }
        }
    }

    fn sk_attribute_split(&self, sub: &Subscription) -> KeyRangeSet {
        let m = self.key_space.bits();
        let mut set = KeyRangeSet::new();
        // Every constrained dimension contributes its image (the paper's
        // ⋃_i H_i(σ.c_i)).
        for (i, c) in sub.constraints().iter().enumerate() {
            if let Some(c) = c {
                self.insert_image(i, c.lo(), c.hi(), &mut set);
            }
        }
        // Dimensions EK may pick must be covered even when unconstrained
        // (full-range image), or matching events could miss the
        // subscription — the cost of partially defined subscriptions under
        // this mapping (§4.2).
        let must_cover: Vec<usize> = match self.ek_choice {
            EventKeyChoice::FirstAttribute => vec![0],
            EventKeyChoice::ContentHash => (0..sub.dims()).collect(),
        };
        for i in must_cover {
            if sub.constraint(i).is_none() {
                self.insert_image(i, 0, self.domain_sizes[i] - 1, &mut set);
            }
        }
        let _ = m;
        set
    }

    fn concat_shift(&self, dims: usize) -> u32 {
        self.key_space.bits() - self.split_bits * dims as u32
    }

    fn sk_key_space_split(&self, sub: &Subscription) -> KeyRangeSet {
        let d = sub.dims();
        let shift = self.concat_shift(d);
        let mask = (1u64 << self.split_bits) - 1;
        // Per-dimension circular slot runs: (start, width) where the run
        // is `start, start+1, …, start+width` modulo 2^l (rotation can
        // wrap it around the slot space).
        let slots: Vec<(u64, u64)> = (0..d)
            .map(|i| match sub.constraint(i) {
                Some(c) => {
                    let (a, b) = self.image(i, c.lo(), c.hi(), self.split_bits);
                    let start = a.wrapping_add(self.rotation(i, self.split_bits)) & mask;
                    (start, b - a)
                }
                None => (0, mask),
            })
            .collect();
        // Enumerate the concatenation product: odometer over the prefix
        // dimensions, one run insert per prefix for the final dimension.
        let mut set = KeyRangeSet::new();
        let mut prefix_offsets = vec![0u64; d.saturating_sub(1)];
        loop {
            let mut prefix = 0u64;
            for (i, &off) in prefix_offsets.iter().enumerate() {
                prefix = (prefix << self.split_bits) | ((slots[i].0 + off) & mask);
            }
            let (last_start, last_width) = slots[d - 1];
            if shift == 0 && last_start + last_width <= mask {
                // Contiguous run in key space.
                let lo = (prefix << self.split_bits) | last_start;
                let hi = (prefix << self.split_bits) | (last_start + last_width);
                set.insert_range(
                    self.key_space,
                    KeyRange::new(self.key_space.key(lo), self.key_space.key(hi)),
                );
            } else {
                // Spread with stride 2^shift (or a slot run that wraps):
                // insert each concatenation individually.
                for off in 0..=last_width {
                    let slot = (last_start + off) & mask;
                    let concat = (prefix << self.split_bits) | slot;
                    set.insert_key(self.key_space, self.key_space.key(concat << shift));
                }
            }
            // Advance the odometer over the prefix dimensions.
            let mut dim = prefix_offsets.len();
            loop {
                if dim == 0 {
                    return set;
                }
                dim -= 1;
                if prefix_offsets[dim] < slots[dim].1 {
                    prefix_offsets[dim] += 1;
                    for off in prefix_offsets.iter_mut().skip(dim + 1) {
                        *off = 0;
                    }
                    break;
                }
            }
        }
    }

    fn sk_selective(&self, sub: &Subscription) -> KeyRangeSet {
        // Fully-wildcard subscriptions are rejected at construction, so a
        // most selective dimension always exists.
        let s = most_selective_by_sizes(sub, &self.domain_sizes)
            .expect("subscription has a constraint");
        let c = sub
            .constraint(s)
            .expect("selected dimension is constrained");
        let mut set = KeyRangeSet::new();
        self.insert_image(s, c.lo(), c.hi(), &mut set);
        set
    }
}

/// Most selective constrained dimension given raw domain sizes (mirrors
/// [`Subscription::most_selective`] without needing the full `EventSpace`).
fn most_selective_by_sizes(sub: &Subscription, sizes: &[u64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, c) in sub.constraints().iter().enumerate() {
        let Some(c) = c else { continue };
        match best {
            None => best = Some(i),
            Some(b) => {
                let cb = sub.constraint(b).expect("best is constrained");
                let lhs = u128::from(c.span()) * u128::from(sizes[b]);
                let rhs = u128::from(cb.span()) * u128::from(sizes[i]);
                if lhs < rhs {
                    best = Some(i);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;
    use cbps_rng::Rng;

    /// The Figure 3 example space: 2 attributes over 0..8, 4-bit keys.
    fn fig3() -> (EventSpace, KeySpace, Subscription, Event) {
        let space = EventSpace::new(vec![AttributeDef::new("a1", 8), AttributeDef::new("a2", 8)]);
        let keys = KeySpace::new(4);
        let sub = Subscription::builder(&space)
            .range("a1", 0, 1)
            .unwrap()
            .range("a2", 4, 6)
            .unwrap()
            .build()
            .unwrap();
        let event = Event::new(&space, vec![1, 6]).unwrap();
        (space, keys, sub, event)
    }

    #[test]
    fn figure3_mapping1() {
        // Figure 3b writes keys as if h were the identity; with the
        // paper's actual scaling h(x) = x·2^m/|Ω| = 2x the images are
        // H(c1) = {h(0), h(1)} = {0, 2} and H(c2) = {8, 10, 12} — the same
        // *count* of 5 distinct keys the text reports.
        let (space, keys, sub, event) = fig3();
        let m = AkMapping::new(MappingKind::AttributeSplit, &space, keys);
        let sk = m.sk(&sub);
        let got: Vec<u64> = sk.iter_keys(keys).map(|k| k.value()).collect();
        assert_eq!(got, vec![0, 2, 8, 10, 12]);
        let ek = m.ek(&event);
        assert_eq!(ek.iter_keys(keys).next().unwrap().value(), 2); // h(1)
        assert!(ek.intersects(&sk));
    }

    #[test]
    fn figure3_mapping2() {
        let (space, keys, sub, event) = fig3();
        let m = AkMapping::new(MappingKind::KeySpaceSplit, &space, keys);
        // l = m/d = 2: H(c1) = {00}, H(c2) = {10, 11} (h(4)=1? check: 4·4/8
        // = 2 = 10₂, 6·4/8 = 3 = 11₂). Product = {0010, 0011}.
        let sk = m.sk(&sub);
        let got: Vec<u64> = sk.iter_keys(keys).map(|k| k.value()).collect();
        assert_eq!(got, vec![0b0010, 0b0011]);
        // EK(e) = h(1) ∘ h(6) = 00 ∘ 11 = 0011 (Figure 3c).
        let ek = m.ek(&event);
        assert_eq!(ek.iter_keys(keys).next().unwrap().value(), 0b0011);
        assert!(ek.intersects(&sk));
    }

    #[test]
    fn figure3_mapping3() {
        let (space, keys, sub, event) = fig3();
        let m = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        // c1 spans 2/8, c2 spans 3/8 → most selective is a1:
        // SK = {h(0), h(1)} = {0, 2}.
        let sk = m.sk(&sub);
        let got: Vec<u64> = sk.iter_keys(keys).map(|k| k.value()).collect();
        assert_eq!(got, vec![0, 2]);
        // EK maps by every attribute: {h(1), h(6)} = {2, 12}.
        let ek = m.ek(&event);
        let got: Vec<u64> = ek.iter_keys(keys).map(|k| k.value()).collect();
        assert_eq!(got, vec![2, 12]);
        assert!(ek.intersects(&sk));
    }

    #[test]
    fn paper_scale_key_counts() {
        // §5.2: with the paper's parameters a non-selective constraint of
        // width 30000 out of 1e6 values maps to ≈ 30000·8192/1e6 ≈ 245 keys
        // under l = m = 13.
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let m = AkMapping::new(MappingKind::AttributeSplit, &space, keys);
        // Constraint positions chosen so the four key-space images are
        // disjoint (they share one m-bit ring, §4.2).
        let sub = Subscription::builder(&space)
            .range("a0", 100_000, 130_000)
            .unwrap()
            .range("a1", 300_000, 329_999)
            .unwrap()
            .range("a2", 500_000, 529_999)
            .unwrap()
            .range("a3", 700_000, 729_999)
            .unwrap()
            .build()
            .unwrap();
        let per_constraint = 30_000.0 * 8192.0 / 1_000_001.0; // ≈ 245.7
        let total = m.sk(&sub).count() as f64;
        assert!(
            (total - 4.0 * per_constraint).abs() < 8.0,
            "got {total}, expected ≈ {}",
            4.0 * per_constraint
        );

        // Key Space-Split: l = 3 → each constraint's image spans ~0.25
        // slots, so the product is 1..=16 keys ("slightly over one key").
        let m2 = AkMapping::new(MappingKind::KeySpaceSplit, &space, keys);
        let c = m2.sk(&sub).count();
        assert!((1..=16).contains(&c), "KSS mapped to {c} keys");

        // Selective-Attribute: one constraint's image ≈ 245 keys.
        let m3 = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        let c = m3.sk(&sub).count() as f64;
        assert!((c - per_constraint).abs() < 3.0, "SA mapped to {c} keys");
    }

    #[test]
    fn selective_equality_maps_to_single_key() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let m = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        let sub = Subscription::builder(&space)
            .eq("a2", 777_000)
            .range("a0", 0, 500_000)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(m.sk(&sub).count(), 1);
    }

    #[test]
    fn discretization_shrinks_subscription_keys() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let exact = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        let coarse = exact.clone().with_discretization(1500);
        let sub = Subscription::builder(&space)
            .range("a0", 100_000, 115_000)
            .unwrap()
            .build()
            .unwrap();
        let exact_keys = exact.sk(&sub).count();
        let coarse_keys = coarse.sk(&sub).count();
        assert!(
            coarse_keys < exact_keys,
            "discretization did not reduce keys: {coarse_keys} vs {exact_keys}"
        );
        // The image is still non-empty and contiguous.
        assert!(coarse_keys >= 1);
    }

    #[test]
    fn ek_is_single_key_for_mappings_1_and_2() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let e = Event::new(&space, vec![5, 500_000, 999_999, 0]).unwrap();
        for kind in [MappingKind::AttributeSplit, MappingKind::KeySpaceSplit] {
            let m = AkMapping::new(kind, &space, keys);
            assert_eq!(m.ek(&e).count(), 1, "{kind}");
        }
        let m3 = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        let c = m3.ek(&e).count();
        assert!((1..=4).contains(&c), "selective EK size {c}");
    }

    #[test]
    fn kss_spreads_keys_across_whole_ring() {
        // m = 13, d = 4 → l = 3, shift = 1: concatenations are spread with
        // stride 2 instead of crowding the bottom half of the ring.
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let m = AkMapping::new(MappingKind::KeySpaceSplit, &space, keys);
        let hi_event =
            Event::new(&space, vec![1_000_000, 1_000_000, 1_000_000, 1_000_000]).unwrap();
        let k = m.ek(&hi_event).min_key(keys).unwrap();
        assert!(
            k.value() > keys.size() / 2,
            "max-valued event should map near the top of the ring, got {k}"
        );
    }

    #[test]
    fn rotations_relocate_the_hotspot_but_preserve_matching() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let sub = Subscription::builder(&space)
            .eq("a0", 0) // the Zipf-hot value
            .build()
            .unwrap();
        let event = Event::new(&space, vec![0, 1, 2, 3]).unwrap();
        let plain = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys);
        let rotated = plain.clone().with_rotations(vec![4096, 0, 0, 0]);
        // The rendezvous key moves by exactly the rotation...
        let k0 = plain.sk(&sub).min_key(keys).unwrap();
        let k1 = rotated.sk(&sub).min_key(keys).unwrap();
        assert_eq!(keys.add(k0, 4096), k1);
        // ...and events still meet subscriptions under the rotated epoch.
        assert!(rotated.ek(&event).intersects(&rotated.sk(&sub)));
    }

    #[test]
    #[should_panic(expected = "one rotation per dimension")]
    fn rotations_length_validated() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let _ = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys)
            .with_rotations(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one key bit per attribute")]
    fn kss_rejects_tiny_keys() {
        let space = EventSpace::paper_default();
        let _ = AkMapping::new(MappingKind::KeySpaceSplit, &space, KeySpace::new(3));
    }

    #[test]
    fn wildcard_dim_zero_is_pinned_for_attribute_split() {
        let space = EventSpace::paper_default();
        let keys = KeySpace::new(13);
        let m = AkMapping::new(MappingKind::AttributeSplit, &space, keys);
        // Subscription constrains only a3; EK uses a0 → SK must cover the
        // whole a0 image (the full ring) to preserve the intersection rule.
        let sub = Subscription::builder(&space).eq("a3", 5).build().unwrap();
        let sk = m.sk(&sub);
        let e = Event::new(&space, vec![123_456, 0, 0, 5]).unwrap();
        assert!(m.ek(&e).intersects(&sk));
    }

    /// Draws a small random space plus a matching (event, subscription)
    /// pair over it (seeded-loop port of the old proptest strategy).
    fn random_matching_pair(rng: &mut Rng) -> (EventSpace, Subscription, Event) {
        let d = rng.gen_range(2usize..5);
        let size = rng.gen_range(4u64..2000);
        let sizes: Vec<u64> = (0..d).map(|i| size + i as u64 * 13).collect();
        let values: Vec<u64> = sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
        let widths: Vec<f64> = (0..d).map(|_| rng.f64()).collect();
        let space = EventSpace::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| AttributeDef::new(format!("a{i}"), s))
                .collect(),
        );
        // Build a subscription whose constraints all admit the event (the
        // first dimension is always constrained so the subscription is
        // non-empty and EK dim 0 is live).
        let mut constraints = Vec::with_capacity(values.len());
        for (i, (&v, &w)) in values.iter().zip(&widths).enumerate() {
            let smax = sizes[i] - 1;
            let half = (w * sizes[i] as f64 / 4.0) as u64;
            if i == 0 || w > 0.3 {
                let lo = v.saturating_sub(half);
                let hi = (v + half).min(smax);
                constraints.push(Some(
                    crate::subscription::Constraint::range(lo, hi).unwrap(),
                ));
            } else {
                constraints.push(None);
            }
        }
        let sub = Subscription::from_constraints(&space, constraints).unwrap();
        let event = Event::new(&space, values).unwrap();
        (space, sub, event)
    }

    /// The intersection rule EK(e) ∩ SK(s) ≠ ∅ for every matching pair
    /// holds across all three mappings, discretization widths, event-key
    /// choices, and rotations (§4, Theorem 1 of DESIGN.md).
    #[test]
    fn intersection_rule_holds_for_all_mappings() {
        let mut rng = Rng::seed_from_u64(0x1573_5ec7);
        for case in 0..512 {
            let (space, sub, event) = random_matching_pair(&mut rng);
            assert!(sub.matches(&event), "case {case}: generator broke matching");
            let bits = rng.gen_range(4u32..14);
            let width = rng.gen_range(1u64..50);
            let ek_hash = rng.gen_bool(0.5);
            let rot_seed = if rng.gen_bool(0.5) {
                Some(rng.next_u64())
            } else {
                None
            };
            let keys = KeySpace::new(bits);
            for kind in [
                MappingKind::AttributeSplit,
                MappingKind::KeySpaceSplit,
                MappingKind::SelectiveAttribute,
            ] {
                if kind == MappingKind::KeySpaceSplit && bits / space.dims() as u32 == 0 {
                    continue;
                }
                let choice = if ek_hash {
                    EventKeyChoice::ContentHash
                } else {
                    EventKeyChoice::FirstAttribute
                };
                // Optional per-dimension rotations ("nearly static"
                // mapping variation) must never break the rule.
                let rotations: Vec<u64> = match rot_seed {
                    None => vec![0; space.dims()],
                    Some(seed) => (0..space.dims())
                        .map(|i| seed.rotate_left(i as u32 * 7) ^ (i as u64))
                        .collect(),
                };
                let m = AkMapping::new(kind, &space, keys)
                    .with_discretization(width)
                    .with_ek_choice(choice)
                    .with_rotations(rotations);
                let sk = m.sk(&sub);
                let ek = m.ek(&event);
                assert!(!ek.is_empty(), "case {case}: empty EK for {kind}");
                assert!(!sk.is_empty(), "case {case}: empty SK for {kind}");
                assert!(
                    ek.intersects(&sk),
                    "case {case}: intersection rule violated for {kind}: \
                     EK={ek} SK={sk} sub={sub} event={event}"
                );
            }
        }
    }

    /// Coarser discretization never inflates a subscription's key image
    /// (beyond the one-cell boundary slack).
    #[test]
    fn sk_images_are_monotone_in_discretization() {
        let mut rng = Rng::seed_from_u64(0x1573_5ec8);
        for case in 0..256 {
            let (space, sub, _event) = random_matching_pair(&mut rng);
            let w1 = rng.gen_range(1u64..20);
            let w2 = rng.gen_range(20u64..200);
            let keys = KeySpace::new(12);
            let fine = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys)
                .with_discretization(w1);
            let coarse = AkMapping::new(MappingKind::SelectiveAttribute, &space, keys)
                .with_discretization(w2);
            assert!(
                coarse.sk(&sub).count() <= fine.sk(&sub).count() + 1,
                "case {case}: coarse image larger than fine image"
            );
        }
    }
}

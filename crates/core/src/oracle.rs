//! A centralized reference matcher.
//!
//! The oracle sees every subscription and publication a test issues and
//! computes the ground-truth set of `(subscription, event)` notification
//! pairs by brute force, ignoring the distributed machinery entirely.
//! Integration tests compare the network's actual deliveries against it to
//! establish exactly-once logical delivery.

use std::collections::BTreeSet;

use cbps_sim::SimTime;

use crate::event::{Event, EventId};
use crate::subscription::{SubId, Subscription};

/// One subscription as the oracle sees it.
#[derive(Clone, Debug)]
struct OracleSub {
    id: SubId,
    sub: Subscription,
    issued: SimTime,
    expires: SimTime,
}

/// Ground-truth matcher for validating end-to-end delivery.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, Event, EventId, EventSpace, Oracle, SubId, Subscription};
/// use cbps_sim::SimTime;
///
/// let space = EventSpace::new(vec![AttributeDef::new("x", 100)]);
/// let mut oracle = Oracle::new();
/// let sub = Subscription::builder(&space).range("x", 10, 20)?.build()?;
/// oracle.add_sub(SubId(1), sub, SimTime::ZERO, SimTime::MAX);
/// oracle.add_pub(EventId(9), Event::new(&space, vec![15])?, SimTime::from_secs(1));
/// let expected = oracle.expected();
/// assert!(expected.contains(&(SubId(1), EventId(9))));
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    subs: Vec<OracleSub>,
    pubs: Vec<(EventId, Event, SimTime)>,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Records a subscription active from `issued` until `expires`.
    pub fn add_sub(&mut self, id: SubId, sub: Subscription, issued: SimTime, expires: SimTime) {
        self.subs.push(OracleSub {
            id,
            sub,
            issued,
            expires,
        });
    }

    /// Records an unsubscription: the subscription stops matching events
    /// published after `at`.
    pub fn remove_sub(&mut self, id: SubId, at: SimTime) {
        for s in &mut self.subs {
            if s.id == id {
                s.expires = s.expires.min(at);
            }
        }
    }

    /// Records a publication.
    pub fn add_pub(&mut self, id: EventId, event: Event, at: SimTime) {
        self.pubs.push((id, event, at));
    }

    /// The ground-truth notification pairs: every `(σ, e)` where `e ∈ σ`
    /// and `e` was published while `σ` was active.
    ///
    /// Timing caveat: the real system needs propagation time, so tests
    /// should separate subscription and publication phases by more than
    /// the maximal routing delay before comparing exactly.
    pub fn expected(&self) -> BTreeSet<(SubId, EventId)> {
        let mut out = BTreeSet::new();
        for (eid, event, at) in &self.pubs {
            for s in &self.subs {
                if s.issued <= *at && *at < s.expires && s.sub.matches(event) {
                    out.insert((s.id, *eid));
                }
            }
        }
        out
    }

    /// The subscriptions active at `at` that match `event`, by brute
    /// force, sorted by id.
    ///
    /// This is the per-event slice of [`expected`](Oracle::expected),
    /// shaped for differential tests of the matching engines: feed the
    /// same sub/unsub stream to an engine and the oracle, then compare
    /// each probe's match set against `matching_at(event, now)`.
    pub fn matching_at(&self, event: &Event, at: SimTime) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .subs
            .iter()
            .filter(|s| s.issued <= at && at < s.expires && s.sub.matches(event))
            .map(|s| s.id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of recorded subscriptions.
    pub fn sub_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of recorded publications.
    pub fn pub_count(&self) -> usize {
        self.pubs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{AttributeDef, EventSpace};

    fn space() -> EventSpace {
        EventSpace::new(vec![AttributeDef::new("x", 100)])
    }

    fn sub(lo: u64, hi: u64) -> Subscription {
        Subscription::builder(&space())
            .range("x", lo, hi)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn matching_respects_activity_window() {
        let mut o = Oracle::new();
        o.add_sub(
            SubId(1),
            sub(0, 50),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        // Before activity: no match.
        o.add_pub(
            EventId(1),
            Event::new_unchecked(vec![25]),
            SimTime::from_secs(5),
        );
        // During: match.
        o.add_pub(
            EventId(2),
            Event::new_unchecked(vec![25]),
            SimTime::from_secs(15),
        );
        // At expiry instant: no match (expiry is exclusive).
        o.add_pub(
            EventId(3),
            Event::new_unchecked(vec![25]),
            SimTime::from_secs(20),
        );
        // Wrong content: no match.
        o.add_pub(
            EventId(4),
            Event::new_unchecked(vec![99]),
            SimTime::from_secs(15),
        );
        let e = o.expected();
        assert_eq!(
            e.into_iter().collect::<Vec<_>>(),
            vec![(SubId(1), EventId(2))]
        );
    }

    #[test]
    fn unsubscribe_truncates_window() {
        let mut o = Oracle::new();
        o.add_sub(SubId(1), sub(0, 50), SimTime::ZERO, SimTime::MAX);
        o.remove_sub(SubId(1), SimTime::from_secs(10));
        o.add_pub(
            EventId(1),
            Event::new_unchecked(vec![25]),
            SimTime::from_secs(5),
        );
        o.add_pub(
            EventId(2),
            Event::new_unchecked(vec![25]),
            SimTime::from_secs(15),
        );
        let e = o.expected();
        assert_eq!(e.len(), 1);
        assert!(e.contains(&(SubId(1), EventId(1))));
    }

    #[test]
    fn counts() {
        let mut o = Oracle::new();
        o.add_sub(SubId(1), sub(0, 1), SimTime::ZERO, SimTime::MAX);
        o.add_pub(EventId(1), Event::new_unchecked(vec![0]), SimTime::ZERO);
        assert_eq!(o.sub_count(), 1);
        assert_eq!(o.pub_count(), 1);
    }
}

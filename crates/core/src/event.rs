//! Events: points of the event space Ω, published by producers (§3.2).

use std::fmt;

use crate::error::PubSubError;
use crate::space::EventSpace;

/// Globally unique event identifier: publisher node index in the high bits,
/// per-publisher sequence number in the low bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// Composes an id from the publisher's node index and its sequence
    /// number.
    pub fn compose(node: usize, seq: u32) -> Self {
        EventId(((node as u64) << 32) | u64::from(seq))
    }

    /// The publisher node index encoded in this id.
    pub fn node(self) -> usize {
        (self.0 >> 32) as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}.{}", self.node(), self.0 & 0xFFFF_FFFF)
    }
}

/// An event: one attribute value per dimension of its event space.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, Event, EventSpace};
///
/// let space = EventSpace::new(vec![
///     AttributeDef::new("price", 1000),
///     AttributeDef::new("qty", 100),
/// ]);
/// let e = Event::new(&space, vec![250, 10])?;
/// assert_eq!(e.value(0), 250);
/// # Ok::<(), cbps::PubSubError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    values: Vec<u64>,
}

impl Event {
    /// Creates an event, validating every value against the space.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError::DimensionMismatch`] when the number of values
    /// differs from the space's dimensionality, and
    /// [`PubSubError::ValueOutOfDomain`] when a value exceeds its
    /// attribute's domain.
    pub fn new(space: &EventSpace, values: Vec<u64>) -> Result<Self, PubSubError> {
        if values.len() != space.dims() {
            return Err(PubSubError::DimensionMismatch {
                expected: space.dims(),
                got: values.len(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            if !space.valid_value(i, v) {
                return Err(PubSubError::ValueOutOfDomain {
                    attr: space.attr(i).name().to_owned(),
                    value: v,
                    size: space.attr(i).size(),
                });
            }
        }
        Ok(Event { values })
    }

    /// Creates an event without validation (hot paths that already
    /// guarantee domain membership, e.g. workload generators).
    pub fn new_unchecked(values: Vec<u64>) -> Self {
        Event { values }
    }

    /// The value of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> u64 {
        self.values[i]
    }

    /// All attribute values in dimension order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.values.len()
    }
}

impl Event {
    /// Quantizes one float onto attribute `i`'s declared scale — a
    /// convenience for building mixed integer/float events.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, the attribute has no float scale,
    /// or `x` is NaN.
    pub fn quantize(space: &EventSpace, i: usize, x: f64) -> u64 {
        space.attr(i).quantize_f64(x)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{:?}", self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AttributeDef;

    fn space() -> EventSpace {
        EventSpace::new(vec![AttributeDef::new("x", 10), AttributeDef::new("y", 20)])
    }

    #[test]
    fn valid_event() {
        let e = Event::new(&space(), vec![9, 19]).unwrap();
        assert_eq!(e.values(), &[9, 19]);
        assert_eq!(e.dims(), 2);
        assert_eq!(e.to_string(), "e[9, 19]");
    }

    #[test]
    fn dimension_mismatch() {
        let err = Event::new(&space(), vec![1]).unwrap_err();
        assert!(matches!(
            err,
            PubSubError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn out_of_domain() {
        let err = Event::new(&space(), vec![10, 0]).unwrap_err();
        assert!(matches!(
            err,
            PubSubError::ValueOutOfDomain { value: 10, .. }
        ));
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn event_id_composition() {
        let id = EventId::compose(7, 42);
        assert_eq!(id.node(), 7);
        assert_eq!(id.to_string(), "e7.42");
        assert_ne!(EventId::compose(7, 42), EventId::compose(8, 42));
    }
}

//! Wire payloads of the CB-pub/sub layer, routed by the overlay.

use std::sync::Arc;

use cbps_overlay::{Key, Peer};
use cbps_sim::{SimTime, TraceId};

use crate::event::{Event, EventId};
use crate::store::StoredSub;
use crate::subscription::SubId;

/// One notification: an event that matched a subscription.
#[derive(Clone, Debug, PartialEq)]
pub struct NotifyItem {
    /// The matched subscription.
    pub sub_id: SubId,
    /// The matching event's id.
    pub event_id: EventId,
    /// The matching event, shared across every match it produced.
    pub event: Arc<Event>,
    /// Causal trace of the `pub(e)` operation that produced the match
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
}

/// Notification payload: a singleton item travels inline, a buffered
/// batch spills to a `Vec`.
///
/// The immediate notify mode sends exactly one match per message, and
/// that path is the steady-state hot loop of the allocation audit — an
/// always-`Vec` payload would cost one heap allocation per delivered
/// notification. The buffered and collecting modes batch per subscriber
/// and ship the accumulated `Vec` as-is.
#[derive(Clone, Debug, PartialEq)]
pub enum NotifyBatch {
    /// A single match, stored inline (no heap allocation).
    One(NotifyItem),
    /// A buffered batch: one flush interval's matches for one subscriber.
    Many(Vec<NotifyItem>),
}

impl NotifyBatch {
    /// Number of matches carried.
    pub fn len(&self) -> usize {
        match self {
            NotifyBatch::One(_) => 1,
            NotifyBatch::Many(v) => v.len(),
        }
    }

    /// `true` when no match is carried (only possible for an empty batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The matches as a slice.
    pub fn as_slice(&self) -> &[NotifyItem] {
        match self {
            NotifyBatch::One(item) => std::slice::from_ref(item),
            NotifyBatch::Many(v) => v,
        }
    }
}

impl IntoIterator for NotifyBatch {
    type Item = NotifyItem;
    type IntoIter = NotifyBatchIter;

    fn into_iter(self) -> NotifyBatchIter {
        match self {
            NotifyBatch::One(item) => NotifyBatchIter::One(std::iter::once(item)),
            NotifyBatch::Many(v) => NotifyBatchIter::Many(v.into_iter()),
        }
    }
}

/// Consuming iterator over a [`NotifyBatch`].
#[derive(Debug)]
pub enum NotifyBatchIter {
    /// Iterating a singleton.
    One(std::iter::Once<NotifyItem>),
    /// Iterating a spilled batch.
    Many(std::vec::IntoIter<NotifyItem>),
}

impl Iterator for NotifyBatchIter {
    type Item = NotifyItem;

    fn next(&mut self) -> Option<NotifyItem> {
        match self {
            NotifyBatchIter::One(it) => it.next(),
            NotifyBatchIter::Many(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NotifyBatchIter::One(it) => it.size_hint(),
            NotifyBatchIter::Many(it) => it.size_hint(),
        }
    }
}

/// One match travelling along the ring toward its subscription's agent node
/// (the collecting optimization, §4.3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectItem {
    /// The matched subscription.
    pub sub_id: SubId,
    /// Who ultimately receives the notification.
    pub subscriber: Peer,
    /// Middle key of the subscription's rendezvous range: the node covering
    /// it acts as the aggregation agent.
    pub agent_key: Key,
    /// The matching event's id.
    pub event_id: EventId,
    /// The matching event, shared across every match it produced.
    pub event: Arc<Event>,
    /// Causal trace of the `pub(e)` operation that produced the match
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
}

/// Application payloads carried by the overlay for the pub/sub layer.
#[derive(Clone, Debug, PartialEq)]
pub enum PubSubMsg {
    /// `sub(σ)`: store this subscription at the rendezvous keys.
    Subscribe {
        /// Subscription id.
        id: SubId,
        /// The stored record (query, subscriber, expiry, full `SK` set).
        stored: StoredSub,
    },
    /// `unsub(σ)`: drop the subscription at the rendezvous keys.
    Unsubscribe {
        /// Subscription id to drop.
        id: SubId,
    },
    /// `pub(e)`: match this event at the rendezvous keys.
    Publish {
        /// Event id.
        id: EventId,
        /// The event, shared across m-cast splits and downstream notify
        /// items (cloning a split envelope bumps a refcount instead of
        /// deep-copying the attribute vector).
        event: Arc<Event>,
        /// Causal trace of the publishing operation ([`TraceId::NONE`]
        /// when observability is off).
        trace: TraceId,
    },
    /// Matches delivered to a subscriber (routed to the subscriber's key).
    Notification {
        /// The batched matches (inline singleton without buffering).
        items: NotifyBatch,
    },
    /// Ring-neighbor exchange of matches flowing toward range agents
    /// (one-hop direct messages, class `COLLECT`).
    CollectExchange {
        /// Matches to move along the ring.
        items: Vec<CollectItem>,
    },
    /// State transfer between neighbors (join/leave) or to replicas
    /// (one-hop direct messages, class `STATE_TRANSFER`).
    StateBatch {
        /// The records being transferred.
        subs: Vec<(SubId, StoredSub)>,
        /// `true`: store passively as replicas; `false`: adopt as primary.
        as_replica: bool,
    },
    /// Replica invalidation after unsubscription or expiry-driven cleanup.
    ReplicaDrop {
        /// Subscription ids to drop from the replica set.
        ids: Vec<SubId>,
    },
}

/// Application timers of the pub/sub layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PubSubTimer {
    /// Flush notification/collect buffers (buffering period elapsed).
    Flush,
    /// Re-issue a leased subscription before it lapses (lease refresh).
    Refresh {
        /// The subscription to refresh.
        id: SubId,
    },
}

/// A notification as observed by the subscribing application: which
/// subscription fired, for which event, and when it arrived.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveredNote {
    /// The subscription that matched.
    pub sub_id: SubId,
    /// The event's id.
    pub event_id: EventId,
    /// The event content (shared with the rendezvous-side match items).
    pub event: Arc<Event>,
    /// Arrival (simulated) time at the subscriber.
    pub at: SimTime,
    /// Causal trace of the publication that produced this notification,
    /// usable with [`cbps_sim::TraceLog::chain`] to explain the delivery
    /// hop-by-hop when observability was enabled during the run.
    pub trace: TraceId,
}

//! Wire payloads of the CB-pub/sub layer, routed by the overlay.

use std::sync::Arc;

use cbps_overlay::{Key, Peer};
use cbps_sim::{SimTime, TraceId};

use crate::event::{Event, EventId};
use crate::store::StoredSub;
use crate::subscription::SubId;

/// One notification: an event that matched a subscription.
#[derive(Clone, Debug, PartialEq)]
pub struct NotifyItem {
    /// The matched subscription.
    pub sub_id: SubId,
    /// The matching event's id.
    pub event_id: EventId,
    /// The matching event, shared across every match it produced.
    pub event: Arc<Event>,
    /// Causal trace of the `pub(e)` operation that produced the match
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
}

/// One match travelling along the ring toward its subscription's agent node
/// (the collecting optimization, §4.3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectItem {
    /// The matched subscription.
    pub sub_id: SubId,
    /// Who ultimately receives the notification.
    pub subscriber: Peer,
    /// Middle key of the subscription's rendezvous range: the node covering
    /// it acts as the aggregation agent.
    pub agent_key: Key,
    /// The matching event's id.
    pub event_id: EventId,
    /// The matching event, shared across every match it produced.
    pub event: Arc<Event>,
    /// Causal trace of the `pub(e)` operation that produced the match
    /// (always minted — ids are cheap; recording is what observability
    /// gates).
    pub trace: TraceId,
}

/// Application payloads carried by the overlay for the pub/sub layer.
#[derive(Clone, Debug, PartialEq)]
pub enum PubSubMsg {
    /// `sub(σ)`: store this subscription at the rendezvous keys.
    Subscribe {
        /// Subscription id.
        id: SubId,
        /// The stored record (query, subscriber, expiry, full `SK` set).
        stored: StoredSub,
    },
    /// `unsub(σ)`: drop the subscription at the rendezvous keys.
    Unsubscribe {
        /// Subscription id to drop.
        id: SubId,
    },
    /// `pub(e)`: match this event at the rendezvous keys.
    Publish {
        /// Event id.
        id: EventId,
        /// The event.
        event: Event,
        /// Causal trace of the publishing operation ([`TraceId::NONE`]
        /// when observability is off).
        trace: TraceId,
    },
    /// Matches delivered to a subscriber (routed to the subscriber's key).
    Notification {
        /// The batched matches (singleton without buffering).
        items: Vec<NotifyItem>,
    },
    /// Ring-neighbor exchange of matches flowing toward range agents
    /// (one-hop direct messages, class `COLLECT`).
    CollectExchange {
        /// Matches to move along the ring.
        items: Vec<CollectItem>,
    },
    /// State transfer between neighbors (join/leave) or to replicas
    /// (one-hop direct messages, class `STATE_TRANSFER`).
    StateBatch {
        /// The records being transferred.
        subs: Vec<(SubId, StoredSub)>,
        /// `true`: store passively as replicas; `false`: adopt as primary.
        as_replica: bool,
    },
    /// Replica invalidation after unsubscription or expiry-driven cleanup.
    ReplicaDrop {
        /// Subscription ids to drop from the replica set.
        ids: Vec<SubId>,
    },
}

/// Application timers of the pub/sub layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PubSubTimer {
    /// Flush notification/collect buffers (buffering period elapsed).
    Flush,
    /// Re-issue a leased subscription before it lapses (lease refresh).
    Refresh {
        /// The subscription to refresh.
        id: SubId,
    },
}

/// A notification as observed by the subscribing application: which
/// subscription fired, for which event, and when it arrived.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveredNote {
    /// The subscription that matched.
    pub sub_id: SubId,
    /// The event's id.
    pub event_id: EventId,
    /// The event content (shared with the rendezvous-side match items).
    pub event: Arc<Event>,
    /// Arrival (simulated) time at the subscriber.
    pub at: SimTime,
    /// Causal trace of the publication that produced this notification,
    /// usable with [`cbps_sim::TraceLog::chain`] to explain the delivery
    /// hop-by-hop when observability was enabled during the run.
    pub trace: TraceId,
}

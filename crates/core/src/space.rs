//! The event space Ω: the typed, d-dimensional attribute universe events
//! and subscriptions are defined over (§3.2).

use std::fmt;

/// One attribute dimension of the event space.
///
/// Values are unsigned integers in `[0, size)`. The paper's data model
/// allows any ordered primitive type; strings and floats are reduced to
/// integers by hashing/scaling (§3.2, footnote 2) — see
/// [`EventSpace::value_of_str`].
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeDef {
    name: String,
    size: u64,
    /// Optional real-valued scale: floats in `[lo, hi]` are quantized
    /// monotonically onto `0..size`.
    float_range: Option<(f64, f64)>,
}

impl AttributeDef {
    /// Defines an attribute with `size` distinct values `0..size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `name` is empty.
    pub fn new(name: impl Into<String>, size: u64) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "attribute name must be non-empty");
        assert!(size > 0, "attribute domain must be non-empty");
        AttributeDef {
            name,
            size,
            float_range: None,
        }
    }

    /// Declares the attribute as real-valued over `[lo, hi]`: float values
    /// and float constraint bounds are quantized monotonically onto the
    /// integer domain (the paper's data model covers float attributes;
    /// §3.2 reduces every ordered type to numbers). Quantization error is
    /// at most one cell, i.e. `(hi - lo) / size`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn with_float_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "need finite lo < hi"
        );
        self.float_range = Some((lo, hi));
        self
    }

    /// The declared real-valued scale, if any.
    pub fn float_range(&self) -> Option<(f64, f64)> {
        self.float_range
    }

    /// Quantizes a float on this attribute's declared scale (clamping to
    /// the scale's ends). Monotone: `x <= y` implies
    /// `quantize(x) <= quantize(y)`.
    ///
    /// # Panics
    ///
    /// Panics if the attribute has no float scale or `x` is NaN.
    pub fn quantize_f64(&self, x: f64) -> u64 {
        let (lo, hi) = self
            .float_range
            .expect("attribute has no float scale; call with_float_range");
        assert!(!x.is_nan(), "cannot quantize NaN");
        let clamped = x.clamp(lo, hi);
        let frac = (clamped - lo) / (hi - lo);
        ((frac * (self.size - 1) as f64).round() as u64).min(self.size - 1)
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values, `|Ω_i|`.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// The d-dimensional event space Ω.
///
/// # Examples
///
/// ```
/// use cbps::{AttributeDef, EventSpace};
///
/// let space = EventSpace::new(vec![
///     AttributeDef::new("price", 10_000),
///     AttributeDef::new("volume", 1_000_000),
/// ]);
/// assert_eq!(space.dims(), 2);
/// assert_eq!(space.attr_index("volume"), Some(1));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EventSpace {
    attrs: Vec<AttributeDef>,
}

impl EventSpace {
    /// Creates a space from its attribute definitions.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` is empty or two attributes share a name.
    pub fn new(attrs: Vec<AttributeDef>) -> Self {
        assert!(
            !attrs.is_empty(),
            "an event space needs at least one attribute"
        );
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        EventSpace { attrs }
    }

    /// The evaluation workload's space (§5.1): 4 integer attributes ranging
    /// over `0..=1_000_000`.
    pub fn paper_default() -> Self {
        EventSpace::new(
            (0..4)
                .map(|i| AttributeDef::new(format!("a{i}"), 1_000_001))
                .collect(),
        )
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute definitions in order.
    pub fn attrs(&self) -> &[AttributeDef] {
        &self.attrs
    }

    /// The definition of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn attr(&self, i: usize) -> &AttributeDef {
        &self.attrs[i]
    }

    /// Index of the attribute with the given name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// `true` iff `value` is a legal value for dimension `i`.
    pub fn valid_value(&self, i: usize, value: u64) -> bool {
        i < self.attrs.len() && value < self.attrs[i].size
    }

    /// Reduces a string to a value of dimension `i` by hashing — the
    /// paper's recipe for non-numeric attributes (§3.2, footnote 2).
    /// Distinct strings may collide; equality constraints on the hashed
    /// value then over-approximate, which is safe (extra notifications are
    /// filtered by subscriber-side matching if exactness is required).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value_of_str(&self, i: usize, s: &str) -> u64 {
        // FNV-1a, folded into the attribute domain.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.attrs[i].size
    }
}

impl fmt::Display for EventSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ω(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:0..{}", a.name, a.size)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_shape() {
        let s = EventSpace::paper_default();
        assert_eq!(s.dims(), 4);
        for i in 0..4 {
            assert_eq!(s.attr(i).size(), 1_000_001);
            assert_eq!(s.attr(i).name(), format!("a{i}"));
        }
    }

    #[test]
    fn value_validation() {
        let s = EventSpace::new(vec![AttributeDef::new("x", 10)]);
        assert!(s.valid_value(0, 9));
        assert!(!s.valid_value(0, 10));
        assert!(!s.valid_value(1, 0));
    }

    #[test]
    fn attr_lookup_by_name() {
        let s = EventSpace::new(vec![
            AttributeDef::new("type", 64),
            AttributeDef::new("temp", 200),
        ]);
        assert_eq!(s.attr_index("temp"), Some(1));
        assert_eq!(s.attr_index("missing"), None);
    }

    #[test]
    fn string_hashing_is_stable_and_in_domain() {
        let s = EventSpace::new(vec![AttributeDef::new("topic", 1000)]);
        let v1 = s.value_of_str(0, "weather/rome");
        let v2 = s.value_of_str(0, "weather/rome");
        assert_eq!(v1, v2);
        assert!(v1 < 1000);
        assert_ne!(s.value_of_str(0, "a"), s.value_of_str(0, "b"));
    }

    #[test]
    fn display_is_informative() {
        let s = EventSpace::new(vec![AttributeDef::new("x", 4)]);
        assert_eq!(s.to_string(), "Ω(x:0..4)");
    }

    #[test]
    fn float_quantization_is_monotone_and_clamped() {
        let a = AttributeDef::new("temp", 1000).with_float_range(-40.0, 60.0);
        assert_eq!(a.quantize_f64(-40.0), 0);
        assert_eq!(a.quantize_f64(60.0), 999);
        assert_eq!(a.quantize_f64(-100.0), 0); // clamped
        assert_eq!(a.quantize_f64(100.0), 999); // clamped
        let mid = a.quantize_f64(10.0);
        assert!((499..=501).contains(&mid), "midpoint quantized to {mid}");
        // Monotone over a sweep.
        let mut prev = 0;
        for i in 0..=200 {
            let q = a.quantize_f64(-40.0 + i as f64 * 0.5);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(a.float_range(), Some((-40.0, 60.0)));
    }

    #[test]
    #[should_panic(expected = "no float scale")]
    fn quantize_requires_declared_scale() {
        let _ = AttributeDef::new("x", 10).quantize_f64(1.0);
    }

    #[test]
    #[should_panic(expected = "cannot quantize NaN")]
    fn quantize_rejects_nan() {
        let _ = AttributeDef::new("x", 10)
            .with_float_range(0.0, 1.0)
            .quantize_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        let _ = EventSpace::new(vec![AttributeDef::new("x", 4), AttributeDef::new("x", 8)]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_space_rejected() {
        let _ = EventSpace::new(vec![]);
    }
}
